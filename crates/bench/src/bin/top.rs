//! `sigmavp-top` — plaintext live-observability dashboard + bundle checker.
//!
//! ```text
//! cargo run --release -p sigmavp-bench --bin top                    # demo fleet + dashboard
//! cargo run --release -p sigmavp-bench --bin top -- --vps 32 --sessions 4
//! cargo run --release -p sigmavp-bench --bin top -- --check-bundle BENCH_postmortem.json
//! ```
//!
//! The default mode drives a small sharded fleet with the always-on
//! observability pair attached — the online profile store folding every
//! completed job off the bus and the flight recorder sampling periodic
//! snapshots — kills one session mid-run so the incident machinery fires, and
//! renders what a resident `top(1)`-style view would show: the fleet header,
//! per-shard rows, the newest metrics snapshot, the folded Tm/Tk/alignment
//! profiles, and any post-mortem bundles the run produced.
//!
//! `--check-bundle PATH` instead validates a dumped post-mortem (CI runs it on
//! the `audit` chaos bundle): the file must be well-formed JSON carrying the
//! `sigmavp-postmortem-v1` schema tag, incident and snapshot sections.

use std::process::ExitCode;

use sigmavp_fleet::{drive_with, Fleet, FleetConfig, VpScript};
use sigmavp_ipc::message::VpId;
use sigmavp_obs::{validate_bundle, FlightConfig, FlightRecorder, SharedProfileStore};
use sigmavp_telemetry::export::summary_table;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::Application;
use sigmavp_workloads::apps::VectorAddApp;

const DEFAULT_VPS: u32 = 16;
const DEFAULT_SESSIONS: usize = 2;

struct Args {
    vps: u32,
    sessions: usize,
    check_bundle: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: top [--vps N] [--sessions N] [--check-bundle PATH]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args { vps: DEFAULT_VPS, sessions: DEFAULT_SESSIONS, check_bundle: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--vps" => args.vps = value("--vps").parse::<u32>().unwrap_or_else(|_| usage()).max(1),
            "--sessions" => {
                args.sessions =
                    value("--sessions").parse::<usize>().unwrap_or_else(|_| usage()).max(1)
            }
            "--check-bundle" => args.check_bundle = Some(value("--check-bundle")),
            _ => usage(),
        }
    }
    args
}

/// The CI mode: load a dumped post-mortem and verify it is self-contained.
fn check_bundle(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("top: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_bundle(&text) {
        Ok(()) => {
            println!(
                "top: {path} is a well-formed {} bundle ({} bytes)",
                sigmavp_obs::BUNDLE_SCHEMA,
                text.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("top: {path} is not a valid post-mortem bundle: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.check_bundle {
        return check_bundle(path);
    }

    let telemetry = sigmavp_telemetry::install();
    let profiles = SharedProfileStore::new();
    profiles.install();
    let recorder = FlightRecorder::new(FlightConfig::default());
    recorder.attach(telemetry);
    recorder.install_incident_sink();

    let registry: KernelRegistry = VectorAddApp { n: 256 }.kernels().into_iter().collect();
    let config = FleetConfig::new(args.sessions).with_capacity((args.vps as usize * 4).max(64));
    let fleet = match Fleet::new(config, registry) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("top: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut scripts: Vec<(VpId, VpScript)> =
        (0..args.vps).map(|vp| (VpId(vp), VpScript::vector_add(2048, 2, vp as u64))).collect();
    for (vp, _) in &scripts {
        if let Err(e) = fleet.admit(*vp) {
            eprintln!("top: admit {vp:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let total: u64 = scripts.iter().map(|(_, s)| s.jobs_total()).sum();
    let kill = args.sessions > 1;
    let driven = drive_with(&fleet, &mut scripts, |fleet, admitted| {
        if admitted % 32 == 0 {
            recorder.sample();
        }
        if kill && admitted == total / 2 {
            fleet.kill_session(0).expect("session 0 exists");
        }
    });
    if let Err(e) = driven {
        eprintln!("top: {e}");
        return ExitCode::FAILURE;
    }
    let view = fleet.observability(&telemetry);
    let outcome = fleet.shutdown();
    recorder.sample();

    // --- The dashboard. -------------------------------------------------------
    println!(
        "sigmavp-top | {} session(s), {} vp(s) | depth {} | completed {} shed {} \
         steals {} migrations {}",
        view.shards.len(),
        args.vps,
        view.depth,
        outcome.stats.completed,
        outcome.stats.shed,
        outcome.stats.steals,
        outcome.stats.migrations
    );
    for shard in &view.shards {
        println!(
            "  s{} {} vps={} queue={} buffers={}",
            shard.index,
            if shard.alive { "up  " } else { "DOWN" },
            shard.vps,
            shard.queue_depth,
            shard.live_buffers
        );
    }
    let snapshot = profiles.snapshot();
    println!("profiles ({} updates over {} entries):", snapshot.updates, snapshot.entries());
    for (arch, s) in &snapshot.copies {
        println!(
            "  {arch:<24} copies={:<5} bytes={:<9} Tm/B ewma={:.3e} s (var {:.1e})",
            s.copies,
            s.bytes,
            s.tm_per_byte_s.ewma,
            s.tm_per_byte_s.variance()
        );
    }
    for ((arch, kernel), s) in &snapshot.kernels {
        println!(
            "  {arch}/{kernel:<12} launches={:<4} To ewma={:.3e} s Te/wave ewma={:.3e} s \
             align={:.2}",
            s.launches, s.launch_overhead_s.ewma, s.te_per_wave_s.ewma, s.alignment.mean
        );
    }
    match recorder.newest() {
        Some(newest) => {
            println!("newest snapshot #{} @ {:.3} s wall:", newest.index, newest.wall_s);
            print!("{}", summary_table(&newest.metrics));
        }
        None => println!("no snapshots taken"),
    }
    println!("snapshots: {} | incidents: {}", recorder.taken(), recorder.incidents().len());
    for bundle in recorder.bundles() {
        println!("post-mortem: {} ({} bytes)", bundle.name, bundle.json.len());
    }

    sigmavp_telemetry::bus::clear_sinks();
    sigmavp_telemetry::uninstall();
    ExitCode::SUCCESS
}
