//! Regenerate Fig. 11 (full suite, 8 VPs, three configurations).
//!
//! ```text
//! fig11 [scale] [n_vps]    # defaults: scale 6, 8 VPs
//! ```
//!
//! Larger scales grow every workload linearly and push the speedups toward the
//! asymptotic emulation/device per-instruction ratio.

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let n_vps: usize =
        args.next().and_then(|a| a.parse().ok()).unwrap_or(sigmavp_bench::fig11::N_VPS);
    eprintln!("running the Fig. 11 suite at scale {scale} with {n_vps} VPs per app...");
    let rows = sigmavp_bench::fig11::run(scale, n_vps);
    sigmavp_bench::fig11::print(&rows);
}
