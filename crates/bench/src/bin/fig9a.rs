//! Regenerate Fig. 9a (interleaving speedup vs kernel length).

use sigmavp_gpu::GpuArch;

fn main() {
    let arch = GpuArch::quadro_4000();
    let pts = sigmavp_bench::fig9::fig9a(&arch);
    sigmavp_bench::fig9::print_fig9a(&pts);
}
