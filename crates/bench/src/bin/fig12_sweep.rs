//! Extended Fig. 12: timing-estimation accuracy across the *whole* 22-app suite
//! (the paper evaluates four applications; this sweep shows the pipeline
//! generalizes over the full instruction-mix spectrum).

fn main() {
    let records = sigmavp_bench::fig12::run_suite_sweep();
    sigmavp_bench::fig12::print(&records);
}
