//! Regenerate Fig. 10b (grid-size staircase).

use sigmavp_gpu::GpuArch;

fn main() {
    let arch = GpuArch::quadro_4000();
    let pts = sigmavp_bench::fig10::fig10b(&arch, 64);
    sigmavp_bench::fig10::print_fig10b(&pts);
}
