//! Export a Chrome trace (chrome://tracing / Perfetto) of a multi-VP device
//! timeline, with and without the ΣVP optimizations.
//!
//! ```text
//! cargo run --release -p sigmavp-bench --bin trace > timeline.json
//! ```

use sigmavp_gpu::engine::{simulate, GpuOp, StreamId, Engine};
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::queue::{Job, JobId, JobKind};
use sigmavp_sched::interleave::reorder_async;

fn jobs(n: u32) -> Vec<Job> {
    let mut out = Vec::new();
    let mut id = 0;
    for vp in 0..n {
        for (seq, (kind, dur)) in [
            (JobKind::CopyIn { bytes: 0 }, 1.0),
            (JobKind::Kernel { name: "k".into(), grid_dim: 1, block_dim: 256 }, 1.2),
            (JobKind::CopyOut { bytes: 0 }, 1.0),
        ]
        .into_iter()
        .enumerate()
        {
            out.push(Job {
                id: JobId(id),
                vp: VpId(vp),
                seq: seq as u64,
                kind,
                sync: true,
                enqueued_at_s: 0.0,
                expected_duration_s: dur,
            });
            id += 1;
        }
    }
    out
}

fn to_ops(jobs: &[Job]) -> Vec<GpuOp> {
    jobs.iter()
        .map(|j| GpuOp {
            id: j.id.0,
            stream: StreamId(j.vp.0),
            engine: match j.kind {
                JobKind::CopyIn { .. } => Engine::CopyH2D,
                JobKind::CopyOut { .. } => Engine::CopyD2H,
                JobKind::Kernel { .. } => Engine::Compute,
            },
            duration_s: j.expected_duration_s,
            after: vec![],
        })
        .collect()
}

fn main() {
    let arch = GpuArch::quadro_4000();
    let reordered = reorder_async(jobs(6));
    let timeline = simulate(&arch, &to_ops(&reordered));
    eprintln!(
        "interleaved 6-VP timeline: makespan {:.2}, compute utilization {:.0}%",
        timeline.makespan_s,
        timeline.utilization(Engine::Compute) * 100.0
    );
    println!("{}", timeline.to_chrome_trace());
}
