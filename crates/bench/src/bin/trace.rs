//! Export one unified Chrome trace (chrome://tracing / Perfetto) of a
//! multi-VP ΣVP run, plus a metrics snapshot.
//!
//! ```text
//! cargo run --release -p sigmavp-bench --bin trace > timeline.json
//! ```
//!
//! The JSON on stdout holds two process groups:
//!
//! * **runtime (wall clock)** — a *live* dispatcher run (fig11-style fleet of
//!   VP threads over real transports): one lane per VP, the dispatcher's
//!   per-job execution spans, and the job queue's depth as a counter track;
//! * **device (simulated time)** — the interleaved device timeline replayed
//!   through the engine model: copy-engine and compute-engine lanes plus a
//!   per-VP stream mirror.
//!
//! The metrics snapshot (queue-wait percentiles, engine overlap, coalescing,
//! profiler counters, and the scheduling pipeline's per-pass `plan.pass.*`
//! series) goes to stderr as a summary table and JSON.

use sigmavp::dispatcher::DispatchedSigmaVp;
use sigmavp_gpu::engine::{simulate, Engine, GpuOp, StreamId};
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::queue::{Job, JobId, JobKind};
use sigmavp_ipc::transport::TransportCost;
use sigmavp_sched::{PassCtx, Pipeline, Policy};
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::Application;
use sigmavp_workloads::apps::VectorAddApp;

fn jobs(n: u32) -> Vec<Job> {
    let mut out = Vec::new();
    let mut id = 0;
    for vp in 0..n {
        for (seq, (kind, dur)) in [
            (JobKind::CopyIn { bytes: 0 }, 1.0),
            (JobKind::Kernel { name: "k".into(), grid_dim: 1, block_dim: 256 }, 1.2),
            (JobKind::CopyOut { bytes: 0 }, 1.0),
        ]
        .into_iter()
        .enumerate()
        {
            out.push(Job {
                id: JobId(id),
                vp: VpId(vp),
                seq: seq as u64,
                kind,
                sync: true,
                enqueued_at_s: 0.0,
                expected_duration_s: dur,
            });
            id += 1;
        }
    }
    out
}

fn to_ops(jobs: &[Job]) -> Vec<GpuOp> {
    jobs.iter()
        .map(|j| GpuOp {
            id: j.id.0,
            stream: StreamId(j.vp.0),
            engine: match j.kind {
                JobKind::CopyIn { .. } => Engine::CopyH2D,
                JobKind::CopyOut { .. } => Engine::CopyD2H,
                JobKind::Kernel { .. } => Engine::Compute,
            },
            duration_s: j.expected_duration_s,
            after: vec![],
        })
        .collect()
}

fn main() {
    let telemetry = sigmavp_telemetry::install();

    // Part 1: live wall-clock run — a 4-VP fleet over real transports with the
    // full dispatcher loop. Every layer (queue, dispatcher, VP threads,
    // interpreter) reports into the installed collector.
    let app = VectorAddApp { n: 4096 };
    let registry: KernelRegistry = app.kernels().into_iter().collect();
    let mut sys =
        DispatchedSigmaVp::single(GpuArch::quadro_4000(), registry, TransportCost::shared_memory());
    for _ in 0..4 {
        sys.spawn(Box::new(VectorAddApp { n: 4096 }));
    }
    let (report, stats) = sys.join();
    assert!(report.all_ok(), "fleet must validate: {:?}", report.outcomes);

    // Part 2: simulated device timeline — the schedule planned through the
    // shared pipeline (recording per-pass plan.pass.* metrics) and replayed on
    // the engine model, mirrored onto per-VP stream lanes.
    let arch = GpuArch::quadro_4000();
    let pipeline = Pipeline::from_policy(&Policy::Fifo);
    let reordered = pipeline.plan(jobs(6), &PassCtx::reorder_only()).jobs;
    let timeline = simulate(&arch, &to_ops(&reordered));
    timeline.record_metrics();

    // One unified trace: wall-clock events drained from the collector plus the
    // simulated-time device events.
    let mut events = telemetry.drain_events();
    events.extend(timeline.trace_events_with_streams());
    println!("{}", sigmavp_telemetry::export::chrome_trace_json(&events));

    let snapshot = telemetry.snapshot();
    eprintln!(
        "live fleet: {} requests, max window {}; device replay: makespan {:.2}s, \
         compute utilization {:.0}%, overlap {:.0}%",
        stats.requests,
        stats.max_window,
        timeline.makespan_s,
        timeline.utilization(Engine::Compute) * 100.0,
        timeline.overlap_fraction() * 100.0
    );
    eprintln!();
    eprint!("{}", sigmavp_telemetry::export::summary_table(&snapshot));
    eprintln!();
    eprint!("{}", sigmavp_telemetry::export::metrics_json(&snapshot));
    if telemetry.dropped_events() > 0 {
        eprintln!("warning: {} trace events dropped (ring full)", telemetry.dropped_events());
    }
}
