//! Model-residual audit and regression gate for the ΣVP reproduction.
//!
//! ```text
//! cargo run --release -p sigmavp-bench --bin audit                    # audit + write BENCH_audit.json
//! cargo run --release -p sigmavp-bench --bin audit -- --write-baseline
//! cargo run --release -p sigmavp-bench --bin audit -- --check        # gate against the committed baseline
//! ```
//!
//! Three deterministic simulated scenarios exercise the paper's analytic
//! model end to end through the real scheduling pipeline:
//!
//! * **async4** — a 4-VP copy-in → kernel → copy-out fleet planned with
//!   earliest-start interleaving; the measured makespan is audited against
//!   Eq. 7 (`T = 2·Tm + N·max(Tm, Tk)`), and the per-device critical path
//!   must tile `[0, makespan]` exactly (conservation).
//! * **speedup4** — the same fleet at `Tm = Tk`; the measured speedup over
//!   synchronous serialization (the plain duration sum, as in Fig. 9) is
//!   audited against the Eq. 8 bound `3N/(N+2)`.
//! * **coalesce6** — six VPs launching the identical kernel; the merged
//!   launch that Kernel Coalescing emits is audited against Eq. 9
//!   (`T = To + Te·⌈ξ/λ⌉`) with To/Te/ξ observed from the job log and λ from
//!   the device model.
//!
//! A live 4-VP dispatched fleet then runs for wall-clock observability: the
//! scheduling pipeline's `plan.pass.*` timings and a job-lifecycle join of
//! the drained trace events are reported (but *not* gated — wall time is
//! nondeterministic).
//!
//! With `--sync`, a **sync-mode window scenario** also runs (and is gated):
//! 4 VPs issue the identical synchronous `vector_add` under a stop/resume
//! `sync_hold` policy, so the dispatcher parks all four guests, plans the held
//! window with the full pipeline, and resumes them in planned completion
//! order. The scenario runs twice in-process and hard-fails unless the window
//! counters are byte-identical, at least one live cross-VP merge happened, the
//! live plan's Eq. 7 makespan beats the reorder-only baseline, and every stop
//! was matched by a resume; the counters are then gated under `sync.*`.
//!
//! `--sync` also runs three **liveness scenarios** (each twice, hard-failing
//! unless its window ledger is byte-identical across the runs):
//!
//! * **quorum** — `sync_quorum(0.5)` flushes a partial window the moment the
//!   quorum threshold of VPs is held; gated under `sync.quorum.*`.
//! * **timeout** — a 1 µs simulated `sync_window_timeout` flushes a held
//!   window that can never reach quorum (its companion only copies); gated
//!   under `liveness.timeout_*`.
//! * **hang** — a VP wedges mid-run with the watchdog armed; the wall-clock
//!   stall backstop quarantines it out of the quorum (failing its journal
//!   over and dumping a `vp_hung` post-mortem, which becomes the
//!   `BENCH_postmortem.json` CI validates), the survivor finishes solo, and
//!   the sleeper rejoins on wake; gated under `liveness.hang_*`.
//!
//! A **chaos smoke** always runs as well: 4 VPs on 2 host GPUs over a lossy,
//! delaying link, with GPU 1 killed 40% into the (calibrated) run. Every VP
//! must still validate with every request executed exactly once, and the
//! deterministic fault story — `fault.retries`, `fault.gpu_trips`,
//! `fault.migrations`, plus the chaos-run makespan — is gated under `chaos.*`
//! (`--faults SEED` overrides the default fault-plan seed 42).
//!
//! Everything goes into a hand-rolled-JSON `BENCH_audit.json`; the flat
//! `"gate"` section is what `--check` compares against the committed baseline
//! under `results/baselines/`, exiting non-zero on any regression beyond
//! `--tolerance` (or any model residual above it). `--inject-slowdown F`
//! scales the measured makespans (for testing the gate itself).

use std::process::ExitCode;
use std::time::Duration;

use sigmavp::dispatcher::{DispatchStats, DispatchedSigmaVp};
use sigmavp::host::{JobRecord, RecordKind};
use sigmavp::session::DeviceOutcome;
use sigmavp::threaded::ThreadedReport;
use sigmavp::{plan_device, DevicePlan, RetryPolicy};
use sigmavp_fault::{FaultPlan, LinkFaultConfig};
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_obs::{
    device_critical_path, eq7_makespan_s, eq8_speedup_bound, eq9_merged_kernel_s, format_flat_json,
    join_lifecycles, observed_inputs, run_gate, validate_bundle, AuditReport, CriticalPath,
    FlightConfig, FlightRecorder, GateConfig, JobLifecycle, PathPhase, ProfileStore,
    SharedProfileStore,
};
use sigmavp_sched::{ExecTier, Pipeline, Policy};
use sigmavp_telemetry::export::escape_json;
use sigmavp_telemetry::{job_uid_seq, job_uid_vp};
use sigmavp_vp::error::VpError;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::{download, p, pi, upload, AppEnv, Application};
use sigmavp_workloads::apps::VectorAddApp;

const DEFAULT_BASELINE: &str = "results/baselines/audit.json";
const DEFAULT_OUT: &str = "BENCH_audit.json";
/// The chaos breaker trip's flight-recorder dump, rewritten every run so CI
/// can check the bundle stays machine-parseable.
const POSTMORTEM_OUT: &str = "BENCH_postmortem.json";
const DEFAULT_TOLERANCE: f64 = 0.10;
const DEFAULT_FAULT_SEED: u64 = 42;

struct Args {
    check: bool,
    write_baseline: bool,
    baseline: String,
    out: String,
    tolerance: f64,
    inject_slowdown: f64,
    fault_seed: u64,
    /// Run (and gate) the sync-mode stop/resume window scenario.
    sync: bool,
    /// Explicit pass composition for the planned scenarios (ablation); the
    /// policy-derived pipeline when absent. Gated numbers assume the default.
    passes: Option<String>,
    /// SPTX execution tier for every live fleet (the planned scenarios never
    /// run guest code). Gated numbers are tier-independent by construction —
    /// both tiers produce byte-identical profiles — so this is an ablation
    /// knob, mirroring `--tier` on the perf binary.
    tier: ExecTier,
}

fn usage() -> ! {
    eprintln!(
        "usage: audit [--check] [--write-baseline] [--baseline PATH] [--out PATH] \
         [--tolerance F] [--inject-slowdown F] [--faults SEED] [--passes a,b,c] \
         [--tier scalar|warp] [--sync]"
    );
    std::process::exit(2);
}

fn parse_tier(s: &str) -> ExecTier {
    match s {
        "scalar" => ExecTier::Scalar,
        "warp" => ExecTier::Warp,
        _ => usage(),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        write_baseline: false,
        baseline: DEFAULT_BASELINE.to_string(),
        out: DEFAULT_OUT.to_string(),
        tolerance: DEFAULT_TOLERANCE,
        inject_slowdown: 1.0,
        fault_seed: DEFAULT_FAULT_SEED,
        sync: false,
        passes: None,
        tier: ExecTier::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--check" => args.check = true,
            "--write-baseline" => args.write_baseline = true,
            "--baseline" => args.baseline = value("--baseline"),
            "--out" => args.out = value("--out"),
            "--tolerance" => {
                args.tolerance = value("--tolerance").parse().unwrap_or_else(|_| usage())
            }
            "--inject-slowdown" => {
                args.inject_slowdown =
                    value("--inject-slowdown").parse().unwrap_or_else(|_| usage())
            }
            "--faults" => args.fault_seed = value("--faults").parse().unwrap_or_else(|_| usage()),
            "--sync" => args.sync = true,
            "--passes" => args.passes = Some(value("--passes")),
            "--tier" => args.tier = parse_tier(&value("--tier")),
            _ => usage(),
        }
    }
    args
}

fn record(vp: u32, seq: u64, kind: RecordKind, duration_s: f64) -> JobRecord {
    JobRecord { vp: VpId(vp), seq, kind, duration_s, sent_at_s: 0.0 }
}

/// N copy-in → kernel → copy-out programs (the Fig. 9 fleet pattern).
fn fleet_records(n: u32, tm_s: f64, tk_s: f64, arch: &GpuArch) -> Vec<JobRecord> {
    let mut records = Vec::new();
    for vp in 0..n {
        records.push(record(vp, 0, RecordKind::H2d { bytes: 4096, stream: 0 }, tm_s));
        records.push(record(
            vp,
            1,
            RecordKind::Kernel {
                name: "k".into(),
                grid_dim: 8,
                block_dim: 128,
                launch_overhead_s: arch.launch_overhead_us * 1e-6,
                waves: 1,
                stream: 0,
            },
            tk_s,
        ));
        records.push(record(vp, 2, RecordKind::D2h { bytes: 4096, stream: 0 }, tm_s));
    }
    records
}

/// N single-kernel programs launching the identical kernel — every launch is
/// coalescible into one merged op.
fn coalescible_records(n: u32, wave_s: f64, arch: &GpuArch) -> Vec<JobRecord> {
    let (grid_dim, block_dim) = (8u32, 128u32);
    let waves = u64::from(grid_dim).div_ceil(u64::from(arch.blocks_per_wave(block_dim))).max(1);
    let overhead_s = arch.launch_overhead_us * 1e-6;
    (0..n)
        .map(|vp| {
            record(
                vp,
                0,
                RecordKind::Kernel {
                    name: "k".into(),
                    grid_dim,
                    block_dim,
                    launch_overhead_s: overhead_s,
                    waves,
                    stream: 0,
                },
                overhead_s + waves as f64 * wave_s,
            )
        })
        .collect()
}

struct Scenario {
    name: &'static str,
    records: Vec<JobRecord>,
    plan: DevicePlan,
    makespan_s: f64,
    path: CriticalPath,
    lifecycles: Vec<JobLifecycle>,
}

/// Plan one scenario's job log and derive its observability views; verifies
/// critical-path conservation and that the lifecycle join covers every job.
fn run_scenario(
    name: &'static str,
    records: Vec<JobRecord>,
    policy: &Policy,
    coalescible: bool,
    arch: &GpuArch,
    slowdown: f64,
    passes: Option<&str>,
) -> Result<Scenario, String> {
    let pipeline = match passes {
        Some(spec) => Pipeline::parse(spec).map_err(|e| format!("--passes {spec}: {e}"))?,
        None => Pipeline::from_policy(policy),
    };
    let plan = plan_device(&pipeline, &records, &|_| coalescible, arch);
    let outcome =
        DeviceOutcome { arch: arch.clone(), records: records.clone(), plan: plan.clone() };
    let path = device_critical_path(&outcome);
    if !path.is_conserved(1e-9) {
        return Err(format!(
            "{name}: critical path NOT conserved: busy {:.6e} + stall {:.6e} != makespan {:.6e}",
            path.busy_s(),
            path.stall_s(),
            path.makespan_s
        ));
    }
    let lifecycles = join_lifecycles(&plan.trace_events(&records));
    if lifecycles.len() != records.len() {
        return Err(format!(
            "{name}: lifecycle join covered {} of {} jobs",
            lifecycles.len(),
            records.len()
        ));
    }
    let makespan_s = plan.timeline.makespan_s * slowdown;
    Ok(Scenario { name, records, plan, makespan_s, path, lifecycles })
}

/// Retry policy for the chaos smoke: a short receive timeout keeps dropped
/// frames cheap, a deep attempt budget makes run failure effectively
/// impossible at the smoke's fault rates.
const CHAOS_RETRY: RetryPolicy = RetryPolicy {
    max_attempts: 6,
    timeout_us: 5_000,
    backoff_base_us: 100,
    backoff_factor: 2,
    jitter_pct: 25,
};

/// Deterministic results of the chaos smoke, for the gate and the report.
struct ChaosOutcome {
    seed: u64,
    makespan_s: f64,
    retries: u64,
    gpu_trips: u64,
    migrations: u64,
    dedup_hits: u64,
    requests: u64,
}

/// 4 vectorAdd VPs on two host GPUs, optionally under a fault plan.
fn chaos_fleet(
    arch: &GpuArch,
    plan: Option<FaultPlan>,
    tier: ExecTier,
) -> (ThreadedReport, DispatchStats) {
    let app = VectorAddApp { n: 2048 };
    let registry: KernelRegistry = app.kernels().into_iter().collect();
    let mut sys = DispatchedSigmaVp::new(
        vec![arch.clone(), arch.clone()],
        registry,
        TransportCost::shared_memory(),
    )
    .with_policy(sigmavp::Policy::Fifo.with_retry(CHAOS_RETRY).with_tier(tier));
    if let Some(plan) = plan {
        sys = sys.with_faults(plan);
    }
    for _ in 0..4 {
        sys.spawn(Box::new(VectorAddApp { n: 2048 }));
    }
    sys.join()
}

/// The chaos smoke: calibrate a kill time from a fault-free run, then kill
/// GPU 1 mid-run under a lossy link and verify exactly-once completion on the
/// survivor. Counters are measured as snapshot deltas so earlier sections of
/// the audit cannot contaminate them.
fn run_chaos(
    seed: u64,
    arch: &GpuArch,
    telemetry: &sigmavp_telemetry::Telemetry,
    tier: ExecTier,
) -> Result<ChaosOutcome, String> {
    let (clean, _) = chaos_fleet(arch, None, tier);
    if !clean.all_ok() {
        return Err(format!("chaos calibration run failed: {:?}", clean.outcomes));
    }
    let t_total = clean.outcomes.iter().map(|o| o.simulated_time_s).fold(0.0f64, f64::max);
    let t_kill = 0.4 * t_total;
    let plan = FaultPlan::seeded(seed)
        .with_link(LinkFaultConfig::lossy(0.05, 0.03).with_delay(0.04, 50e-6))
        .with_outage(1, t_kill);
    let before = telemetry.snapshot();
    let (report, stats) = chaos_fleet(arch, Some(plan), tier);
    let after = telemetry.snapshot();
    if !report.all_ok() {
        return Err(format!(
            "chaos run failed: outcomes {:?}, failed vps {:?}",
            report.outcomes, report.failed_vps
        ));
    }
    let unique: std::collections::HashSet<(u32, u64)> =
        report.records.iter().map(|r| (r.vp.0, r.seq)).collect();
    if report.records.len() != 4 * 4 || unique.len() != report.records.len() {
        return Err(format!(
            "chaos run lost or double-executed jobs: {} records, {} unique",
            report.records.len(),
            unique.len()
        ));
    }
    if report.device_records[1].iter().any(|r| r.sent_at_s >= t_kill) {
        return Err("chaos run executed a job on the dead gpu after the kill".into());
    }
    let delta = |name: &str| {
        after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
    };
    Ok(ChaosOutcome {
        seed,
        makespan_s: report.device_makespan_s,
        retries: delta("fault.retries"),
        gpu_trips: delta("fault.gpu_trips"),
        migrations: delta("fault.migrations"),
        dedup_hits: delta("fault.dedup_hits"),
        requests: stats.requests,
    })
}

/// One 4-VP sync-hold fleet: every guest's synchronous `vector_add` is parked
/// by the dispatcher, planned as one cross-VP window, and resumed in planned
/// completion order.
fn sync_fleet(arch: &GpuArch, tier: ExecTier) -> Result<DispatchStats, String> {
    let app = VectorAddApp { n: 2048 };
    let registry: KernelRegistry = app.kernels().into_iter().collect();
    let mut sys = DispatchedSigmaVp::single(arch.clone(), registry, TransportCost::shared_memory())
        .with_policy(sigmavp::Policy::MultiplexedOptimized.with_sync_hold(true).with_tier(tier));
    for _ in 0..4 {
        sys.spawn(Box::new(VectorAddApp { n: 2048 }));
    }
    let (report, stats) = sys.join();
    if !report.all_ok() {
        return Err(format!("sync scenario failed validation: {:?}", report.outcomes));
    }
    Ok(stats)
}

/// The sync-mode scenario: run the held-window fleet twice and hard-fail
/// unless the window ledger is byte-identical, merging happened live, the
/// live plan beats reorder-only, and no VP was left stopped.
fn run_sync(arch: &GpuArch, tier: ExecTier) -> Result<DispatchStats, String> {
    let a = sync_fleet(arch, tier)?;
    let b = sync_fleet(arch, tier)?;
    let identical = a.holds == b.holds
        && a.sync_windows == b.sync_windows
        && a.live_groups == b.live_groups
        && a.live_members == b.live_members
        && a.stop_events == b.stop_events
        && a.resume_events == b.resume_events
        && a.wave_slots == b.wave_slots
        && a.wave_filled == b.wave_filled
        && a.sync_makespan_s.to_bits() == b.sync_makespan_s.to_bits()
        && a.sync_reorder_makespan_s.to_bits() == b.sync_reorder_makespan_s.to_bits();
    if !identical {
        return Err(format!("sync window ledger diverges across identical runs: {a:?} vs {b:?}"));
    }
    if a.holds == 0 || a.sync_windows == 0 {
        return Err(format!("sync scenario held no windows: {a:?}"));
    }
    if a.live_groups == 0 {
        return Err(format!("sync scenario coalesced nothing live: {a:?}"));
    }
    if a.stop_events != a.resume_events {
        return Err(format!("sync scenario left a VP stopped: {a:?}"));
    }
    if a.sync_makespan_s >= a.sync_reorder_makespan_s {
        return Err(format!(
            "live sync plan ({:.9e} s) does not beat reorder-only ({:.9e} s)",
            a.sync_makespan_s, a.sync_reorder_makespan_s
        ));
    }
    Ok(a)
}

/// A vector-add guest with configurable wall-clock stalls around its
/// synchronous launches, used by the liveness scenarios: `pre_ms` delays the
/// first launch (staggers arrival against other VPs), `mid_ms` wedges the VP
/// between launches (exercises the hung-VP watchdog), `post_ms` keeps the
/// guest connected after its last request (pins the quorum denominator so a
/// later partial flush stays a *quorum* flush, not a lone-survivor full one).
struct StaggeredAdd {
    n: u64,
    launches: u32,
    pre_ms: u64,
    mid_ms: u64,
    post_ms: u64,
}

impl Application for StaggeredAdd {
    fn name(&self) -> &str {
        "staggeredAdd"
    }
    fn kernels(&self) -> Vec<sigmavp_sptx::KernelProgram> {
        vec![sigmavp_workloads::kernels::vector_add()]
    }
    fn characteristics(&self) -> sigmavp_workloads::AppTraits {
        sigmavp_workloads::AppTraits::pure_cuda()
    }
    fn run_once(&self, env: &mut AppEnv<'_>) -> Result<(), VpError> {
        let n = self.n;
        let ones = vec![1u8; (n * 4) as usize];
        let mut cuda = env.cuda();
        let da = upload(&mut cuda, &ones)?;
        let db = upload(&mut cuda, &ones)?;
        let dc = cuda.malloc(n * 4)?;
        if self.pre_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.pre_ms));
        }
        for launch in 0..self.launches {
            cuda.launch_sync(
                "vector_add",
                n.div_ceil(256) as u32,
                256,
                &[p(da), p(db), p(dc), pi(n as i64)],
            )?;
            if self.mid_ms > 0 && launch + 1 < self.launches {
                std::thread::sleep(Duration::from_millis(self.mid_ms));
            }
        }
        download(&mut cuda, dc)?;
        for buf in [da, db, dc] {
            cuda.free(buf)?;
        }
        if self.post_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.post_ms));
        }
        Ok(())
    }
}

/// A guest that only moves bytes: it never launches, so it never holds, and
/// its steady frame stream advances the dispatcher's simulated `sim_now`
/// clock past a held window's timeout while keeping the full-house flush
/// predicate unreachable.
struct CopyStream {
    iterations: u32,
}

impl Application for CopyStream {
    fn name(&self) -> &str {
        "copyStream"
    }
    fn kernels(&self) -> Vec<sigmavp_sptx::KernelProgram> {
        vec![]
    }
    fn characteristics(&self) -> sigmavp_workloads::AppTraits {
        sigmavp_workloads::AppTraits::pure_cuda()
    }
    fn run_once(&self, env: &mut AppEnv<'_>) -> Result<(), VpError> {
        let mut cuda = env.cuda();
        for _ in 0..self.iterations {
            let buf = upload(&mut cuda, &[7u8; 4096])?;
            download(&mut cuda, buf)?;
            cuda.free(buf)?;
        }
        Ok(())
    }
}

/// The deterministic window ledgers of the three `--sync` liveness scenarios
/// (partial-quorum flush, sim-time timeout flush, hung-VP quarantine).
struct LivenessOutcome {
    quorum: DispatchStats,
    timeout: DispatchStats,
    hang: DispatchStats,
}

/// Run one liveness fleet over `devices` identical host GPUs and fail if any
/// guest does not validate.
fn liveness_fleet(
    arch: &GpuArch,
    devices: usize,
    policy: Policy,
    apps: Vec<Box<dyn Application + Send>>,
    label: &str,
) -> Result<DispatchStats, String> {
    let registry: KernelRegistry =
        vec![sigmavp_workloads::kernels::vector_add()].into_iter().collect();
    let mut sys = DispatchedSigmaVp::new(
        vec![arch.clone(); devices],
        registry,
        TransportCost::shared_memory(),
    )
    .with_policy(policy);
    for app in apps {
        sys.spawn(app);
    }
    let (report, stats) = sys.join();
    if !report.all_ok() {
        return Err(format!("liveness {label} scenario failed validation: {:?}", report.outcomes));
    }
    Ok(stats)
}

/// The liveness ledger fields that must be byte-identical across two
/// same-configuration runs (wall-clock staggers position the VPs, but every
/// gated counter is a function of the window algebra alone).
fn liveness_ledger_identical(a: &DispatchStats, b: &DispatchStats) -> bool {
    a.holds == b.holds
        && a.sync_windows == b.sync_windows
        && a.quorum_flushes == b.quorum_flushes
        && a.timeout_flushes == b.timeout_flushes
        && a.backstop_trips == b.backstop_trips
        && a.quarantined == b.quarantined
        && a.rejoins == b.rejoins
        && a.deadline_misses == b.deadline_misses
        && a.stop_events == b.stop_events
        && a.resume_events == b.resume_events
        && a.sync_makespan_s.to_bits() == b.sync_makespan_s.to_bits()
}

/// The liveness scenarios (run with `--sync`): each runs twice in-process and
/// hard-fails unless its window ledger is byte-identical across the runs and
/// matches the structurally-determined expectation.
///
/// * **quorum** — two VPs under `sync_quorum(0.5)` (threshold 1): the prompt
///   VP's held launch flushes alone the moment it arrives, and the 60 ms-late
///   VP's launch rolls into its own quorum window (the first VP lingers
///   connected so the denominator stays 2). Exactly 2 holds over 2 windows,
///   both quorum flushes.
/// * **timeout** — one sync VP behind a copies-only companion under lockstep
///   quorum (unreachable: the companion never holds) and a 1 µs simulated
///   window timeout: both of the sync VP's launches must flush via the
///   timeout, never via quorum.
/// * **hang** — two VPs on two host GPUs with the watchdog armed
///   (`hang_windows(2)`): after a first full-house window, one VP wedges for
///   900 ms of wall time mid-run. The other VP's held launch freezes
///   simulated time, so only the wall-clock stall backstop can fire: it
///   quarantines the sleeper (failing its journal over to the other device
///   and dumping a `vp_hung` post-mortem), the survivor finishes solo over
///   the shrunken quorum, and the sleeper rejoins on wake and completes.
fn run_liveness(arch: &GpuArch, tier: ExecTier) -> Result<LivenessOutcome, String> {
    let quorum = || {
        liveness_fleet(
            arch,
            1,
            Policy::MultiplexedOptimized.with_sync_hold(true).sync_quorum(0.5).with_tier(tier),
            vec![
                Box::new(StaggeredAdd { n: 2048, launches: 1, pre_ms: 0, mid_ms: 0, post_ms: 250 }),
                Box::new(StaggeredAdd { n: 2048, launches: 1, pre_ms: 60, mid_ms: 0, post_ms: 0 }),
            ],
            "quorum",
        )
    };
    let timeout = || {
        liveness_fleet(
            arch,
            1,
            Policy::MultiplexedOptimized
                .with_sync_hold(true)
                .with_sync_timeout_us(1)
                .with_tier(tier),
            vec![
                Box::new(StaggeredAdd { n: 2048, launches: 2, pre_ms: 0, mid_ms: 0, post_ms: 0 }),
                Box::new(CopyStream { iterations: 600 }),
            ],
            "timeout",
        )
    };
    let hang = || {
        liveness_fleet(
            arch,
            2,
            Policy::MultiplexedOptimized.with_sync_hold(true).with_hang_windows(2).with_tier(tier),
            vec![
                Box::new(StaggeredAdd { n: 1024, launches: 3, pre_ms: 0, mid_ms: 0, post_ms: 0 }),
                Box::new(StaggeredAdd { n: 1024, launches: 2, pre_ms: 0, mid_ms: 900, post_ms: 0 }),
            ],
            "hang",
        )
    };

    let (qa, qb) = (quorum()?, quorum()?);
    if !liveness_ledger_identical(&qa, &qb) {
        return Err(format!(
            "liveness quorum ledger diverges across identical runs: {qa:?} vs {qb:?}"
        ));
    }
    if qa.holds != 2 || qa.sync_windows != 2 || qa.quorum_flushes != 2 || qa.timeout_flushes != 0 {
        return Err(format!("liveness quorum scenario did not flush 2 partial windows: {qa:?}"));
    }
    if qa.quarantined != 0 || qa.deadline_misses != 0 || qa.stop_events != qa.resume_events {
        return Err(format!("liveness quorum scenario left a VP parked or degraded: {qa:?}"));
    }

    let (ta, tb) = (timeout()?, timeout()?);
    if !liveness_ledger_identical(&ta, &tb) {
        return Err(format!(
            "liveness timeout ledger diverges across identical runs: {ta:?} vs {tb:?}"
        ));
    }
    if ta.holds != 2 || ta.sync_windows != 2 || ta.timeout_flushes != 2 || ta.quorum_flushes != 0 {
        return Err(format!("liveness timeout scenario did not flush by deadline: {ta:?}"));
    }
    if ta.stop_events != ta.resume_events {
        return Err(format!("liveness timeout scenario left a VP stopped: {ta:?}"));
    }

    let (ha, hb) = (hang()?, hang()?);
    if !liveness_ledger_identical(&ha, &hb) {
        return Err(format!(
            "liveness hang ledger diverges across identical runs: {ha:?} vs {hb:?}"
        ));
    }
    if ha.quarantined != 1 || ha.rejoins != 1 || ha.backstop_trips != 1 {
        return Err(format!(
            "liveness hang scenario must quarantine and rejoin exactly one VP: {ha:?}"
        ));
    }
    if ha.holds != 5 || ha.sync_windows != 4 {
        return Err(format!("liveness hang scenario window ledger is off: {ha:?}"));
    }
    if ha.migrations < 1 {
        return Err(format!("liveness hang quarantine did not fail the VP over: {ha:?}"));
    }
    if ha.stop_events != ha.resume_events {
        return Err(format!("liveness hang scenario left a VP stopped: {ha:?}"));
    }
    Ok(LivenessOutcome { quorum: qa, timeout: ta, hang: ha })
}

fn phase_name(phase: PathPhase) -> &'static str {
    match phase {
        PathPhase::Transfer => "transfer",
        PathPhase::Compute => "compute",
        PathPhase::Stall => "stall",
    }
}

fn scenario_json(s: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "    \"{}\": {{\n      \"makespan_s\": {:.9e},\n      \"overlap_fraction\": {:.6},\n",
        escape_json(s.name),
        s.makespan_s,
        s.plan.timeline.overlap_fraction()
    ));
    out.push_str(&format!(
        "      \"critical_path\": {{\"busy_s\": {:.9e}, \"stall_s\": {:.9e}, \
         \"transfer_s\": {:.9e}, \"compute_s\": {:.9e}, \"segments\": [\n",
        s.path.busy_s(),
        s.path.stall_s().max(0.0),
        s.path.phase_s(PathPhase::Transfer),
        s.path.phase_s(PathPhase::Compute)
    ));
    let segs: Vec<String> = s
        .path
        .segments
        .iter()
        .map(|seg| {
            format!(
                "        {{\"phase\": \"{}\", \"start_s\": {:.9e}, \"end_s\": {:.9e}, \"job\": {}}}",
                phase_name(seg.phase),
                seg.start_s,
                seg.end_s,
                seg.job.map_or("null".to_string(), |j| j.to_string())
            )
        })
        .collect();
    out.push_str(&segs.join(",\n"));
    out.push_str("\n      ]},\n      \"jobs\": [\n");
    let jobs: Vec<String> = s
        .lifecycles
        .iter()
        .map(|l| {
            let (win_start, win_end) = l.device_window.unwrap_or((0.0, 0.0));
            format!(
                "        {{\"vp\": {}, \"seq\": {}, \"transfer_sim_s\": {:.9e}, \
                 \"compute_sim_s\": {:.9e}, \"window_start_s\": {:.9e}, \
                 \"window_end_s\": {:.9e}, \"stall_s\": {:.9e}}}",
                l.vp,
                l.seq,
                l.transfer_sim_s,
                l.compute_sim_s,
                win_start,
                win_end,
                l.device_stall_s()
            )
        })
        .collect();
    out.push_str(&jobs.join(",\n"));
    out.push_str("\n      ]\n    }");
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let telemetry = sigmavp_telemetry::install();
    let arch = GpuArch::quadro_4000();
    let mut report = AuditReport::new(args.tolerance);

    // The always-on observability pair: every completed job (planned or live)
    // folds into the online profile store, and the chaos smoke's breaker trip
    // must leave a parseable post-mortem behind.
    let profiles = SharedProfileStore::new();
    profiles.install();
    let recorder = FlightRecorder::new(FlightConfig::default());
    recorder.attach(telemetry);
    recorder.install_incident_sink();

    // --- Scenario 1: async4 — Eq. 7 interleaved makespan. -------------------
    let (tm, tk) = (1e-4, 2e-4);
    let async4 = match run_scenario(
        "async4",
        fleet_records(4, tm, tk, &arch),
        &Policy::Fifo,
        false,
        &arch,
        args.inject_slowdown,
        args.passes.as_deref(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = observed_inputs(&async4.records);
    report.push("eq7", eq7_makespan_s(inputs.n, inputs.tm_s, inputs.tk_s), async4.makespan_s);

    // --- Scenario 2: speedup4 — Eq. 8 bound at Tm = Tk. ----------------------
    // The serial baseline is synchronous serialization: the plain duration sum
    // (as in Fig. 9 — every blocking call queues behind the previous one).
    let t = 1.5e-4;
    let speedup4 = match run_scenario(
        "speedup4",
        fleet_records(4, t, t, &arch),
        &Policy::Fifo,
        false,
        &arch,
        args.inject_slowdown,
        args.passes.as_deref(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serial_s: f64 = speedup4.records.iter().map(|r| r.duration_s).sum();
    let measured_speedup = serial_s / speedup4.makespan_s;
    report.push("eq8", eq8_speedup_bound(4), measured_speedup);

    // --- Scenario 3: coalesce6 — Eq. 9 merged-launch alignment. --------------
    let wave_s = 5e-5;
    let coalesce6 = match run_scenario(
        "coalesce6",
        coalescible_records(6, wave_s, &arch),
        &Policy::MultiplexedOptimized,
        true,
        &arch,
        args.inject_slowdown,
        args.passes.as_deref(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group = match coalesce6.plan.stream.groups.first() {
        Some(g) => g,
        None => {
            eprintln!("audit: coalesce6 produced no merge group — coalescing is broken");
            return ExitCode::FAILURE;
        }
    };
    // Eq. 9 inputs observed from the log: To and Te from the member records
    // (Te = per-wave compute time), ξ = the merged grid, λ from the device.
    let (mut xi, mut sum_compute, mut sum_waves, mut to_s) = (0u64, 0.0f64, 0u64, 0.0f64);
    for r in &coalesce6.records {
        if let RecordKind::Kernel { grid_dim, launch_overhead_s, waves, .. } = &r.kind {
            xi += u64::from(*grid_dim);
            to_s = *launch_overhead_s;
            sum_waves += *waves;
            sum_compute += (r.duration_s - launch_overhead_s).max(0.0);
        }
    }
    let te_s = if sum_waves > 0 { sum_compute / sum_waves as f64 } else { 0.0 };
    let lambda = u64::from(arch.blocks_per_wave(128));
    let merged_span = match coalesce6.plan.timeline.span(group.anchor.0) {
        Some(sp) => (sp.end_s - sp.start_s) * args.inject_slowdown,
        None => {
            eprintln!("audit: merged anchor op missing from the coalesce6 timeline");
            return ExitCode::FAILURE;
        }
    };
    report.push("eq9", eq9_merged_kernel_s(to_s, te_s, xi, lambda), merged_span);

    // The planned job logs feed the same profile ingest the dispatcher uses
    // live, so the gated counters cover both paths.
    for s in [&async4, &speedup4, &coalesce6] {
        profiles.observe_records(&arch, &s.records);
    }

    // --- Live dispatched fleet: plan.pass.* timings + wall lifecycles. -------
    // Run twice: the first run feeds the report, the second only proves the
    // determinism contract — two same-seed live runs must fold to
    // byte-identical serialized profiles despite thread-ordered arrival.
    let live_fleet = || {
        let app = VectorAddApp { n: 4096 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys =
            DispatchedSigmaVp::single(arch.clone(), registry, TransportCost::shared_memory())
                .with_policy(sigmavp::Policy::Fifo.with_tier(args.tier));
        for _ in 0..4 {
            sys.spawn(Box::new(VectorAddApp { n: 4096 }));
        }
        sys.join()
    };
    let (fleet_report, stats) = live_fleet();
    if !fleet_report.all_ok() {
        eprintln!("audit: live fleet failed validation: {:?}", fleet_report.outcomes);
        return ExitCode::FAILURE;
    }
    let wall_lifecycles = join_lifecycles(&telemetry.drain_events());
    recorder.sample();
    let (fleet_report_b, _) = live_fleet();
    if !fleet_report_b.all_ok() {
        eprintln!("audit: live fleet rerun failed validation: {:?}", fleet_report_b.outcomes);
        return ExitCode::FAILURE;
    }
    let fold = |records: &[JobRecord]| {
        let mut store = ProfileStore::new();
        store.observe_records(&arch, records);
        store.snapshot().to_json()
    };
    if fold(&fleet_report.records) != fold(&fleet_report_b.records) {
        eprintln!("audit: same-seed live runs folded to different serialized profiles");
        return ExitCode::FAILURE;
    }

    // --- Chaos smoke: kill a GPU mid-run under a lossy link. -----------------
    let chaos = match run_chaos(args.fault_seed, &arch, &telemetry, args.tier) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    recorder.sample();
    // --- Sync-mode window scenario (opt-in, gated). --------------------------
    let sync = if args.sync {
        match run_sync(&arch, args.tier) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("audit: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    // --- Liveness scenarios: quorum flush, timeout flush, hung-VP watchdog. --
    let liveness = if args.sync {
        match run_liveness(&arch, args.tier) {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("audit: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    recorder.sample();
    let snapshot = telemetry.snapshot();

    // --- Post-mortem: the chaos breaker trip must have dumped a bundle; with
    // the liveness scenarios on, the hang quarantine's `vp_hung` dump is the
    // one CI's bundle check exercises.
    let bundles = recorder.bundles();
    let bundle = if liveness.is_some() {
        bundles.iter().rev().find(|b| b.name.ends_with("vp_hung"))
    } else {
        bundles.last()
    };
    let Some(bundle) = bundle else {
        eprintln!("audit: no post-mortem bundle was dumped (breaker trip / vp_hung quarantine)");
        return ExitCode::FAILURE;
    };
    if let Err(e) = validate_bundle(&bundle.json) {
        eprintln!("audit: post-mortem {} is malformed: {e}", bundle.name);
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(POSTMORTEM_OUT, &bundle.json) {
        eprintln!("audit: cannot write {POSTMORTEM_OUT}: {e}");
        return ExitCode::FAILURE;
    }
    let profile_snapshot = profiles.snapshot();

    // --- Gate metrics (deterministic simulated quantities only). -------------
    let mut gate: Vec<(String, f64)> = vec![
        ("async4.makespan_s".into(), async4.makespan_s),
        ("async4.overlap_fraction".into(), async4.plan.timeline.overlap_fraction()),
        ("async4.eq7_residual_frac".into(), report.entry("eq7").expect("pushed").residual_frac),
        ("async4.critical_path_stall_s".into(), async4.path.stall_s().max(0.0)),
        ("speedup4.serial_makespan_s".into(), serial_s),
        ("speedup4.async_makespan_s".into(), speedup4.makespan_s),
        ("speedup4.measured_speedup".into(), measured_speedup),
        ("speedup4.eq8_residual_frac".into(), report.entry("eq8").expect("pushed").residual_frac),
        ("coalesce6.makespan_s".into(), coalesce6.makespan_s),
        ("coalesce6.eq9_residual_frac".into(), report.entry("eq9").expect("pushed").residual_frac),
        ("coalesce6.merged_members".into(), coalesce6.plan.coalesced_members() as f64),
        ("trace.dropped_events".into(), snapshot.dropped_events as f64),
        // The chaos smoke's fault story is fully seed-determined: the same seed
        // must reproduce the same retries, trips, migrations, and makespan.
        ("chaos.makespan_s".into(), chaos.makespan_s),
        ("chaos.fault_retries".into(), chaos.retries as f64),
        ("chaos.gpu_trips".into(), chaos.gpu_trips as f64),
        ("chaos.migrations".into(), chaos.migrations as f64),
        // Observability counters: ingest volume, snapshot cadence and incident
        // dumps are all functions of the same-seed run, so they gate exactly.
        ("obs.profile_updates".into(), profile_snapshot.updates as f64),
        ("obs.profile_entries".into(), profile_snapshot.entries() as f64),
        ("obs.snapshots".into(), recorder.taken() as f64),
        ("obs.incidents".into(), recorder.incidents().len() as f64),
        ("obs.postmortems".into(), bundles.len() as f64),
    ];
    if let Some(s) = &sync {
        // The window ledger is fully deterministic (and verified byte-identical
        // across two in-process runs above), so it gates at face value.
        gate.extend([
            ("sync.holds".into(), s.holds as f64),
            ("sync.windows".into(), s.sync_windows as f64),
            ("sync.live_groups".into(), s.live_groups as f64),
            ("sync.live_members".into(), s.live_members as f64),
            ("sync.stop_events".into(), s.stop_events as f64),
            ("sync.makespan_s".into(), s.sync_makespan_s),
            ("sync.reorder_makespan_s".into(), s.sync_reorder_makespan_s),
        ]);
    }
    if let Some(l) = &liveness {
        // Each liveness ledger is verified byte-identical across two
        // in-process runs above, so the counters gate at face value.
        gate.extend([
            ("sync.quorum.holds".into(), l.quorum.holds as f64),
            ("sync.quorum.windows".into(), l.quorum.sync_windows as f64),
            ("sync.quorum.partial_flushes".into(), l.quorum.quorum_flushes as f64),
            ("sync.quorum.makespan_s".into(), l.quorum.sync_makespan_s),
            ("liveness.timeout_windows".into(), l.timeout.sync_windows as f64),
            ("liveness.timeout_flushes".into(), l.timeout.timeout_flushes as f64),
            ("liveness.hang_holds".into(), l.hang.holds as f64),
            ("liveness.hang_windows_flushed".into(), l.hang.sync_windows as f64),
            ("liveness.hang_backstop_trips".into(), l.hang.backstop_trips as f64),
            ("liveness.hang_quarantined".into(), l.hang.quarantined as f64),
            ("liveness.hang_rejoins".into(), l.hang.rejoins as f64),
        ]);
    }

    // --- BENCH_audit.json. ----------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"sigmavp-audit-v1\",\n");
    json.push_str(&format!("  \"tolerance\": {:.6},\n", args.tolerance));
    // The gate section is byte-identical to the baseline format so tooling can
    // extract and parse it with the same flat parser.
    let flat = format_flat_json(&gate);
    json.push_str(&format!("  \"gate\": {},\n", flat.trim_end().replace('\n', "\n  ")));
    json.push_str(&format!("  \"model\": {},\n", report.to_json()));
    json.push_str("  \"scenarios\": {\n");
    let scenarios = [&async4, &speedup4, &coalesce6].map(scenario_json);
    json.push_str(&scenarios.join(",\n"));
    json.push_str("\n  },\n");
    let passes: Vec<String> = snapshot
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("plan.pass.") && name.ends_with(".time_s"))
        .map(|(name, h)| {
            format!(
                "    {{\"name\": \"{}\", \"calls\": {}, \"mean_s\": {:.9e}, \"max_s\": {:.9e}}}",
                escape_json(name),
                h.count,
                if h.count > 0 { h.sum / h.count as f64 } else { 0.0 },
                h.max
            )
        })
        .collect();
    json.push_str(&format!("  \"passes\": [\n{}\n  ],\n", passes.join(",\n")));
    let queue_wait_mean_s = if wall_lifecycles.is_empty() {
        0.0
    } else {
        wall_lifecycles.iter().map(|l| l.queue_wall_s).sum::<f64>() / wall_lifecycles.len() as f64
    };
    json.push_str(&format!(
        "  \"live\": {{\"requests\": {}, \"jobs_joined\": {}, \"queue_wait_mean_s\": {:.9e}, \
         \"dropped_events\": {}}},\n",
        stats.requests,
        wall_lifecycles.len(),
        queue_wait_mean_s,
        snapshot.dropped_events
    ));
    if let Some(s) = &sync {
        json.push_str(&format!(
            "  \"sync\": {{\"holds\": {}, \"windows\": {}, \"live_groups\": {}, \
             \"live_members\": {}, \"stop_events\": {}, \"resume_events\": {}, \
             \"wave_slots\": {}, \"wave_filled\": {}, \"makespan_s\": {:.9e}, \
             \"reorder_makespan_s\": {:.9e}}},\n",
            s.holds,
            s.sync_windows,
            s.live_groups,
            s.live_members,
            s.stop_events,
            s.resume_events,
            s.wave_slots,
            s.wave_filled,
            s.sync_makespan_s,
            s.sync_reorder_makespan_s
        ));
    }
    if let Some(l) = &liveness {
        json.push_str(&format!(
            "  \"liveness\": {{\
             \"quorum\": {{\"holds\": {}, \"windows\": {}, \"partial_flushes\": {}, \
             \"makespan_s\": {:.9e}}}, \
             \"timeout\": {{\"holds\": {}, \"windows\": {}, \"timeout_flushes\": {}}}, \
             \"hang\": {{\"holds\": {}, \"windows\": {}, \"backstop_trips\": {}, \
             \"quarantined\": {}, \"rejoins\": {}, \"migrations\": {}}}}},\n",
            l.quorum.holds,
            l.quorum.sync_windows,
            l.quorum.quorum_flushes,
            l.quorum.sync_makespan_s,
            l.timeout.holds,
            l.timeout.sync_windows,
            l.timeout.timeout_flushes,
            l.hang.holds,
            l.hang.sync_windows,
            l.hang.backstop_trips,
            l.hang.quarantined,
            l.hang.rejoins,
            l.hang.migrations
        ));
    }
    json.push_str(&format!(
        "  \"obs\": {{\"snapshots\": {}, \"incidents\": {}, \"postmortems\": {}, \
         \"profile\": {}}},\n",
        recorder.taken(),
        recorder.incidents().len(),
        bundles.len(),
        profile_snapshot.to_json().trim_end().replace('\n', "\n  ")
    ));
    json.push_str(&format!(
        "  \"chaos\": {{\"seed\": {}, \"makespan_s\": {:.9e}, \"requests\": {}, \
         \"fault_retries\": {}, \"gpu_trips\": {}, \"migrations\": {}, \"dedup_hits\": {}}}\n}}\n",
        chaos.seed,
        chaos.makespan_s,
        chaos.requests,
        chaos.retries,
        chaos.gpu_trips,
        chaos.migrations,
        chaos.dedup_hits
    ));
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("audit: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    // --- Human-readable summary. ----------------------------------------------
    for s in [&async4, &speedup4, &coalesce6] {
        println!(
            "{}: makespan {:.3} ms, overlap {:.0}%, critical path conserved \
             (busy {:.3} ms + stall {:.3} ms)",
            s.name,
            s.makespan_s * 1e3,
            s.plan.timeline.overlap_fraction() * 100.0,
            s.path.busy_s() * 1e3,
            s.path.stall_s().max(0.0) * 1e3
        );
    }
    for e in &report.entries {
        println!(
            "model {}: predicted {:.6e}, measured {:.6e}, residual {:.2}% [{}]",
            e.name,
            e.predicted,
            e.measured,
            e.residual_frac * 100.0,
            if e.within_tolerance { "ok" } else { "FLAGGED" }
        );
    }
    if snapshot.dropped_events > 0 {
        eprintln!(
            "audit: WARNING: {} trace events dropped; wall lifecycles are incomplete",
            snapshot.dropped_events
        );
    }
    println!(
        "live fleet: {} requests, {} lifecycles joined, mean queue wait {:.3} ms",
        stats.requests,
        wall_lifecycles.len(),
        queue_wait_mean_s * 1e3
    );
    if let Some(s) = &sync {
        println!(
            "sync: {} holds over {} window(s), {} live group(s) absorbing {} launch(es), \
             makespan {:.3} ms vs reorder-only {:.3} ms (ledger byte-identical across runs)",
            s.holds,
            s.sync_windows,
            s.live_groups,
            s.live_members,
            s.sync_makespan_s * 1e3,
            s.sync_reorder_makespan_s * 1e3
        );
    }
    if let Some(l) = &liveness {
        println!(
            "liveness: quorum flushed {} partial window(s), timeout flushed {}, watchdog \
             quarantined {} hung VP(s) ({} rejoined; ledgers byte-identical across runs)",
            l.quorum.quorum_flushes, l.timeout.timeout_flushes, l.hang.quarantined, l.hang.rejoins
        );
    }
    println!(
        "chaos (seed {}): survived gpu kill — {} requests, {} retries, {} dedup hits, \
         {} trip(s), {} migration(s), makespan {:.3} ms",
        chaos.seed,
        chaos.requests,
        chaos.retries,
        chaos.dedup_hits,
        chaos.gpu_trips,
        chaos.migrations,
        chaos.makespan_s * 1e3
    );
    println!(
        "obs: {} profile updates over {} entries, {} snapshot(s), {} incident(s), \
         post-mortem {} ({} bytes) -> {POSTMORTEM_OUT}",
        profile_snapshot.updates,
        profile_snapshot.entries(),
        recorder.taken(),
        recorder.incidents().len(),
        bundle.name,
        bundle.json.len()
    );
    println!("wrote {}", args.out);

    // --- Baseline write / check. ----------------------------------------------
    let mut failed = match run_gate(
        &GateConfig {
            tool: "audit",
            baseline: &args.baseline,
            tolerance: args.tolerance,
            write_baseline: args.write_baseline,
            check: args.check,
        },
        &gate,
    ) {
        Ok(regressed) => regressed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if !report.all_within() {
        for e in report.flagged() {
            eprintln!(
                "audit: model residual {} = {:.2}% exceeds tolerance {:.0}%",
                e.name,
                e.residual_frac * 100.0,
                args.tolerance * 100.0
            );
        }
        failed = true;
    }
    // Demonstrate uid round-tripping in the summary (and keep the helpers hot).
    if let Some(l) = async4.lifecycles.first() {
        debug_assert_eq!((job_uid_vp(l.job), job_uid_seq(l.job)), (l.vp, l.seq));
    }
    sigmavp_telemetry::bus::clear_sinks();
    sigmavp_telemetry::uninstall();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
