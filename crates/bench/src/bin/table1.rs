//! Regenerate Table 1 of the paper.

fn main() {
    let t = sigmavp_bench::table1::run();
    sigmavp_bench::table1::print(&t);
}
