//! Block-parallel throughput benchmark and regression gate.
//!
//! ```text
//! cargo run --release -p sigmavp-bench --bin perf                    # measure + write BENCH_perf.json
//! cargo run --release -p sigmavp-bench --bin perf -- --write-baseline
//! cargo run --release -p sigmavp-bench --bin perf -- --check        # gate against the committed baseline
//! cargo run --release -p sigmavp-bench --bin perf -- --passes dep_order,coalesce
//! cargo run --release -p sigmavp-bench --bin perf -- --tier scalar    # pin the interpreter tier
//! ```
//!
//! **Tier comparison.** Before the worker sweep, the fleet is executed at
//! `workers = 1` under both SPTX interpreter tiers — the scalar reference and
//! the decoded warp-lockstep tier — asserting the workload is identical and
//! reporting the warp tier's wall-clock speedup plus its decode-cache and
//! warp-execution counters (`sptx.decode.*`, `sptx.warp.*`). The warp tier
//! must never be slower than scalar (the run hard-fails if the measured tier
//! speedup drops below 1.0); the worker sweep itself runs at the tier
//! selected by `--tier` (warp by default).
//!
//! A fixed multi-VP fleet — four VPs running compute-heavy suite apps
//! (Mandelbrot ×2, MatrixMul, N-body) against one host GPU — is executed twice
//! through the live dispatcher: once with the sequential interpreter
//! (`workers = 1`) and once block-parallel (`workers = N`, default 4). Each
//! configuration runs `--repeats` times; the fastest wall time counts (the
//! usual guard against scheduler noise), and the deterministic quantities
//! (jobs, instructions) are asserted identical across every repeat *and* both
//! worker counts — the parallel engine must not change what executes, only how
//! fast.
//!
//! Reported per configuration: wall makespan, jobs/s, instructions/s. The
//! headline metric is the wall-clock speedup of `workers = N` over
//! `workers = 1`.
//!
//! **Acceptance bar.** The target is ≥ 2× at `workers = 4` — but that is a
//! statement about hardware as much as software, so the enforced bar scales
//! with the host's available parallelism: ≥ 2.0× with 4+ cores, ≥ 1.3× with
//! 2–3, and ≥ 0.5× on a single core (where no speedup is physically possible
//! and the bar instead bounds the parallel engine's overhead).
//!
//! **Observability overhead.** The parallel configuration is then re-run with
//! the always-on observability pair attached — the profile store folding every
//! completion off the bus and the flight recorder sampling on a 2 ms cadence —
//! and the wall-time cost is bounded: ≤ 5% with 4+ cores, scaled looser where
//! the sampler has to fight the workload for cores (like the speedup bar).
//!
//! **Gate.** `--check` compares against the committed baseline
//! (`results/baselines/perf.json`) through the direction-aware store:
//! `perf.speedup_wall` is higher-is-better (a baseline near 1.0 from a 1-core
//! CI host still catches "parallel got slower than sequential" anywhere),
//! while the job and instruction counts are exact-ish deterministic quantities
//! that catch the workload silently changing shape. Raw wall seconds are
//! reported but never gated — wall time is machine property, the speedup
//! ratio is a code property.
//!
//! **Ablation.** `--passes a,b,c` re-plans the fleet's per-device job logs
//! through an explicitly composed scheduling [`Pipeline`] (see
//! [`Pipeline::parse`]) and reports planned makespan, overlap, and merge
//! counts next to the default policy's plan — pass-level ablations without
//! recompiling.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sigmavp::dispatcher::DispatchedSigmaVp;
use sigmavp::plan_device;
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_obs::{
    format_flat_json, run_gate, FlightConfig, FlightRecorder, GateConfig, SharedProfileStore,
};
use sigmavp_sched::{ExecTier, Pipeline, Policy};
use sigmavp_sptx::exec::default_workers;
use sigmavp_telemetry::export::escape_json;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::Application;
use sigmavp_workloads::apps::{MandelbrotApp, MatrixMulApp, NbodyApp};

const DEFAULT_BASELINE: &str = "results/baselines/perf.json";
const DEFAULT_OUT: &str = "BENCH_perf.json";
const DEFAULT_FLEET_BASELINE: &str = "results/baselines/fleet.json";
const DEFAULT_FLEET_OUT: &str = "BENCH_fleet.json";
const DEFAULT_TOLERANCE: f64 = 0.25;
const DEFAULT_WORKERS: u32 = 4;
const DEFAULT_REPEATS: u32 = 3;
const DEFAULT_SCALE: u32 = 2;
const DEFAULT_VPS: u32 = 256;

struct Args {
    check: bool,
    write_baseline: bool,
    baseline: String,
    out: String,
    tolerance: f64,
    workers: u32,
    repeats: u32,
    scale: u32,
    passes: Option<String>,
    fleet: bool,
    vps: u32,
    tier: ExecTier,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf [--check] [--write-baseline] [--baseline PATH] [--out PATH] \
         [--tolerance F] [--workers N] [--repeats N] [--scale N] [--passes a,b,c] \
         [--tier scalar|warp] [--fleet] [--vps N]"
    );
    std::process::exit(2);
}

fn parse_tier(s: &str) -> ExecTier {
    match s {
        "scalar" => ExecTier::Scalar,
        "warp" => ExecTier::Warp,
        _ => {
            eprintln!("--tier must be 'scalar' or 'warp', got '{s}'");
            usage()
        }
    }
}

fn tier_name(tier: ExecTier) -> &'static str {
    match tier {
        ExecTier::Scalar => "scalar",
        ExecTier::Warp => "warp",
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        write_baseline: false,
        baseline: DEFAULT_BASELINE.to_string(),
        out: DEFAULT_OUT.to_string(),
        tolerance: DEFAULT_TOLERANCE,
        workers: DEFAULT_WORKERS,
        repeats: DEFAULT_REPEATS,
        scale: DEFAULT_SCALE,
        passes: None,
        fleet: false,
        vps: DEFAULT_VPS,
        tier: ExecTier::Warp,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--check" => args.check = true,
            "--write-baseline" => args.write_baseline = true,
            "--baseline" => args.baseline = value("--baseline"),
            "--out" => args.out = value("--out"),
            "--tolerance" => {
                args.tolerance = value("--tolerance").parse().unwrap_or_else(|_| usage())
            }
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--repeats" => {
                args.repeats = value("--repeats").parse::<u32>().unwrap_or_else(|_| usage()).max(1)
            }
            "--scale" => args.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--passes" => args.passes = Some(value("--passes")),
            "--tier" => args.tier = parse_tier(&value("--tier")),
            "--fleet" => args.fleet = true,
            "--vps" => args.vps = value("--vps").parse::<u32>().unwrap_or_else(|_| usage()).max(8),
            _ => usage(),
        }
    }
    args
}

/// The fixed fleet: four compute-heavy VPs against one host GPU, so the
/// interpreter's grid loop — not device-level concurrency — is what the
/// worker count accelerates.
fn fleet_apps(scale: u32) -> Vec<Box<dyn Application + Send>> {
    vec![
        Box::new(MandelbrotApp::new(scale)),
        Box::new(MatrixMulApp::new(scale)),
        Box::new(NbodyApp::new(scale)),
        Box::new(MandelbrotApp::new(scale)),
    ]
}

/// One measured fleet execution.
struct Measure {
    wall_s: f64,
    jobs: u64,
    instructions: u64,
    launches: u64,
    parallel_launches: u64,
    sim_makespan_s: f64,
    device_records: Vec<Vec<sigmavp::host::JobRecord>>,
    /// Warp-tier observability deltas (all zero under the scalar tier). The
    /// decode counters are *not* deterministic across repeats — the decode
    /// cache is process-global, so only the first run of a program misses.
    decode_hits: u64,
    decode_misses: u64,
    warps: u64,
    uniform_loads: u64,
    divergent_branches: u64,
}

impl Measure {
    fn jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.wall_s
    }
    fn instructions_per_s(&self) -> f64 {
        self.instructions as f64 / self.wall_s
    }
}

fn run_fleet(
    workers: u32,
    scale: u32,
    tier: ExecTier,
    telemetry: &sigmavp_telemetry::Telemetry,
) -> Result<Measure, String> {
    let registry: KernelRegistry = fleet_apps(scale).iter().flat_map(|app| app.kernels()).collect();
    let mut sys =
        DispatchedSigmaVp::single(GpuArch::quadro_4000(), registry, TransportCost::shared_memory())
            .with_policy(Policy::Fifo.with_workers(workers).with_tier(tier));
    for app in fleet_apps(scale) {
        sys.spawn(app);
    }
    let before = telemetry.snapshot();
    let started = Instant::now();
    let (report, stats) = sys.join();
    let wall_s = started.elapsed().as_secs_f64();
    let after = telemetry.snapshot();
    if !report.all_ok() {
        return Err(format!(
            "fleet failed at workers={workers}: outcomes {:?}, failed {:?}",
            report.outcomes, report.failed_vps
        ));
    }
    let delta = |name: &str| {
        after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
    };
    Ok(Measure {
        wall_s,
        jobs: stats.requests,
        instructions: delta("sptx.instructions_executed"),
        launches: delta("sptx.launches"),
        parallel_launches: delta("sptx.parallel.launches"),
        sim_makespan_s: report.device_makespan_s,
        device_records: report.device_records,
        decode_hits: delta("sptx.decode.hits"),
        decode_misses: delta("sptx.decode.misses"),
        warps: delta("sptx.warp.warps"),
        uniform_loads: delta("sptx.warp.uniform_loads"),
        divergent_branches: delta("sptx.warp.divergent_branches"),
    })
}

/// Best wall time over `repeats` runs; deterministic quantities asserted
/// identical across repeats.
fn run_config(
    workers: u32,
    scale: u32,
    repeats: u32,
    tier: ExecTier,
    telemetry: &sigmavp_telemetry::Telemetry,
) -> Result<Measure, String> {
    let mut best: Option<Measure> = None;
    for _ in 0..repeats {
        let m = run_fleet(workers, scale, tier, telemetry)?;
        if let Some(b) = &best {
            if (m.jobs, m.instructions, m.launches) != (b.jobs, b.instructions, b.launches) {
                return Err(format!(
                    "workers={workers}: nondeterministic workload across repeats \
                     (jobs {} vs {}, instructions {} vs {})",
                    m.jobs, b.jobs, m.instructions, b.instructions
                ));
            }
        }
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    Ok(best.expect("repeats >= 1"))
}

/// The enforced speedup bar, scaled to what the host can physically deliver.
fn required_speedup(host_parallelism: usize) -> f64 {
    match host_parallelism {
        0 | 1 => 0.5, // no parallelism available: bound the engine's overhead
        2 | 3 => 1.3,
        _ => 2.0,
    }
}

/// The flight-recorder overhead bound, scaled like [`required_speedup`]:
/// always-on observability must cost ≤ 5% wall where there is parallelism to
/// absorb the sampler, looser where it fights the workload for 1–2 cores.
fn allowed_overhead(host_parallelism: usize) -> f64 {
    match host_parallelism {
        0 | 1 => 0.50,
        2 | 3 => 0.15,
        _ => 0.05,
    }
}

/// Re-run the parallel configuration with the always-on observability pair
/// attached — profile store folding every completion off the bus, flight
/// recorder sampling snapshots on a 2 ms cadence — and return the measured
/// wall time plus what the instruments captured.
fn run_flight_on(
    workers: u32,
    scale: u32,
    repeats: u32,
    tier: ExecTier,
    telemetry: &sigmavp_telemetry::Telemetry,
) -> Result<(Measure, u64, u64), String> {
    let profiles = SharedProfileStore::new();
    profiles.install();
    let recorder = FlightRecorder::new(FlightConfig::default());
    recorder.attach(*telemetry);
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let recorder = recorder.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                recorder.sample();
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let result = run_config(workers, scale, repeats, tier, telemetry);
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread joins");
    sigmavp_telemetry::bus::clear_sinks();
    result.map(|m| (m, profiles.updates(), recorder.taken()))
}

// --- Fleet mode (`--fleet`): sharded multi-session scaling gate. -------------

/// One measured fleet run: wall time plus the deterministic counters the gate
/// asserts byte-identical across repeats and same-seed runs.
#[derive(Debug, Clone, PartialEq)]
struct FleetMeasure {
    wall_s: f64,
    submitted: u64,
    steals: u64,
    migrations: u64,
    gpu_jobs: u64,
    p99_wait_s: f64,
}

impl FleetMeasure {
    fn jobs_per_s(&self) -> f64 {
        self.submitted as f64 / self.wall_s
    }

    /// Everything except wall time — must be identical across repeats.
    fn deterministic(&self) -> (u64, u64, u64, u64, f64) {
        (self.submitted, self.steals, self.migrations, self.gpu_jobs, self.p99_wait_s)
    }
}

fn fleet_registry() -> KernelRegistry {
    sigmavp_workloads::apps::VectorAddApp { n: 1024 }.kernels().into_iter().collect()
}

/// Per-VP scripts with skewed launch counts (1–4), so consistent-hash
/// placement leaves a load imbalance for the rebalancer to fix.
fn fleet_scripts(vps: u32) -> Vec<(sigmavp_ipc::message::VpId, sigmavp_fleet::VpScript)> {
    (0..vps)
        .map(|vp| {
            (
                sigmavp_ipc::message::VpId(vp),
                sigmavp_fleet::VpScript::vector_add(1024, 1 + vp % 4, vp as u64),
            )
        })
        .collect()
}

/// Run `vps` scripted VPs over `sessions` sessions in wavefront order.
fn run_fleet_config(sessions: usize, vps: u32) -> Result<FleetMeasure, String> {
    let config = sigmavp_fleet::FleetConfig::new(sessions)
        .with_capacity(vps as usize) // one outstanding request per VP: never sheds
        .with_steal_interval(64);
    let fleet = sigmavp_fleet::Fleet::new(config, fleet_registry()).map_err(|e| e.to_string())?;
    let mut scripts = fleet_scripts(vps);
    for (vp, _) in &scripts {
        fleet.admit(*vp).map_err(|e| e.to_string())?;
    }
    let started = Instant::now();
    let submitted = sigmavp_fleet::drive(&fleet, &mut scripts)?;
    let wall_s = started.elapsed().as_secs_f64();
    let outcome = fleet.shutdown();
    if outcome.stats.completed != submitted {
        return Err(format!(
            "sessions={sessions}: {} of {submitted} jobs completed",
            outcome.stats.completed
        ));
    }
    if outcome.stats.shed != 0 {
        return Err(format!("sessions={sessions}: unexpected sheds: {}", outcome.stats.shed));
    }
    Ok(FleetMeasure {
        wall_s,
        submitted,
        steals: outcome.stats.steals,
        migrations: outcome.stats.migrations,
        gpu_jobs: outcome.gpu_jobs() as u64,
        p99_wait_s: outcome.p99_queue_wait_s(),
    })
}

/// Best wall time over `repeats`; deterministic counters asserted identical.
fn run_fleet_repeats(sessions: usize, vps: u32, repeats: u32) -> Result<FleetMeasure, String> {
    let mut best: Option<FleetMeasure> = None;
    for _ in 0..repeats {
        let m = run_fleet_config(sessions, vps)?;
        if let Some(b) = &best {
            if m.deterministic() != b.deterministic() {
                return Err(format!(
                    "sessions={sessions}: counters changed across same-seed repeats: \
                     {:?} vs {:?}",
                    m.deterministic(),
                    b.deterministic()
                ));
            }
        }
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    Ok(best.expect("repeats >= 1"))
}

/// Deterministic backpressure probe: with dispatchers held, `capacity + extra`
/// submits must shed exactly `extra` requests.
fn admission_probe(capacity: usize, extra: u32) -> Result<u64, String> {
    use sigmavp_ipc::message::{Request, VpId};
    let config = sigmavp_fleet::FleetConfig::new(1).with_capacity(capacity);
    let fleet = sigmavp_fleet::Fleet::new(config, fleet_registry()).map_err(|e| e.to_string())?;
    fleet.hold_workers();
    let total = capacity as u32 + extra;
    let mut accepted = Vec::new();
    for vp in 0..total {
        fleet.admit(VpId(vp)).map_err(|e| e.to_string())?;
    }
    for vp in 0..total {
        match fleet.submit(VpId(vp), Request::Malloc { bytes: 64 }) {
            Ok(_) => accepted.push(VpId(vp)),
            Err(sigmavp_fleet::FleetError::Saturated { .. }) => {}
            Err(e) => return Err(format!("probe submit: {e}")),
        }
    }
    fleet.release_workers();
    for vp in accepted {
        fleet.wait(vp).map_err(|e| format!("probe wait: {e}"))?;
    }
    let shed = fleet.stats().shed;
    fleet.shutdown();
    Ok(shed)
}

/// Kill one of `sessions` sessions halfway through the admission sequence and
/// require every job to finish on the survivors.
fn kill_run(sessions: usize, vps: u32) -> Result<(u64, sigmavp_fleet::FleetStats), String> {
    let config = sigmavp_fleet::FleetConfig::new(sessions)
        .with_capacity(vps as usize)
        .with_steal_interval(64);
    let fleet = sigmavp_fleet::Fleet::new(config, fleet_registry()).map_err(|e| e.to_string())?;
    let mut scripts = fleet_scripts(vps);
    for (vp, _) in &scripts {
        fleet.admit(*vp).map_err(|e| e.to_string())?;
    }
    let total: u64 = scripts.iter().map(|(_, s)| s.jobs_total()).sum();
    let submitted = sigmavp_fleet::drive_with(&fleet, &mut scripts, |fleet, admitted| {
        if admitted == total / 2 {
            fleet.kill_session(1).expect("session 1 exists");
        }
    })?;
    let outcome = fleet.shutdown();
    if outcome.stats.completed != submitted {
        return Err(format!(
            "kill run: {} of {submitted} jobs completed on the survivors",
            outcome.stats.completed
        ));
    }
    Ok((submitted, outcome.stats))
}

fn fleet_measure_json(name: &str, m: &FleetMeasure) -> String {
    format!(
        "    \"{name}\": {{\"wall_s\": {:.9e}, \"jobs\": {}, \"jobs_per_s\": {:.9e}, \
         \"steals\": {}, \"migrations\": {}, \"gpu_jobs\": {}, \"p99_queue_wait_s\": {:.9e}}}",
        m.wall_s,
        m.submitted,
        m.jobs_per_s(),
        m.steals,
        m.migrations,
        m.gpu_jobs,
        m.p99_wait_s
    )
}

/// The `--fleet` entry point: scaling, starvation, backpressure and failover
/// gates for the sharded multi-session front-end.
fn fleet_main(args: &Args, host: usize) -> ExitCode {
    const SESSIONS: usize = 4;
    const PROBE_CAPACITY: usize = 8;
    const PROBE_EXTRA: u32 = 5;
    let baseline = if args.baseline == DEFAULT_BASELINE {
        DEFAULT_FLEET_BASELINE.to_string()
    } else {
        args.baseline.clone()
    };
    let out =
        if args.out == DEFAULT_OUT { DEFAULT_FLEET_OUT.to_string() } else { args.out.clone() };

    println!(
        "perf --fleet: {} scripted VPs over S=1 and S={SESSIONS} sessions, {} repeat(s), \
         host parallelism {host}",
        args.vps, args.repeats
    );

    let s1 = match run_fleet_repeats(1, args.vps, args.repeats) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf --fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s4 = match run_fleet_repeats(SESSIONS, args.vps, args.repeats) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf --fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    if s1.submitted != s4.submitted {
        eprintln!(
            "perf --fleet: session count changed the workload: {} vs {} jobs",
            s1.submitted, s4.submitted
        );
        return ExitCode::FAILURE;
    }

    let scaling = s4.jobs_per_s() / s1.jobs_per_s();
    let required = required_speedup(host);
    for (name, m) in [("S=1", &s1), (&format!("S={SESSIONS}"), &s4)] {
        println!(
            "{name}: wall {:.3} ms, {:.0} jobs/s ({} jobs, {} steals, {} migrations, \
             p99 queue wait {:.3e} s)",
            m.wall_s * 1e3,
            m.jobs_per_s(),
            m.submitted,
            m.steals,
            m.migrations,
            m.p99_wait_s
        );
    }
    println!(
        "scaling: {scaling:.2}x jobs/s at S={SESSIONS} (required >= {required:.1}x on \
         {host}-core host)"
    );

    let probe_shed = match admission_probe(PROBE_CAPACITY, PROBE_EXTRA) {
        Ok(shed) => shed,
        Err(e) => {
            eprintln!("perf --fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "admission probe: capacity {PROBE_CAPACITY} + {PROBE_EXTRA} submits -> {probe_shed} shed"
    );

    let kill_vps = args.vps / 4;
    let (kill_jobs, kill_stats) = match kill_run(SESSIONS, kill_vps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf --fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "failover: killed 1/{SESSIONS} sessions mid-run, {kill_jobs} jobs all completed \
         ({} rescued, {} migrations)",
        kill_stats.rescued_jobs, kill_stats.migrations
    );

    let mut failed = false;
    if probe_shed != PROBE_EXTRA as u64 {
        eprintln!("perf --fleet: probe shed {probe_shed}, expected exactly {PROBE_EXTRA}");
        failed = true;
    }
    if s4.steals == 0 || s4.migrations == 0 {
        eprintln!(
            "perf --fleet: the rebalancer never moved a VP at S={SESSIONS} \
             ({} steals, {} migrations)",
            s4.steals, s4.migrations
        );
        failed = true;
    }
    if kill_stats.session_trips != 1 {
        eprintln!("perf --fleet: expected 1 session trip, saw {}", kill_stats.session_trips);
        failed = true;
    }
    if scaling < required {
        eprintln!(
            "perf --fleet: scaling {scaling:.2}x below the required {required:.1}x for a \
             {host}-core host"
        );
        failed = true;
    }

    // Ratios and deterministic counters only — wall seconds are reported but
    // never gated.
    let gate: Vec<(String, f64)> = vec![
        ("fleet.scaling_speedup".into(), scaling),
        ("fleet.jobs".into(), s1.submitted as f64),
        ("fleet.gpu_jobs".into(), s1.gpu_jobs as f64),
        ("fleet.steals".into(), s4.steals as f64),
        ("fleet.migrations".into(), s4.migrations as f64),
        ("fleet.p99_queue_wait_s".into(), s4.p99_wait_s),
        ("fleet.shed_probe".into(), probe_shed as f64),
        ("fleet.kill_jobs".into(), kill_jobs as f64),
        ("fleet.kill_trips".into(), kill_stats.session_trips as f64),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"sigmavp-fleet-perf-v1\",\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {host},\n  \"sessions_compared\": [1, {SESSIONS}],\n  \
         \"vps\": {},\n  \"repeats\": {},\n  \"tolerance\": {:.6},\n",
        args.vps, args.repeats, args.tolerance
    ));
    let flat = format_flat_json(&gate);
    json.push_str(&format!("  \"gate\": {},\n", flat.trim_end().replace('\n', "\n  ")));
    json.push_str("  \"runs\": {\n");
    json.push_str(&fleet_measure_json("sessions_1", &s1));
    json.push_str(",\n");
    json.push_str(&fleet_measure_json(&format!("sessions_{SESSIONS}"), &s4));
    json.push_str("\n  },\n");
    json.push_str(&format!(
        "  \"scaling\": {{\"jobs_per_s\": {scaling:.6}, \"required\": {required:.6}}},\n"
    ));
    json.push_str(&format!(
        "  \"failover\": {{\"vps\": {kill_vps}, \"jobs\": {kill_jobs}, \"rescued\": {}, \
         \"migrations\": {}, \"session_trips\": {}}}\n}}\n",
        kill_stats.rescued_jobs, kill_stats.migrations, kill_stats.session_trips
    ));
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("perf --fleet: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    match run_gate(
        &GateConfig {
            tool: "perf --fleet",
            baseline: &baseline,
            tolerance: args.tolerance,
            write_baseline: args.write_baseline,
            check: args.check,
        },
        &gate,
    ) {
        Ok(regressed) => failed = failed || regressed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn measure_json(name: &str, m: &Measure) -> String {
    format!(
        "    \"{name}\": {{\"wall_s\": {:.9e}, \"jobs\": {}, \"jobs_per_s\": {:.9e}, \
         \"instructions\": {}, \"instructions_per_s\": {:.9e}, \"launches\": {}, \
         \"parallel_launches\": {}, \"sim_makespan_s\": {:.9e}}}",
        m.wall_s,
        m.jobs,
        m.jobs_per_s(),
        m.instructions,
        m.instructions_per_s(),
        m.launches,
        m.parallel_launches,
        m.sim_makespan_s
    )
}

/// Re-plan `device_records` through `pipeline` and summarize each device plan.
fn ablate(pipeline: &Pipeline, device_records: &[Vec<sigmavp::host::JobRecord>]) -> Vec<String> {
    let arch = GpuArch::quadro_4000();
    device_records
        .iter()
        .enumerate()
        .map(|(d, records)| {
            let plan = plan_device(pipeline, records, &|_| true, &arch);
            format!(
                "    {{\"device\": {d}, \"jobs\": {}, \"makespan_s\": {:.9e}, \
                 \"overlap_fraction\": {:.6}, \"coalesced_members\": {}}}",
                records.len(),
                plan.timeline.makespan_s,
                plan.timeline.overlap_fraction(),
                plan.coalesced_members()
            )
        })
        .collect()
}

fn main() -> ExitCode {
    let args = parse_args();
    let telemetry = sigmavp_telemetry::install();
    let host = default_workers();
    if args.fleet {
        return fleet_main(&args, host);
    }
    if args.workers < 2 {
        eprintln!("perf: --workers must be >= 2 (it is compared against workers=1)");
        return ExitCode::FAILURE;
    }

    println!(
        "perf: fleet of 4 VPs (mandelbrot x2, matrixMul, nbody) at scale {}, \
         1 host GPU, {} repeat(s), host parallelism {}, tier {}",
        args.scale,
        args.repeats,
        host,
        tier_name(args.tier)
    );

    // --- Tier comparison at workers = 1. --------------------------------------
    // Scalar reference vs decoded warp-lockstep, single worker, so the tier —
    // not block parallelism — is the only variable. Both must execute the
    // identical workload; the warp tier must not be slower.
    let tier_scalar = match run_config(1, args.scale, args.repeats, ExecTier::Scalar, &telemetry) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tier_warp = match run_config(1, args.scale, args.repeats, ExecTier::Warp, &telemetry) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    if (tier_scalar.jobs, tier_scalar.instructions, tier_scalar.launches)
        != (tier_warp.jobs, tier_warp.instructions, tier_warp.launches)
    {
        eprintln!(
            "perf: the warp tier changed the workload: jobs {} vs {}, instructions {} vs {}",
            tier_scalar.jobs, tier_warp.jobs, tier_scalar.instructions, tier_warp.instructions
        );
        return ExitCode::FAILURE;
    }
    if tier_warp.warps == 0 {
        eprintln!("perf: the warp tier never executed a warp");
        return ExitCode::FAILURE;
    }
    let tier_speedup = tier_scalar.wall_s / tier_warp.wall_s;
    for (name, m) in [("tier=scalar w=1", &tier_scalar), ("tier=warp   w=1", &tier_warp)] {
        println!(
            "{name}: wall {:.3} ms, {:.3e} instr/s ({} instr)",
            m.wall_s * 1e3,
            m.instructions_per_s(),
            m.instructions
        );
    }
    println!(
        "  warp counters: decode {} hits / {} misses, {} warps, {} uniform loads, \
         {} divergent branches",
        tier_warp.decode_hits,
        tier_warp.decode_misses,
        tier_warp.warps,
        tier_warp.uniform_loads,
        tier_warp.divergent_branches
    );
    println!("tier speedup: {tier_speedup:.2}x wall-clock, warp over scalar (required >= 1.0x)");

    // --- Measure both worker configurations at the selected tier. -------------
    let seq = match run_config(1, args.scale, args.repeats, args.tier, &telemetry) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let par = match run_config(args.workers, args.scale, args.repeats, args.tier, &telemetry) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The parallel engine must execute the identical workload.
    if (seq.jobs, seq.instructions, seq.launches) != (par.jobs, par.instructions, par.launches) {
        eprintln!(
            "perf: workers={} changed the workload: jobs {} vs {}, instructions {} vs {}",
            args.workers, seq.jobs, par.jobs, seq.instructions, par.instructions
        );
        return ExitCode::FAILURE;
    }
    if par.parallel_launches == 0 {
        eprintln!("perf: workers={} never took the block-parallel path", args.workers);
        return ExitCode::FAILURE;
    }

    let speedup = seq.wall_s / par.wall_s;
    let required = required_speedup(host);

    for (name, m) in [("workers=1", &seq), (&format!("workers={}", args.workers), &par)] {
        println!(
            "{name}: wall {:.3} ms, {:.0} jobs/s, {:.3e} instr/s ({} jobs, {} instr, \
             {} parallel launches)",
            m.wall_s * 1e3,
            m.jobs_per_s(),
            m.instructions_per_s(),
            m.jobs,
            m.instructions,
            m.parallel_launches
        );
    }
    println!(
        "speedup: {speedup:.2}x wall-clock at workers={} (required >= {required:.1}x on \
         {host}-core host)",
        args.workers
    );

    // --- Always-on observability overhead bar. --------------------------------
    // Same parallel configuration, flight recorder + profile store live; the
    // workload must be untouched and the wall-time cost bounded.
    let (flight, profile_updates, flight_snapshots) =
        match run_flight_on(args.workers, args.scale, args.repeats, args.tier, &telemetry) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perf: {e}");
                return ExitCode::FAILURE;
            }
        };
    if (flight.jobs, flight.instructions) != (par.jobs, par.instructions) {
        eprintln!(
            "perf: the flight recorder changed the workload: jobs {} vs {}, \
             instructions {} vs {}",
            flight.jobs, par.jobs, flight.instructions, par.instructions
        );
        return ExitCode::FAILURE;
    }
    if profile_updates == 0 || flight_snapshots == 0 {
        eprintln!(
            "perf: observability run captured nothing ({profile_updates} profile updates, \
             {flight_snapshots} snapshots)"
        );
        return ExitCode::FAILURE;
    }
    let overhead = flight.wall_s / par.wall_s - 1.0;
    let allowed = allowed_overhead(host);
    println!(
        "observability: flight-on wall {:.3} ms vs {:.3} ms off -> {:+.1}% overhead \
         (allowed <= {:.0}% on {host}-core host; {} profile updates, {} snapshots)",
        flight.wall_s * 1e3,
        par.wall_s * 1e3,
        overhead * 100.0,
        allowed * 100.0,
        profile_updates,
        flight_snapshots
    );

    // --- Optional pass ablation. ----------------------------------------------
    let ablation = match &args.passes {
        Some(spec) => {
            let pipeline = match Pipeline::parse(spec) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("perf: --passes {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let rows = ablate(&pipeline, &seq.device_records);
            println!("ablation [{}]:", pipeline.pass_names().join(","));
            for row in &rows {
                println!("{}", row.trim_start());
            }
            Some((spec.clone(), rows))
        }
        None => None,
    };

    // --- Gate metrics: ratios and deterministic counts only. ------------------
    // The tier speedup itself is a ratio of two short wall-clock runs and far
    // too noisy to diff against a baseline (it swings 2-3x run to run); it is
    // enforced by the hard `>= 1.0` check below instead. Only the
    // deterministic warp-count rides in the baseline.
    let gate: Vec<(String, f64)> = vec![
        ("perf.speedup_wall".into(), speedup),
        ("perf.jobs".into(), seq.jobs as f64),
        ("perf.instructions".into(), seq.instructions as f64),
        ("perf.launches".into(), seq.launches as f64),
        ("perf.parallel_launches".into(), par.parallel_launches as f64),
        ("perf.warp_warps".into(), tier_warp.warps as f64),
    ];

    // --- BENCH_perf.json. ------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"sigmavp-perf-v2\",\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {host},\n  \"workers_compared\": [1, {}],\n  \
         \"scale\": {},\n  \"repeats\": {},\n  \"tolerance\": {:.6},\n  \"tier\": \"{}\",\n",
        args.workers,
        args.scale,
        args.repeats,
        args.tolerance,
        tier_name(args.tier)
    ));
    let flat = format_flat_json(&gate);
    json.push_str(&format!("  \"gate\": {},\n", flat.trim_end().replace('\n', "\n  ")));
    json.push_str("  \"runs\": {\n");
    json.push_str(&measure_json("tier_scalar_workers_1", &tier_scalar));
    json.push_str(",\n");
    json.push_str(&measure_json("tier_warp_workers_1", &tier_warp));
    json.push_str(",\n");
    json.push_str(&measure_json("workers_1", &seq));
    json.push_str(",\n");
    json.push_str(&measure_json(&format!("workers_{}", args.workers), &par));
    json.push_str("\n  },\n");
    json.push_str(&format!(
        "  \"tier_speedup\": {{\"wall\": {tier_speedup:.6}, \"required\": 1.0, \
         \"scalar_instructions_per_s\": {:.9e}, \"warp_instructions_per_s\": {:.9e}}},\n",
        tier_scalar.instructions_per_s(),
        tier_warp.instructions_per_s()
    ));
    json.push_str(&format!(
        "  \"warp_counters\": {{\"decode_hits\": {}, \"decode_misses\": {}, \"warps\": {}, \
         \"uniform_loads\": {}, \"divergent_branches\": {}}},\n",
        tier_warp.decode_hits,
        tier_warp.decode_misses,
        tier_warp.warps,
        tier_warp.uniform_loads,
        tier_warp.divergent_branches
    ));
    json.push_str(&format!(
        "  \"observability\": {{\"wall_on_s\": {:.9e}, \"wall_off_s\": {:.9e}, \
         \"overhead_frac\": {:.6}, \"allowed_frac\": {:.6}, \"profile_updates\": {}, \
         \"snapshots\": {}}},\n",
        flight.wall_s, par.wall_s, overhead, allowed, profile_updates, flight_snapshots
    ));
    json.push_str(&format!(
        "  \"speedup\": {{\"wall\": {:.6}, \"required\": {:.6}}}",
        speedup, required
    ));
    match &ablation {
        Some((spec, rows)) => {
            json.push_str(&format!(
                ",\n  \"ablation\": {{\"passes\": \"{}\", \"devices\": [\n{}\n  ]}}\n}}\n",
                escape_json(spec),
                rows.join(",\n")
            ));
        }
        None => json.push_str("\n}\n"),
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("perf: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    // --- Baseline write / check. ----------------------------------------------
    let mut failed = match run_gate(
        &GateConfig {
            tool: "perf",
            baseline: &args.baseline,
            tolerance: args.tolerance,
            write_baseline: args.write_baseline,
            check: args.check,
        },
        &gate,
    ) {
        Ok(regressed) => regressed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The overhead bar gets a 10 ms absolute floor so a sub-50 ms workload
    // cannot flake the gate on scheduler jitter alone.
    if flight.wall_s > par.wall_s * (1.0 + allowed) + 0.010 {
        eprintln!(
            "perf: flight-recorder overhead {:.1}% exceeds the allowed {:.0}% for a \
             {host}-core host",
            overhead * 100.0,
            allowed * 100.0
        );
        failed = true;
    }
    if speedup < required {
        eprintln!(
            "perf: speedup {speedup:.2}x below the required {required:.1}x for a \
             {host}-core host"
        );
        failed = true;
    }
    // The warp tier is a pure single-thread optimization: it must never lose
    // to the scalar reference, on any host.
    if tier_speedup < 1.0 {
        eprintln!("perf: warp tier is slower than scalar ({tier_speedup:.2}x)");
        failed = true;
    }
    sigmavp_telemetry::uninstall();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
