//! Regenerate Fig. 12 (timing estimation accuracy).

fn main() {
    let records = sigmavp_bench::fig12::run();
    sigmavp_bench::fig12::print(&records);
}
