//! Regenerate Fig. 10a (coalescing effectiveness).

use sigmavp_gpu::GpuArch;

fn main() {
    let arch = GpuArch::quadro_4000();
    let pts = sigmavp_bench::fig10::fig10a(&arch, &[1, 2, 4, 8, 16, 32, 64]);
    sigmavp_bench::fig10::print_fig10a(&pts);
}
