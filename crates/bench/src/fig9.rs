//! Fig. 9: Kernel Interleaving experiments.
//!
//! Two synthetic GPU programs (paper Section 5), each looping over a
//! host-to-device copy, a kernel, and a device-to-host copy. Without interleaving,
//! synchronous invocations serialize: `T_without = N·(2·Tm + Tk)`. With the
//! re-scheduler's interleaving, the engines overlap. Fig. 9a sweeps the kernel
//! length at fixed memcpy time (13.44 ms, the paper's orange dotted line); Fig. 9b
//! sweeps the number of interleaved programs at `Tk = Tm`, converging to the
//! `3N/(N+2)` bound of Eq. 8.

use sigmavp_gpu::engine::{simulate, Engine, GpuOp, StreamId};
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::queue::{Job, JobId, JobKind};
use sigmavp_sched::interleave::reorder_async;

/// The paper's memcpy time in milliseconds.
pub const TM_MS: f64 = 13.44;

/// One data point of Fig. 9a/9b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterleavePoint {
    /// Kernel execution time in milliseconds.
    pub kernel_ms: f64,
    /// Number of interleaved programs.
    pub n_programs: u32,
    /// Speedup measured from the scheduled timeline.
    pub measured: f64,
    /// Speedup expected from Eqs. 7–8.
    pub expected: f64,
}

/// Build the N-program copy/kernel/copy job list (VP-major, i.e. the
/// un-interleaved submission order).
fn programs(n: u32, tm_s: f64, tk_s: f64) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(3 * n as usize);
    let mut id = 0u64;
    for vp in 0..n {
        for (seq, (kind, dur)) in [
            (JobKind::CopyIn { bytes: 0 }, tm_s),
            (JobKind::Kernel { name: "k".into(), grid_dim: 1, block_dim: 256 }, tk_s),
            (JobKind::CopyOut { bytes: 0 }, tm_s),
        ]
        .into_iter()
        .enumerate()
        {
            jobs.push(Job {
                id: JobId(id),
                vp: VpId(vp),
                seq: seq as u64,
                kind,
                sync: true,
                enqueued_at_s: 0.0,
                expected_duration_s: dur,
            });
            id += 1;
        }
    }
    jobs
}

fn jobs_to_ops(jobs: &[Job]) -> Vec<GpuOp> {
    jobs.iter()
        .map(|j| GpuOp {
            id: j.id.0,
            stream: StreamId(j.vp.0),
            engine: match j.kind {
                JobKind::CopyIn { .. } => Engine::CopyH2D,
                JobKind::CopyOut { .. } => Engine::CopyD2H,
                JobKind::Kernel { .. } => Engine::Compute,
            },
            duration_s: j.expected_duration_s,
            after: vec![],
        })
        .collect()
}

/// Measure one configuration: interleaved makespan vs synchronous serialization.
pub fn measure(arch: &GpuArch, n: u32, tm_s: f64, tk_s: f64) -> InterleavePoint {
    let jobs = programs(n, tm_s, tk_s);
    // Without interleaving, every synchronous call blocks its VP and the VPs queue
    // behind each other on the single device: the total is the plain sum.
    let t_without: f64 = jobs.iter().map(|j| j.expected_duration_s).sum();
    let reordered = reorder_async(jobs);
    let timeline = simulate(arch, &jobs_to_ops(&reordered));
    let t_with = timeline.makespan_s;

    let expected_with = 2.0 * tm_s + n as f64 * tm_s.max(tk_s);
    InterleavePoint {
        kernel_ms: tk_s * 1e3,
        n_programs: n,
        measured: t_without / t_with,
        expected: t_without / expected_with,
    }
}

/// Fig. 9a: two programs, kernel time swept from ~0 to 100 ms at Tm = 13.44 ms.
pub fn fig9a(arch: &GpuArch) -> Vec<InterleavePoint> {
    let tm = TM_MS * 1e-3;
    [0.5, 2.0, 5.0, 8.0, TM_MS, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0]
        .iter()
        .map(|&tk_ms| measure(arch, 2, tm, tk_ms * 1e-3))
        .collect()
}

/// Fig. 9b: N ∈ {2, 4, 8, 16, 32} programs at Tk = Tm.
pub fn fig9b(arch: &GpuArch) -> Vec<InterleavePoint> {
    let t = TM_MS * 1e-3;
    [2u32, 4, 8, 16, 32].iter().map(|&n| measure(arch, n, t, t)).collect()
}

/// Print Fig. 9a as a table.
pub fn print_fig9a(points: &[InterleavePoint]) {
    println!("Fig. 9a: interleaving speedup vs kernel length (2 programs, Tm = {TM_MS} ms)");
    println!("{:>12} {:>10} {:>10}", "kernel (ms)", "measured", "expected");
    for p in points {
        println!("{:>12.2} {:>10.3} {:>10.3}", p.kernel_ms, p.measured, p.expected);
    }
    println!();
}

/// Print Fig. 9b as a table.
pub fn print_fig9b(points: &[InterleavePoint]) {
    println!("Fig. 9b: interleaving speedup vs number of programs (Tk = Tm)");
    println!("{:>4} {:>10} {:>10} {:>12}", "N", "measured", "expected", "3N/(N+2)");
    for p in points {
        let bound = 3.0 * p.n_programs as f64 / (p.n_programs as f64 + 2.0);
        println!("{:>4} {:>10.3} {:>10.3} {:>12.3}", p.n_programs, p.measured, p.expected, bound);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_peaks_near_tm() {
        let arch = GpuArch::quadro_4000();
        let pts = fig9a(&arch);
        let peak =
            pts.iter().cloned().fold(pts[0], |a, b| if b.measured > a.measured { b } else { a });
        // The paper: highest speedup when kernel time ≈ memcpy time.
        assert!(
            (peak.kernel_ms - TM_MS).abs() < 8.0,
            "peak at {} ms, expected near {TM_MS}",
            peak.kernel_ms
        );
        // The long-kernel end approaches 1× (compute-bound); the short-kernel end
        // stays modest (the duplex copy channels still overlap the drain).
        assert!(pts.last().unwrap().measured < 1.3);
        assert!(pts.first().unwrap().measured < peak.measured);
        // Peak around 1.5 for two programs.
        assert!(peak.measured > 1.4 && peak.measured < 1.8, "peak {}", peak.measured);
    }

    #[test]
    fn fig9a_measured_tracks_expected() {
        let arch = GpuArch::quadro_4000();
        for p in fig9a(&arch) {
            // "quite close to the expected values" — never below Eq. 7's bound,
            // and at most ~35% above it (the duplex copy channels let the real
            // schedule overlap the drain that Eq. 7 counts serially).
            assert!(
                p.measured >= p.expected - 1e-9,
                "measured {} < expected {}",
                p.measured,
                p.expected
            );
            assert!(
                p.measured <= p.expected * 1.35 + 0.05,
                "measured {} >> expected {}",
                p.measured,
                p.expected
            );
        }
    }

    #[test]
    fn fig9b_approaches_three() {
        let arch = GpuArch::quadro_4000();
        let pts = fig9b(&arch);
        for p in &pts {
            let bound = 3.0 * p.n_programs as f64 / (p.n_programs as f64 + 2.0);
            assert!(
                (p.measured - bound).abs() < 0.05,
                "N={}: {} vs {}",
                p.n_programs,
                p.measured,
                bound
            );
        }
        assert!(pts.last().unwrap().measured > 2.7, "large-N speedup should near 3x");
        // Monotone in N.
        for w in pts.windows(2) {
            assert!(w[1].measured > w[0].measured);
        }
    }
}
