//! Lowering planned job streams to the engine model — the backend half of the
//! scheduling pipeline.
//!
//! `sigmavp-sched` owns the *planning* passes ([`Pipeline`]); this module owns
//! the *pricing*: converting a [`JobRecord`] log into [`Job`]s, lowering a
//! planned [`JobStream`] (jobs plus [`MergeGroup`]s) to engine operations with
//! guest-stream and coalescing-barrier dependencies, and replaying them through
//! the two-engine device model. [`EngineEvaluator`] exposes that replay as the
//! pipeline's [`StreamEvaluator`] makespan oracle, which is how the
//! [`AdaptiveSelect`](sigmavp_sched::AdaptiveSelect) pass decides — with real
//! numbers — whether a merged plan beats the plain one.
//!
//! Every runtime (scenario, threaded, dispatcher) prices its device work through
//! [`plan_device`]; none of them carries inline interleave/coalesce logic.

use std::collections::HashMap;

use sigmavp_gpu::engine::{simulate, Engine as GpuEngine, GpuOp, StreamId, Timeline};
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::queue::{Job, JobId, JobKind};
use sigmavp_sched::{JobStream, MergeGroup, PassCtx, Pipeline, StreamEvaluator};
use sigmavp_telemetry::{job_uid, Lane, TimeDomain, TraceEvent};

use crate::host::{JobRecord, RecordKind};

/// Guest streams supported per VP in the timeline (engine stream id =
/// `vp × MAX_GUEST_STREAMS + guest_stream`).
pub const MAX_GUEST_STREAMS: u32 = 16;

/// Convert a device job log into pipeline jobs. Job ids index the record order
/// (`jobs[i].id == JobId(i)`), which the lowering relies on to recover
/// guest-stream and wave information after any reordering.
pub fn records_to_jobs(records: &[JobRecord]) -> Vec<Job> {
    records
        .iter()
        .enumerate()
        .map(|(i, r)| Job {
            id: JobId(i as u64),
            vp: r.vp,
            seq: r.seq,
            kind: match &r.kind {
                RecordKind::H2d { bytes, .. } => JobKind::CopyIn { bytes: *bytes },
                RecordKind::D2h { bytes, .. } => JobKind::CopyOut { bytes: *bytes },
                RecordKind::Kernel { name, grid_dim, block_dim, .. } => JobKind::Kernel {
                    name: name.clone(),
                    grid_dim: *grid_dim,
                    block_dim: *block_dim,
                },
            },
            sync: true,
            enqueued_at_s: r.sent_at_s,
            expected_duration_s: r.duration_s,
        })
        .collect()
}

/// The stable job uid of the record an engine op was lowered from.
///
/// Both lowerings emit ops whose `id` is the job id, and job ids index the
/// original record order (`jobs[i].id == JobId(i)`), so `records[op_id]` is
/// the op's source record — for merged operations, the group's *anchor*
/// record. Returns `None` for op ids outside the log (defensive; the
/// lowerings never produce them).
pub fn op_job_uid(records: &[JobRecord], op_id: u64) -> Option<u64> {
    records.get(op_id as usize).map(|r| job_uid(r.vp.0, r.seq))
}

fn job_engine(kind: &JobKind) -> GpuEngine {
    match kind {
        JobKind::CopyIn { .. } => GpuEngine::CopyH2D,
        JobKind::CopyOut { .. } => GpuEngine::CopyD2H,
        JobKind::Kernel { .. } => GpuEngine::Compute,
    }
}

/// Lower jobs to engine ops, honoring guest streams with CUDA *legacy
/// default-stream* semantics: operations on the default stream (0) synchronize
/// with every outstanding non-default-stream op of the same VP issued before
/// them, and non-default-stream ops wait for the last default-stream op. Ops on
/// different non-default streams of the same VP may overlap (the asynchronous
/// case of Fig. 4a).
fn build_ops_plain(jobs: &[Job], records: &[JobRecord]) -> Vec<GpuOp> {
    let mut last_default: HashMap<VpId, u64> = HashMap::new();
    let mut outstanding: HashMap<VpId, Vec<u64>> = HashMap::new();
    jobs.iter()
        .map(|j| {
            let guest_stream = match &records[j.id.0 as usize].kind {
                RecordKind::H2d { stream, .. }
                | RecordKind::D2h { stream, .. }
                | RecordKind::Kernel { stream, .. } => *stream % MAX_GUEST_STREAMS,
            };
            let op_id = j.id.0;
            let after = if guest_stream == 0 {
                // Default-to-default ordering comes from the engine stream itself;
                // only the cross-stream joins need explicit dependencies.
                let deps = outstanding.remove(&j.vp).unwrap_or_default();
                last_default.insert(j.vp, op_id);
                deps
            } else {
                outstanding.entry(j.vp).or_default().push(op_id);
                last_default.get(&j.vp).map(|&d| vec![d]).unwrap_or_default()
            };
            GpuOp {
                id: op_id,
                stream: StreamId(j.vp.0 * MAX_GUEST_STREAMS + guest_stream),
                engine: job_engine(&j.kind),
                duration_s: j.expected_duration_s,
                after,
            }
        })
        .collect()
}

#[derive(Debug, Clone)]
enum MergeRole {
    Anchor { members: Vec<usize> },
    Dropped { anchor: usize },
}

/// Lower jobs with the pipeline's merge groups applied: each group becomes a
/// single operation at its anchor's position (so every member's intra-VP
/// predecessors still precede it), and dropped members' later jobs gain an
/// explicit dependency on the merged op.
fn build_ops_merged(
    jobs: &[Job],
    records: &[JobRecord],
    groups: &[MergeGroup],
    arch: &GpuArch,
) -> Vec<GpuOp> {
    let index_of: HashMap<JobId, usize> = jobs.iter().enumerate().map(|(i, j)| (j.id, i)).collect();
    let mut role: HashMap<usize, MergeRole> = HashMap::new();
    for group in groups {
        let anchor = index_of[&group.anchor];
        let members: Vec<usize> = group.dropped.iter().map(|id| index_of[id]).collect();
        for &m in &members {
            role.insert(m, MergeRole::Dropped { anchor });
        }
        role.insert(anchor, MergeRole::Anchor { members });
    }

    // Lower to ops. Track, per VP, the last emitted op id (for dependency wiring)
    // and any pending barrier (a dropped member's next op must wait for the merged
    // op). Barriers on not-yet-lowered anchors use a placeholder id resolved below.
    let mut ops = Vec::with_capacity(jobs.len());
    let mut last_op_of_vp: HashMap<VpId, u64> = HashMap::new();
    let mut pending_barrier: HashMap<VpId, u64> = HashMap::new();
    let mut anchor_op_id: HashMap<usize, u64> = HashMap::new();

    for (idx, job) in jobs.iter().enumerate() {
        match role.get(&idx) {
            Some(MergeRole::Dropped { anchor }) => {
                pending_barrier.insert(job.vp, u64::MAX - *anchor as u64);
            }
            Some(MergeRole::Anchor { members }) => {
                let duration = merged_duration(jobs, records, idx, members, arch);
                let mut after: Vec<u64> = members
                    .iter()
                    .filter_map(|&m| last_op_of_vp.get(&jobs[m].vp).copied())
                    .collect();
                if let Some(b) = pending_barrier.remove(&job.vp) {
                    after.push(b);
                }
                // Op id = job id = original record index, same as the plain
                // lowering, so op ids always resolve to source records.
                let op_id = job.id.0;
                ops.push(GpuOp {
                    id: op_id,
                    stream: StreamId(job.vp.0),
                    engine: job_engine(&job.kind),
                    duration_s: duration,
                    after,
                });
                anchor_op_id.insert(idx, op_id);
                last_op_of_vp.insert(job.vp, op_id);
                // All member VPs now logically depend on this op.
                for &m in members {
                    last_op_of_vp.insert(jobs[m].vp, op_id);
                }
            }
            None => {
                let mut after = vec![];
                if let Some(b) = pending_barrier.remove(&job.vp) {
                    after.push(b);
                }
                let op_id = job.id.0;
                ops.push(GpuOp {
                    id: op_id,
                    stream: StreamId(job.vp.0),
                    engine: job_engine(&job.kind),
                    duration_s: job.expected_duration_s,
                    after,
                });
                last_op_of_vp.insert(job.vp, op_id);
            }
        }
    }

    // Resolve placeholder barriers (u64::MAX - anchor_index) to real op ids.
    for op in &mut ops {
        for dep in &mut op.after {
            if *dep > u64::MAX / 2 {
                let anchor_idx = (u64::MAX - *dep) as usize;
                *dep = anchor_op_id.get(&anchor_idx).copied().unwrap_or(0);
            }
        }
    }
    stabilize_dep_order(ops)
}

/// Duration of a merged operation.
///
/// * Copies merge into one contiguous transfer: one fixed latency plus the summed
///   bytes over the copy-engine bandwidth (Fig. 5's coalesced memory chunk).
/// * Kernels merge into one launch: one launch overhead plus the members' combined
///   compute time scaled by the wave-alignment gain
///   (`merged waves / Σ member waves` — Eq. 9's alignment effect).
fn merged_duration(
    jobs: &[Job],
    records: &[JobRecord],
    anchor: usize,
    members: &[usize],
    arch: &GpuArch,
) -> f64 {
    match &jobs[anchor].kind {
        JobKind::CopyIn { .. } | JobKind::CopyOut { .. } => {
            let total_bytes: u64 = members
                .iter()
                .chain(std::iter::once(&anchor))
                .map(|&i| match jobs[i].kind {
                    JobKind::CopyIn { bytes } | JobKind::CopyOut { bytes } => bytes,
                    JobKind::Kernel { .. } => 0,
                })
                .sum();
            arch.copy_time_s(total_bytes)
        }
        JobKind::Kernel { block_dim, .. } => {
            let block_dim = *block_dim;
            let mut total_grid = 0u64;
            let mut sum_compute = 0.0f64;
            let mut sum_waves = 0u64;
            let mut overhead = arch.launch_overhead_us * 1e-6;
            for &idx in members.iter().chain(std::iter::once(&anchor)) {
                let JobKind::Kernel { grid_dim, .. } = &jobs[idx].kind else { continue };
                total_grid += *grid_dim as u64;
                // Job ids index the original record order even after reordering.
                let rec = &records[jobs[idx].id.0 as usize];
                if let RecordKind::Kernel { launch_overhead_s, waves, .. } = &rec.kind {
                    overhead = *launch_overhead_s;
                    sum_waves += *waves;
                    sum_compute += (rec.duration_s - launch_overhead_s).max(0.0);
                }
            }
            let bpw = arch.blocks_per_wave(block_dim) as u64;
            let merged_waves = total_grid.div_ceil(bpw).max(1);
            let wave_ratio =
                if sum_waves > 0 { merged_waves as f64 / sum_waves as f64 } else { 1.0 };
            overhead + sum_compute * wave_ratio.min(1.0)
        }
    }
}

/// Reorder ops (stably) so every op is issued after all of its `after`
/// dependencies — the in-order engine model requires dependencies to precede their
/// dependents in issue order. Cycles cannot occur (dependencies always point at
/// merged ops whose members precede the dependents), but the code degrades
/// gracefully by emitting any stuck remainder in its given order.
fn stabilize_dep_order(ops: Vec<GpuOp>) -> Vec<GpuOp> {
    let mut emitted: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut pending: std::collections::VecDeque<GpuOp> = ops.into();
    let mut out = Vec::with_capacity(pending.len());
    let mut stall = 0usize;
    while let Some(op) = pending.pop_front() {
        if op.after.iter().all(|d| emitted.contains(d)) {
            emitted.insert(op.id);
            out.push(op);
            stall = 0;
        } else {
            pending.push_back(op);
            stall += 1;
            if stall > pending.len() {
                while let Some(op) = pending.pop_front() {
                    out.push(op);
                }
                break;
            }
        }
    }
    out
}

/// Lower a planned stream to engine ops: the plain guest-stream lowering when no
/// merge groups apply, the coalesced lowering otherwise.
pub fn lower_jobs(
    jobs: &[Job],
    records: &[JobRecord],
    groups: &[MergeGroup],
    arch: &GpuArch,
) -> Vec<GpuOp> {
    if groups.is_empty() {
        stabilize_dep_order(build_ops_plain(jobs, records))
    } else {
        build_ops_merged(jobs, records, groups, arch)
    }
}

/// The engine-model makespan oracle injected into the scheduling pipeline: lowers
/// a candidate plan and replays it through [`simulate`].
#[derive(Debug, Clone, Copy)]
pub struct EngineEvaluator<'a> {
    arch: &'a GpuArch,
    records: &'a [JobRecord],
}

impl<'a> EngineEvaluator<'a> {
    /// An evaluator replaying on `arch` with stream/wave detail from `records`.
    pub fn new(arch: &'a GpuArch, records: &'a [JobRecord]) -> Self {
        EngineEvaluator { arch, records }
    }
}

impl StreamEvaluator for EngineEvaluator<'_> {
    fn makespan_s(&self, jobs: &[Job], groups: &[MergeGroup]) -> f64 {
        simulate(self.arch, &lower_jobs(jobs, self.records, groups, self.arch)).makespan_s
    }
}

/// The priced outcome of planning one device's job log.
#[derive(Debug, Clone)]
pub struct DevicePlan {
    /// The planned stream (jobs in final issue order plus surviving merge
    /// groups).
    pub stream: JobStream,
    /// The executed schedule on the device model.
    pub timeline: Timeline,
}

impl DevicePlan {
    /// Merge groups that survived adaptive selection.
    pub fn coalesced_groups(&self) -> usize {
        self.stream.groups.len()
    }

    /// Per-job simulated queue wait: for every record in the log, the delay
    /// between the guest sending the request (`sent_at_s`) and its operation
    /// starting on the planned device timeline, clamped at zero (the plan's
    /// origin is the window start, so a request stamped after its planned
    /// start simply did not wait). Coalesced-away members are charged their
    /// anchor's start. `records` must be the log the plan was built from.
    ///
    /// This is a *model* quantity — deterministic for a deterministic job log
    /// — which is exactly what starvation gates want: wall-clock waits vary
    /// with machine load, planned waits only with the schedule.
    pub fn queue_waits(&self, records: &[JobRecord]) -> Vec<(VpId, f64)> {
        let mut anchor_of: HashMap<u64, u64> = HashMap::new();
        for group in &self.stream.groups {
            for member in &group.dropped {
                anchor_of.insert(member.0, group.anchor.0);
            }
        }
        records
            .iter()
            .enumerate()
            .filter_map(|(i, rec)| {
                let op = anchor_of.get(&(i as u64)).copied().unwrap_or(i as u64);
                let span = self.timeline.span(op)?;
                Some((rec.vp, (span.start_s - rec.sent_at_s).max(0.0)))
            })
            .collect()
    }

    /// Total member launches those groups absorbed.
    pub fn coalesced_members(&self) -> usize {
        self.stream.merged_members()
    }

    /// The plan's device activity as simulated-time trace events, every span
    /// stamped with its stable job uid:
    ///
    /// * one engine-lane span per executed op, named after its source record
    ///   and carrying that record's uid (the *anchor's* uid for merged ops);
    /// * one VP-lane mirror per op on the originating VP's lane (the record's
    ///   true VP, not the widened engine stream id);
    /// * one VP-lane span per coalesced-away member, covering the merged op's
    ///   interval on the member's own lane with the member's uid — so a
    ///   lifecycle join finds device time for *every* job in the log, dropped
    ///   launches included.
    ///
    /// `records` must be the same log the plan was built from.
    pub fn trace_events(&self, records: &[JobRecord]) -> Vec<TraceEvent> {
        let name_of = |rec: &JobRecord| match &rec.kind {
            RecordKind::H2d { bytes, .. } => format!("h2d {bytes}B"),
            RecordKind::D2h { bytes, .. } => format!("d2h {bytes}B"),
            RecordKind::Kernel { name, .. } => name.clone(),
        };
        let mut events = Vec::with_capacity(2 * self.timeline.spans.len());
        for span in &self.timeline.spans {
            let Some(rec) = records.get(span.id as usize) else { continue };
            let uid = job_uid(rec.vp.0, rec.seq);
            let lane = match span.engine {
                GpuEngine::CopyH2D => Lane::CopyH2D,
                GpuEngine::CopyD2H => Lane::CopyD2H,
                GpuEngine::Compute => Lane::Compute,
            };
            let dur = span.end_s - span.start_s;
            events.push(
                TraceEvent::span(TimeDomain::Sim, lane, name_of(rec), span.start_s, dur)
                    .with_job(uid),
            );
            events.push(
                TraceEvent::span(
                    TimeDomain::Sim,
                    Lane::Vp(rec.vp.0),
                    name_of(rec),
                    span.start_s,
                    dur,
                )
                .with_job(uid),
            );
        }
        // Members a merge group absorbed never became ops of their own; give
        // each one a span over its anchor's interval so its device time is
        // still attributable.
        for group in &self.stream.groups {
            let Some(anchor_span) = self.timeline.span(group.anchor.0) else { continue };
            let (start_s, dur) = (anchor_span.start_s, anchor_span.end_s - anchor_span.start_s);
            for member in &group.dropped {
                let Some(rec) = records.get(member.0 as usize) else { continue };
                events.push(
                    TraceEvent::span(
                        TimeDomain::Sim,
                        Lane::Vp(rec.vp.0),
                        format!("{} (merged into op{})", name_of(rec), group.anchor.0),
                        start_s,
                        dur,
                    )
                    .with_job(job_uid(rec.vp.0, rec.seq)),
                );
            }
        }
        events
    }
}

/// Plan one device's job log through `pipeline` and price the result on `arch`:
/// convert records to jobs, run the passes (with the engine-model evaluator
/// injected for adaptive selection), lower the surviving plan, and replay it.
pub fn plan_device(
    pipeline: &Pipeline,
    records: &[JobRecord],
    coalescible: &dyn Fn(VpId) -> bool,
    arch: &GpuArch,
) -> DevicePlan {
    let jobs = records_to_jobs(records);
    let evaluator = EngineEvaluator::new(arch, records);
    let ctx = PassCtx::new(coalescible).with_evaluator(&evaluator);
    let stream = pipeline.plan(jobs, &ctx);
    let timeline = simulate(arch, &lower_jobs(&stream.jobs, records, &stream.groups, arch));
    DevicePlan { stream, timeline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_sched::Policy;

    fn record(vp: u32, seq: u64, kind: RecordKind, duration_s: f64) -> JobRecord {
        JobRecord { vp: VpId(vp), seq, kind, duration_s, sent_at_s: 0.0 }
    }

    fn fleet_records(n: u32, arch: &GpuArch) -> Vec<JobRecord> {
        // N serial copy-in → kernel → copy-out programs (the Fig. 9 pattern).
        let mut records = Vec::new();
        for vp in 0..n {
            records.push(record(vp, 0, RecordKind::H2d { bytes: 4096, stream: 0 }, 1e-4));
            records.push(record(
                vp,
                1,
                RecordKind::Kernel {
                    name: "k".into(),
                    grid_dim: 8,
                    block_dim: 128,
                    launch_overhead_s: arch.launch_overhead_us * 1e-6,
                    waves: 1,
                    stream: 0,
                },
                2e-4,
            ));
            records.push(record(vp, 2, RecordKind::D2h { bytes: 4096, stream: 0 }, 1e-4));
        }
        records
    }

    #[test]
    fn jobs_mirror_records() {
        let arch = GpuArch::quadro_4000();
        let records = fleet_records(2, &arch);
        let jobs = records_to_jobs(&records);
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].id, JobId(0));
        assert_eq!(jobs[4].vp, VpId(1));
        assert!(matches!(jobs[1].kind, JobKind::Kernel { .. }));
        assert!((jobs[1].expected_duration_s - 2e-4).abs() < 1e-12);
    }

    #[test]
    fn interleaved_plan_beats_serial_plan() {
        // An asymmetric fleet where arrival order blocks the pipeline: VP 0
        // leads with a long upload before a short kernel, VP 1 with a tiny
        // upload before a long kernel. In arrival order VP 1's kernel waits for
        // VP 0's upload to clear the copy engine; earliest-start interleaving
        // hoists VP 1's upload and kernel ahead, overlapping them with VP 0's
        // transfer.
        let arch = GpuArch::quadro_4000();
        let records = vec![
            record(0, 0, RecordKind::H2d { bytes: 1 << 20, stream: 0 }, 1e-3),
            record(
                0,
                1,
                RecordKind::Kernel {
                    name: "k".into(),
                    grid_dim: 8,
                    block_dim: 128,
                    launch_overhead_s: 0.0,
                    waves: 1,
                    stream: 0,
                },
                1e-4,
            ),
            record(1, 0, RecordKind::H2d { bytes: 64, stream: 0 }, 1e-5),
            record(
                1,
                1,
                RecordKind::Kernel {
                    name: "k".into(),
                    grid_dim: 8,
                    block_dim: 128,
                    launch_overhead_s: 0.0,
                    waves: 1,
                    stream: 0,
                },
                5e-4,
            ),
        ];
        let serial =
            plan_device(&Pipeline::from_policy(&Policy::Multiplexed), &records, &|_| false, &arch);
        let interleaved =
            plan_device(&Pipeline::from_policy(&Policy::Fifo), &records, &|_| false, &arch);
        assert!(
            interleaved.timeline.makespan_s < serial.timeline.makespan_s,
            "{} !< {}",
            interleaved.timeline.makespan_s,
            serial.timeline.makespan_s
        );
        assert_eq!(serial.stream.len(), records.len());
        assert_eq!(interleaved.stream.len(), records.len());
    }

    #[test]
    fn adaptive_coalescing_prices_with_the_engine_model() {
        let arch = GpuArch::quadro_4000();
        let records = fleet_records(6, &arch);
        let merged = plan_device(
            &Pipeline::from_policy(&Policy::MultiplexedOptimized),
            &records,
            &|_| true,
            &arch,
        );
        let plain = plan_device(&Pipeline::from_policy(&Policy::Fifo), &records, &|_| true, &arch);
        // Identical single-wave kernels across VPs merge, and merging wins here.
        assert!(merged.coalesced_groups() >= 1);
        assert!(merged.coalesced_members() >= 2);
        assert!(merged.timeline.makespan_s <= plain.timeline.makespan_s + 1e-12);
    }

    #[test]
    fn evaluator_matches_final_pricing() {
        let arch = GpuArch::quadro_4000();
        let records = fleet_records(4, &arch);
        let plan = plan_device(
            &Pipeline::from_policy(&Policy::MultiplexedOptimized),
            &records,
            &|_| true,
            &arch,
        );
        let evaluator = EngineEvaluator::new(&arch, &records);
        let replay = evaluator.makespan_s(&plan.stream.jobs, &plan.stream.groups);
        assert!((replay - plan.timeline.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn trace_events_stamp_every_job_uid() {
        use sigmavp_telemetry::job_uid;
        let arch = GpuArch::quadro_4000();
        let records = fleet_records(6, &arch);
        let plan = plan_device(
            &Pipeline::from_policy(&Policy::MultiplexedOptimized),
            &records,
            &|_| true,
            &arch,
        );
        assert!(plan.coalesced_members() >= 2, "scenario must exercise merging");
        let events = plan.trace_events(&records);
        // Every event is job-stamped, and every record's uid appears at least
        // once — coalesced-away members included.
        assert!(events.iter().all(|e| e.job.is_some()));
        for rec in &records {
            let uid = job_uid(rec.vp.0, rec.seq);
            assert!(
                events.iter().any(|e| e.job == Some(uid)),
                "no device event for vp{} seq{}",
                rec.vp.0,
                rec.seq
            );
        }
        // VP-lane mirrors use the record's true VP id.
        assert!(events.iter().any(|e| e.lane == Lane::Vp(5)));
        assert!(!events.iter().any(|e| matches!(e.lane, Lane::Vp(n) if n >= 6)));
    }

    #[test]
    fn op_job_uid_maps_ops_to_records() {
        use sigmavp_telemetry::job_uid;
        let arch = GpuArch::quadro_4000();
        let records = fleet_records(2, &arch);
        assert_eq!(op_job_uid(&records, 0), Some(job_uid(0, 0)));
        assert_eq!(op_job_uid(&records, 4), Some(job_uid(1, 1)));
        assert_eq!(op_job_uid(&records, 99), None);
    }

    #[test]
    fn empty_log_plans_to_empty_timeline() {
        let arch = GpuArch::quadro_4000();
        let plan = plan_device(
            &Pipeline::from_policy(&Policy::MultiplexedOptimized),
            &[],
            &|_| true,
            &arch,
        );
        assert_eq!(plan.timeline.makespan_s, 0.0);
        assert_eq!(plan.coalesced_groups(), 0);
    }
}
