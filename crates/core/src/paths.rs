//! The six execution paths of the paper's Table 1.
//!
//! Table 1 runs one GPU workload (matrix multiplication) through every way an
//! embedded designer might execute it:
//!
//! | row | path |
//! |---|---|
//! | 1 | CUDA natively on the (host) GPU |
//! | 2 | CUDA under a software GPU emulator on the host CPU |
//! | 3 | CUDA under a software GPU emulator inside the binary-translating VP |
//! | 4 | CUDA through ΣVP's host-GPU multiplexing (this work) |
//! | 5 | an equivalent C program natively on the host CPU |
//! | 6 | the same C program inside the VP |
//!
//! [`run_table1`] reproduces all six for any [`Application`] plus a scalar-work
//! estimate for the C rows. Absolute magnitudes depend on the calibrated cost
//! models ([`sigmavp_vp::calib`]); the *ordering* and rough ratios are the
//! reproduction target.

use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_vp::cpu::{BinaryTranslation, CpuModel};
use sigmavp_vp::emulation::EmulatedGpu;
use sigmavp_vp::platform::VirtualPlatform;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::{AppEnv, Application};

use crate::error::SigmaVpError;
use crate::session::ExecutionSession;

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Human-readable path label, matching the paper's rows.
    pub label: String,
    /// Language column ("CUDA" or "C").
    pub language: &'static str,
    /// "Executed by" column.
    pub executed_by: &'static str,
    /// Simulated execution time in seconds.
    pub time_s: f64,
}

/// The whole table: six rows plus the ratio column computed against row 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<PathResult>,
}

impl Table1 {
    /// The native-GPU baseline time.
    pub fn baseline_s(&self) -> f64 {
        self.rows[0].time_s
    }

    /// Ratio of each row to the native-GPU baseline (the paper's last column).
    pub fn ratios(&self) -> Vec<f64> {
        let base = self.baseline_s();
        self.rows.iter().map(|r| r.time_s / base).collect()
    }
}

/// Estimated scalar-CPU instructions for a C implementation of the workload —
/// callers pass the arithmetic work (e.g. `2·n³·reps` flops for matmul) and we
/// charge the standard ~4 instructions per useful flop of scalar loop code.
pub fn c_program_instructions(useful_flops: u64) -> u64 {
    useful_flops * 4
}

/// Run all six Table 1 paths for `app`, with `c_flops` the useful arithmetic work
/// of the equivalent C program.
///
/// # Errors
///
/// Propagates application or backend failures from any path.
pub fn run_table1(app: &dyn Application, c_flops: u64) -> Result<Table1, SigmaVpError> {
    let registry: KernelRegistry = app.kernels().into_iter().collect();
    let arch = GpuArch::quadro_4000();

    // Row 1: CUDA natively on the GPU. No VP, no translation: a native process
    // drives the device directly; the only cost left is device time plus the
    // (negligible) native driver overhead, which we model with a zero-latency
    // transport and a native platform.
    let row1 = {
        let mut session = ExecutionSession::single(
            arch.clone(),
            registry.clone(),
            TransportCost { latency_s: 0.0, per_byte_s: 0.0 },
        );
        let mut vp = VirtualPlatform::native(VpId(0));
        let mut gpu = session.connect(VpId(0));
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        PathResult {
            label: "CUDA on GPU (native)".into(),
            language: "CUDA",
            executed_by: "GPU",
            time_s: vp.now_s(),
        }
    };

    // Row 2: CUDA emulated on the host CPU.
    let row2 = {
        let mut vp = VirtualPlatform::native(VpId(0));
        let mut gpu = EmulatedGpu::on_cpu(registry.clone());
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        PathResult {
            label: "CUDA emulated on CPU".into(),
            language: "CUDA",
            executed_by: "Emul. on CPU",
            time_s: vp.now_s(),
        }
    };

    // Row 3: CUDA emulated inside the VP — the configuration ΣVP replaces.
    let row3 = {
        let mut vp = VirtualPlatform::new(VpId(0));
        let mut gpu = EmulatedGpu::on_vp(registry.clone());
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        PathResult {
            label: "CUDA emulated on VP".into(),
            language: "CUDA",
            executed_by: "Emul. on VP",
            time_s: vp.now_s(),
        }
    };

    // Row 4: ΣVP — the VP forwards CUDA calls to the multiplexed host GPU.
    let row4 = {
        let mut session =
            ExecutionSession::single(arch.clone(), registry, TransportCost::shared_memory());
        let mut vp = VirtualPlatform::new(VpId(0));
        let mut gpu = session.connect(VpId(0));
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        PathResult {
            label: "SigmaVP (this work)".into(),
            language: "CUDA",
            executed_by: "This work",
            time_s: vp.now_s(),
        }
    };

    // Rows 5 and 6: the C implementation, natively and under translation.
    let cpu = CpuModel::host_xeon();
    let instr = c_program_instructions(c_flops) as f64;
    let row5 = PathResult {
        label: "C on CPU".into(),
        language: "C",
        executed_by: "CPU",
        time_s: BinaryTranslation::native().guest_time(&cpu, instr),
    };
    let row6 = PathResult {
        label: "C on VP".into(),
        language: "C",
        executed_by: "VP",
        time_s: BinaryTranslation::qemu_arm().guest_time(&cpu, instr),
    };

    Ok(Table1 { rows: vec![row1, row2, row3, row4, row5, row6] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_workloads::apps::MatrixMulApp;

    fn table() -> Table1 {
        // Reduced-size matmul (the paper used 320×320 × 300 reps on real silicon;
        // the simulated substrate uses 96×96 × 1 — large enough to fill a device
        // wave, so ratios rather than magnitudes are the comparison target).
        let app = MatrixMulApp::with_shape(96, 1);
        let flops = 2 * 96u64.pow(3);
        run_table1(&app, flops).unwrap()
    }

    #[test]
    fn ordering_matches_the_paper() {
        let t = table();
        let r = t.ratios();
        // r = [GPU, EmulCPU, EmulVP, SigmaVP, C-CPU, C-VP]
        assert!(r[0] == 1.0);
        assert!(r[3] < r[1], "SigmaVP must beat emulation on CPU");
        assert!(r[1] < r[2], "emulation on VP is worst of the CUDA paths");
        assert!(r[4] < r[2], "plain C on CPU beats GPU emulation on VP");
        assert!(r[5] < r[2], "even C on VP beats GPU emulation on VP (paper's point)");
        assert!(r[5] > r[4], "translation slows the C program");
    }

    #[test]
    fn magnitudes_are_in_the_papers_bands() {
        let t = table();
        let r = t.ratios();
        // Paper: SigmaVP 3.32×; accept 1.5–30× for the simulated substrate.
        assert!(r[3] > 1.2 && r[3] < 30.0, "SigmaVP ratio {:.2}", r[3]);
        // Paper: emulation on VP 2193×; accept two orders of magnitude either way.
        assert!(r[2] > 100.0, "emul-on-VP ratio {:.0}", r[2]);
        // Paper: C-on-VP / C-on-CPU = 32.9 by calibration.
        assert!((r[5] / r[4] - 32.9).abs() < 0.5);
    }

    #[test]
    fn c_instruction_model() {
        assert_eq!(c_program_instructions(100), 400);
    }
}
