//! The execution session: one object owning the host device set, VP routing,
//! and the job logs — shared by every runtime.
//!
//! The paper's framework "multiplexes the host GPUs": a host with several
//! devices spreads the VPs across them. [`ExecutionSession`] is that ownership
//! layer. The scenario engine, the threaded runtime, the dispatcher runtime,
//! and the Table 1 paths all build one, so multi-GPU routing, record keeping,
//! and planner integration live in exactly one place:
//!
//! * **Device set** — N host GPUs, each with its own [`HostRuntime`] (device,
//!   kernel registry, job log).
//! * **Routing** — [`ExecutionSession::assign`] places each VP on the
//!   least-loaded device (ties go to the lowest index, so sequential
//!   connections produce the classic round-robin partition).
//! * **Planning** — [`ExecutionSession::drain_and_plan`] drains every device's
//!   [`JobRecord`] log and prices it through a shared scheduling
//!   [`Pipeline`](sigmavp_sched::Pipeline), yielding a [`SessionOutcome`] with
//!   per-device timelines and fleet-level aggregates.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use sigmavp_gpu::engine::Engine as GpuEngine;
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_sched::{ExecTier, Pipeline, Placement};
use sigmavp_vp::registry::KernelRegistry;

use crate::backend::MultiplexedGpu;
use crate::error::SigmaVpError;
use crate::host::{HostRuntime, JobRecord};
use crate::plan::{plan_device, DevicePlan};

#[derive(Debug)]
struct DeviceSlot {
    arch: GpuArch,
    runtime: Arc<Mutex<HostRuntime>>,
}

/// The device set plus VP routing state for one simulation run.
#[derive(Debug)]
pub struct ExecutionSession {
    devices: Vec<DeviceSlot>,
    /// Per-device connection counts and health — the shared least-loaded
    /// routing policy from `sigmavp-sched`.
    placement: Placement,
    transport: TransportCost,
    assignments: HashMap<VpId, usize>,
}

impl ExecutionSession {
    /// A session over `archs` host GPUs, each serving kernels from `registry`,
    /// reached through a transport with the given cost model.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaVpError::Config`] if `archs` is empty.
    pub fn new(
        archs: Vec<GpuArch>,
        registry: KernelRegistry,
        transport: TransportCost,
    ) -> Result<Self, SigmaVpError> {
        if archs.is_empty() {
            return Err(SigmaVpError::Config("need at least one host gpu".into()));
        }
        let devices: Vec<DeviceSlot> = archs
            .into_iter()
            .map(|arch| DeviceSlot {
                runtime: Arc::new(Mutex::new(HostRuntime::new(arch.clone(), registry.clone()))),
                arch,
            })
            .collect();
        let placement = Placement::new(devices.len());
        Ok(ExecutionSession { devices, placement, transport, assignments: HashMap::new() })
    }

    /// A single-device session (the common case; cannot fail).
    pub fn single(arch: GpuArch, registry: KernelRegistry, transport: TransportCost) -> Self {
        Self::new(vec![arch], registry, transport)
            .expect("single-device session always has a device")
    }

    /// Number of host GPUs in the session.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Architecture of device `d`.
    pub fn arch(&self, d: usize) -> &GpuArch {
        &self.devices[d].arch
    }

    /// The transport cost model VPs connect through.
    pub fn transport(&self) -> TransportCost {
        self.transport
    }

    /// Shared handle to device `d`'s host runtime (for runtimes that drive the
    /// dispatch loop themselves).
    pub fn runtime(&self, d: usize) -> Arc<Mutex<HostRuntime>> {
        self.devices[d].runtime.clone()
    }

    /// Device buffers currently allocated across every device in the session
    /// (leak accounting for the DESIGN.md §12 re-migration fix).
    pub fn live_buffers(&self) -> usize {
        self.devices.iter().map(|d| d.runtime.lock().live_handles()).sum()
    }

    /// Route `vp` to a device: least-loaded *healthy* device first, ties to the
    /// lowest index (so sequential assignment of VPs 0..N over D devices yields
    /// the round-robin partition `vp % D`). Re-assigning a VP returns its
    /// existing device. If every device has been marked down, routing falls
    /// back to the full set (degraded, but never unroutable) — use
    /// [`ExecutionSession::try_assign`] for strict routing that surfaces the
    /// all-down case as a typed error instead.
    pub fn assign(&mut self, vp: VpId) -> usize {
        if let Some(&d) = self.assignments.get(&vp) {
            return d;
        }
        let d = self
            .placement
            .least_loaded()
            .or_else(|| self.placement.least_loaded_any())
            .expect("session has at least one device");
        self.placement.add(d);
        self.assignments.insert(vp, d);
        d
    }

    /// Strict routing: like [`ExecutionSession::assign`], but when every device
    /// has been marked down return [`SigmaVpError::AllDevicesDown`] instead of
    /// degrading onto a dead device. A VP that is already assigned keeps its
    /// device even if that device has since gone down (its migration is the
    /// supervisor's job, not the router's).
    ///
    /// # Errors
    ///
    /// Returns [`SigmaVpError::AllDevicesDown`] when no healthy device exists
    /// and `vp` is not already assigned.
    pub fn try_assign(&mut self, vp: VpId) -> Result<usize, SigmaVpError> {
        if let Some(&d) = self.assignments.get(&vp) {
            return Ok(d);
        }
        let d = self.placement.least_loaded().ok_or(SigmaVpError::AllDevicesDown)?;
        self.placement.add(d);
        self.assignments.insert(vp, d);
        Ok(d)
    }

    /// The device `vp` was routed to, if assigned.
    pub fn device_of(&self, vp: VpId) -> Option<usize> {
        self.assignments.get(&vp).copied()
    }

    /// Whether device `d` is still considered healthy.
    pub fn is_healthy(&self, d: usize) -> bool {
        self.placement.is_healthy(d)
    }

    /// Mark device `d` as down: new VPs route around it and its existing VPs
    /// are expected to migrate. Idempotent.
    pub fn mark_down(&mut self, d: usize) {
        self.placement.mark_down(d);
    }

    /// Number of devices still marked healthy.
    pub fn healthy_count(&self) -> usize {
        self.placement.healthy_count()
    }

    /// Move an already-assigned `vp` onto device `d` (failover), keeping the
    /// per-device connection counts consistent. Reassigning a VP to the device
    /// it is already on is a no-op, so repeated failover of the same VP never
    /// skews the load counts.
    pub fn reassign(&mut self, vp: VpId, d: usize) {
        if let Some(old) = self.assignments.insert(vp, d) {
            self.placement.transfer(old, d);
        } else {
            self.placement.add(d);
        }
    }

    /// VPs currently routed to device `d`, in ascending VP order.
    pub fn vps_on(&self, d: usize) -> Vec<VpId> {
        let mut vps: Vec<VpId> =
            self.assignments.iter().filter(|(_, &dev)| dev == d).map(|(&vp, _)| vp).collect();
        vps.sort_by_key(|vp| vp.0);
        vps
    }

    /// Assign `vp` to a device and open a guest-side connection to it.
    pub fn connect(&mut self, vp: VpId) -> MultiplexedGpu {
        let d = self.assign(vp);
        MultiplexedGpu::new(vp, self.devices[d].runtime.clone(), self.transport)
    }

    /// Drain every device's job log (per-device, in dispatch order).
    pub fn take_records(&mut self) -> Vec<Vec<JobRecord>> {
        self.devices.iter().map(|slot| slot.runtime.lock().take_records()).collect()
    }

    /// Set the block-parallel worker count used for kernel launches on every
    /// device (`0` = one worker per core, `1` = sequential).
    pub fn set_workers(&mut self, workers: u32) {
        for slot in &self.devices {
            slot.runtime.lock().set_workers(workers);
        }
    }

    /// Select the SPTX execution tier used for kernel launches on every
    /// device, mapping the scheduler's backend-agnostic [`ExecTier`] onto the
    /// interpreter's own tier enum.
    pub fn set_tier(&mut self, tier: ExecTier) {
        let tier = match tier {
            ExecTier::Scalar => sigmavp_sptx::Tier::Scalar,
            ExecTier::Warp => sigmavp_sptx::Tier::Warp,
        };
        for slot in &self.devices {
            slot.runtime.lock().set_tier(tier);
        }
    }

    /// Drain every device's job log and plan each through `pipeline`, pricing
    /// the results on the per-device engine models.
    ///
    /// Host GPUs are independent, so devices are planned concurrently on the
    /// shared SPTX [`WorkerPool`](sigmavp_sptx::exec::WorkerPool); results are
    /// assembled back in device order, so the outcome is identical to planning
    /// sequentially.
    pub fn drain_and_plan(
        &mut self,
        pipeline: &Pipeline,
        coalescible: &(dyn Fn(VpId) -> bool + Sync),
    ) -> SessionOutcome {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let inputs: Vec<(GpuArch, Vec<JobRecord>)> = self
            .devices
            .iter()
            .map(|slot| (slot.arch.clone(), slot.runtime.lock().take_records()))
            .collect();
        let plans: Vec<Mutex<Option<DevicePlan>>> =
            inputs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let task = |_slot: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some((arch, records)) = inputs.get(i) else { break };
            *plans[i].lock() = Some(plan_device(pipeline, records, coalescible, arch));
        };
        sigmavp_sptx::exec::WorkerPool::global().run_scoped(inputs.len(), &task);

        let devices = inputs
            .into_iter()
            .zip(plans)
            .map(|((arch, records), plan)| DeviceOutcome {
                arch,
                records,
                plan: plan.into_inner().expect("every device was planned"),
            })
            .collect();
        SessionOutcome { devices }
    }
}

/// One device's share of a session: its job log and the priced plan.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// The device architecture.
    pub arch: GpuArch,
    /// The jobs this device served, in dispatch order.
    pub records: Vec<JobRecord>,
    /// The planned, priced schedule.
    pub plan: DevicePlan,
}

impl DeviceOutcome {
    /// This device's planned activity as job-uid-stamped simulated-time trace
    /// events (see [`DevicePlan::trace_events`]).
    pub fn trace_events(&self) -> Vec<sigmavp_telemetry::TraceEvent> {
        self.plan.trace_events(&self.records)
    }

    /// Per-job simulated queue waits on this device (see
    /// [`DevicePlan::queue_waits`]).
    pub fn queue_waits(&self) -> Vec<(VpId, f64)> {
        self.plan.queue_waits(&self.records)
    }
}

/// Aggregated simulated queue wait for one VP (see
/// [`SessionOutcome::queue_wait_by_vp`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VpQueueWait {
    /// Device-touching jobs the VP ran.
    pub jobs: usize,
    /// Summed queue wait over those jobs, in simulated seconds.
    pub total_s: f64,
    /// Worst single-job queue wait, in simulated seconds.
    pub max_s: f64,
}

impl VpQueueWait {
    /// Mean queue wait per job (zero for a VP with no jobs).
    pub fn mean_s(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_s / self.jobs as f64
        }
    }
}

/// Fleet-level view of a drained session: per-device outcomes plus aggregates.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Per-device outcomes, in device order.
    pub devices: Vec<DeviceOutcome>,
}

impl SessionOutcome {
    /// Device makespan of the fleet: the slowest device's timeline (device
    /// timelines run on independent hardware).
    pub fn makespan_s(&self) -> f64 {
        self.devices.iter().map(|d| d.plan.timeline.makespan_s).fold(0.0, f64::max)
    }

    /// Total device-touching jobs across the fleet.
    pub fn gpu_jobs(&self) -> usize {
        self.devices.iter().map(|d| d.records.len()).sum()
    }

    /// Kernel groups merged by coalescing, summed over devices.
    pub fn coalesced_groups(&self) -> usize {
        self.devices.iter().map(|d| d.plan.coalesced_groups()).sum()
    }

    /// Total member launches those groups absorbed.
    pub fn coalesced_members(&self) -> usize {
        self.devices.iter().map(|d| d.plan.coalesced_members()).sum()
    }

    /// Best compute-engine utilization across devices.
    pub fn compute_utilization(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.plan.timeline.utilization(GpuEngine::Compute))
            .fold(0.0, f64::max)
    }

    /// All records, concatenated by device (back-compat flat view).
    pub fn flat_records(&self) -> Vec<JobRecord> {
        self.devices.iter().flat_map(|d| d.records.iter().cloned()).collect()
    }

    /// Per-VP simulated queue wait across every device, in ascending VP order.
    ///
    /// This is the session-level starvation signal: a VP whose jobs keep
    /// losing the planned schedule shows up with a large `max_s` here, without
    /// anyone re-deriving waits from trace spans. Deterministic for a
    /// deterministic job log (it reads the planned timelines, not wall clocks).
    pub fn queue_wait_by_vp(&self) -> Vec<(VpId, VpQueueWait)> {
        let mut by_vp: HashMap<VpId, VpQueueWait> = HashMap::new();
        for device in &self.devices {
            for (vp, wait_s) in device.queue_waits() {
                let entry = by_vp.entry(vp).or_default();
                entry.jobs += 1;
                entry.total_s += wait_s;
                entry.max_s = entry.max_s.max(wait_s);
            }
        }
        let mut out: Vec<(VpId, VpQueueWait)> = by_vp.into_iter().collect();
        out.sort_by_key(|(vp, _)| vp.0);
        out
    }

    /// The p99 (nearest-rank) of per-VP *worst* queue waits — the fleet
    /// starvation gate's number. Zero for an empty session.
    pub fn p99_queue_wait_s(&self) -> f64 {
        let mut worst: Vec<f64> = self.queue_wait_by_vp().iter().map(|(_, w)| w.max_s).collect();
        if worst.is_empty() {
            return 0.0;
        }
        worst.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = (worst.len() * 99).div_ceil(100);
        worst[rank - 1]
    }

    /// Every device's job-uid-stamped trace events, concatenated in device
    /// order. Device timelines share a `t = 0` origin (independent hardware),
    /// and with one VP routed to one device the VP lanes never collide; the
    /// shared engine lanes overlay devices, so per-device analysis should use
    /// [`DeviceOutcome::trace_events`] instead.
    pub fn trace_events(&self) -> Vec<sigmavp_telemetry::TraceEvent> {
        self.devices.iter().flat_map(DeviceOutcome::trace_events).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_sched::Policy;
    use sigmavp_vp::service::GpuService;
    use sigmavp_workloads::app::Application;
    use sigmavp_workloads::apps::VectorAddApp;

    fn registry() -> KernelRegistry {
        VectorAddApp { n: 256 }.kernels().into_iter().collect()
    }

    #[test]
    fn sequential_assignment_is_round_robin() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(), GpuArch::grid_k520()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        for vp in 0..6u32 {
            assert_eq!(s.assign(VpId(vp)), (vp % 2) as usize);
        }
        // Re-assignment is stable.
        assert_eq!(s.assign(VpId(0)), 0);
        assert_eq!(s.device_of(VpId(5)), Some(1));
        assert_eq!(s.device_of(VpId(9)), None);
    }

    #[test]
    fn least_loaded_routing_fills_gaps() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(); 3],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(s.assign(VpId(0)), 0);
        assert_eq!(s.assign(VpId(1)), 1);
        assert_eq!(s.assign(VpId(2)), 2);
        assert_eq!(s.assign(VpId(3)), 0);
        // Device 1 and 2 are now lighter than 0.
        assert_eq!(s.assign(VpId(4)), 1);
    }

    #[test]
    fn unhealthy_devices_are_routed_around() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(s.assign(VpId(0)), 0);
        s.mark_down(0);
        assert!(!s.is_healthy(0));
        assert_eq!(s.healthy_count(), 1);
        assert_eq!(s.assign(VpId(1)), 1, "new vps avoid the dead device");
        assert_eq!(s.assign(VpId(2)), 1);
        // Failover: vp 0 migrates to the survivor.
        s.reassign(VpId(0), 1);
        assert_eq!(s.device_of(VpId(0)), Some(1));
        // With every device down, routing still succeeds (degraded mode).
        s.mark_down(1);
        assert_eq!(s.healthy_count(), 0);
        assert_eq!(s.assign(VpId(3)), 0, "fallback to the full set");
    }

    #[test]
    fn try_assign_reports_all_devices_down_as_typed_error() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(s.try_assign(VpId(0)).unwrap(), 0);
        s.mark_down(0);
        assert_eq!(s.try_assign(VpId(1)).unwrap(), 1, "strict routing avoids the dead device");
        s.mark_down(1);
        // Strict routing refuses; the degraded `assign` still places.
        assert_eq!(s.try_assign(VpId(2)).unwrap_err(), SigmaVpError::AllDevicesDown);
        assert_eq!(s.assign(VpId(2)), 0, "degraded fallback remains available");
        // An already-assigned VP keeps its device even with everything down.
        assert_eq!(s.try_assign(VpId(0)).unwrap(), 0);
    }

    #[test]
    fn mark_down_is_idempotent() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        s.mark_down(0);
        s.mark_down(0);
        assert_eq!(s.healthy_count(), 1);
        assert!(!s.is_healthy(0));
        assert!(s.is_healthy(1));
    }

    #[test]
    fn reassign_is_idempotent_and_keeps_counts_consistent() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(s.assign(VpId(0)), 0);
        assert_eq!(s.assign(VpId(1)), 1);
        // Reassigning a VP onto its current device is a no-op: the next fresh
        // VP still sees balanced loads and round-robins.
        s.reassign(VpId(0), 0);
        s.reassign(VpId(0), 0);
        assert_eq!(s.device_of(VpId(0)), Some(0));
        assert_eq!(s.assign(VpId(2)), 0);
        // Repeated failover of the same VP moves exactly one connection.
        s.reassign(VpId(1), 0);
        s.reassign(VpId(1), 0);
        assert_eq!(s.device_of(VpId(1)), Some(0));
        assert_eq!(s.assign(VpId(3)), 1, "device 1 is now the emptier one");
        // Reassigning an unknown VP registers it (failover before first use).
        s.reassign(VpId(9), 1);
        assert_eq!(s.device_of(VpId(9)), Some(1));
        assert_eq!(s.vps_on(0), vec![VpId(0), VpId(1), VpId(2)]);
    }

    #[test]
    fn queue_waits_are_exposed_per_vp() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        let data = vec![1u8; 4096];
        for vp in 0..3u32 {
            let mut gpu = s.connect(VpId(vp));
            let (h, _) = gpu.malloc(4096).unwrap();
            gpu.memcpy_h2d(h, &data).unwrap();
            gpu.memcpy_h2d(h, &data).unwrap();
            gpu.free(h).unwrap();
        }
        let outcome = s.drain_and_plan(&Pipeline::from_policy(&Policy::Multiplexed), &|_| false);
        let waits = outcome.queue_wait_by_vp();
        assert_eq!(waits.len(), 3, "every VP appears");
        assert_eq!(waits.iter().map(|(_, w)| w.jobs).sum::<usize>(), 6);
        for (vp, w) in &waits {
            assert!(w.max_s >= 0.0 && w.total_s >= w.max_s - 1e-12, "vp {vp:?}: {w:?}");
            assert!(w.mean_s() <= w.max_s + 1e-12);
        }
        // All six copies serialize on one copy engine with sent_at ≈ 0, so the
        // worst wait is positive and the p99 picks it up.
        assert!(outcome.p99_queue_wait_s() > 0.0);
        let worst = waits.iter().map(|(_, w)| w.max_s).fold(0.0, f64::max);
        assert!((outcome.p99_queue_wait_s() - worst).abs() < 1e-12);
    }

    #[test]
    fn empty_device_set_is_rejected() {
        let err =
            ExecutionSession::new(vec![], registry(), TransportCost::shared_memory()).unwrap_err();
        assert!(matches!(err, SigmaVpError::Config(_)));
    }

    #[test]
    fn connections_share_the_assigned_device() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        let mut a = s.connect(VpId(0));
        let mut b = s.connect(VpId(1));
        let (ha, _) = a.malloc(64).unwrap();
        let (hb, _) = b.malloc(64).unwrap();
        // Separate devices allocate independently: both get the first handle.
        assert_eq!(ha, hb);
        a.free(ha).unwrap();
        b.free(hb).unwrap();
    }

    #[test]
    fn drain_and_plan_aggregates_per_device() {
        let mut s = ExecutionSession::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry(),
            TransportCost::shared_memory(),
        )
        .unwrap();
        let data = vec![1u8; 256];
        for vp in 0..4u32 {
            let mut gpu = s.connect(VpId(vp));
            let (h, _) = gpu.malloc(256).unwrap();
            gpu.memcpy_h2d(h, &data).unwrap();
            gpu.free(h).unwrap();
        }
        let outcome = s.drain_and_plan(&Pipeline::from_policy(&Policy::Multiplexed), &|_| false);
        assert_eq!(outcome.devices.len(), 2);
        assert_eq!(outcome.gpu_jobs(), 4);
        assert_eq!(outcome.devices[0].records.len(), 2);
        assert_eq!(outcome.flat_records().len(), 4);
        assert!(outcome.makespan_s() > 0.0);
        // A second drain finds empty logs.
        assert_eq!(s.take_records().iter().map(Vec::len).sum::<usize>(), 0);
    }
}
