//! The forwarding GPU backend: the guest side of host-GPU multiplexing.
//!
//! [`MultiplexedGpu`] implements the guest-facing
//! [`GpuService`] by encoding every call into the
//! wire protocol, "sending" it through a cost-modeled transport to the shared
//! [`HostRuntime`], and decoding the response — the full Fig. 1b path. Frames
//! really are encoded and decoded (the codec is on the hot path, exactly like a
//! production remoting stack), and the transport's latency model charges the VP for
//! every round trip.

use std::sync::Arc;

use parking_lot::Mutex;

use sigmavp_ipc::codec;
use sigmavp_ipc::message::{Envelope, Request, Response, VpId, WireParam};
use sigmavp_ipc::transport::TransportCost;
use sigmavp_vp::error::VpError;
use sigmavp_vp::platform::SimClock;
use sigmavp_vp::service::GpuService;

use crate::host::HostRuntime;

/// Per-VP IPC accounting, exposed for the scenario engine's composition.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IpcStats {
    /// Total transport delay charged to this VP, seconds.
    pub transport_time_s: f64,
    /// Messages exchanged (requests + responses).
    pub messages: u64,
    /// Bytes moved over the transport in both directions.
    pub bytes: u64,
}

/// A guest-side handle to the multiplexed host GPU.
#[derive(Debug)]
pub struct MultiplexedGpu {
    vp: VpId,
    runtime: Arc<Mutex<HostRuntime>>,
    cost: TransportCost,
    seq: u64,
    ipc: IpcStats,
    clock: SimClock,
}

impl MultiplexedGpu {
    /// Connect VP `vp` to a shared host runtime over a transport with the given
    /// cost model. Requests are stamped from a zeroed clock until
    /// [`with_clock`](MultiplexedGpu::with_clock) attaches the VP's.
    pub fn new(vp: VpId, runtime: Arc<Mutex<HostRuntime>>, cost: TransportCost) -> Self {
        MultiplexedGpu {
            vp,
            runtime,
            cost,
            seq: 0,
            ipc: IpcStats::default(),
            clock: SimClock::new(),
        }
    }

    /// Stamp outgoing requests' `sent_at_s` from the given simulated clock
    /// (normally the owning [`VirtualPlatform`](sigmavp_vp::VirtualPlatform)'s
    /// [`clock_handle`](sigmavp_vp::VirtualPlatform::clock_handle)).
    pub fn with_clock(mut self, clock: SimClock) -> Self {
        self.clock = clock;
        self
    }

    /// IPC accounting for this VP so far.
    pub fn ipc_stats(&self) -> IpcStats {
        self.ipc
    }

    /// Perform one request/response round trip. Returns the response body and the
    /// transport delay (device time is carried inside the response).
    fn round_trip(&mut self, body: Request) -> Result<(Response, f64), VpError> {
        let envelope = Envelope {
            vp: self.vp,
            seq: self.seq,
            sent_at_s: self.clock.now_s(),
            deadline_s: f64::INFINITY,
            body,
        };
        self.seq += 1;

        let frame = codec::encode_request(&envelope);
        let out_delay = self.cost.delay_for(frame.len() as u64);
        self.ipc.messages += 1;
        self.ipc.bytes += frame.len() as u64;

        let response = {
            let mut rt = self.runtime.lock();
            let decoded = codec::decode_request(&frame).map_err(|_| VpError::Disconnected)?;
            rt.process(&decoded)
        };
        let resp_frame = codec::encode_response(&response);
        let back_delay = self.cost.delay_for(resp_frame.len() as u64);
        self.ipc.messages += 1;
        self.ipc.bytes += resp_frame.len() as u64;
        let decoded = codec::decode_response(&resp_frame).map_err(|_| VpError::Disconnected)?;

        let delay = out_delay + back_delay;
        self.ipc.transport_time_s += delay;
        match decoded.body {
            Response::Error { message } => Err(VpError::Device(message)),
            other => Ok((other, delay)),
        }
    }
}

impl GpuService for MultiplexedGpu {
    fn malloc(&mut self, bytes: u64) -> Result<(u64, f64), VpError> {
        let (resp, delay) = self.round_trip(Request::Malloc { bytes })?;
        match resp {
            Response::Malloc { handle } => Ok((handle, delay)),
            other => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn free(&mut self, handle: u64) -> Result<f64, VpError> {
        let (_, delay) = self.round_trip(Request::Free { handle })?;
        Ok(delay)
    }

    fn memcpy_h2d(&mut self, handle: u64, data: &[u8]) -> Result<f64, VpError> {
        let bytes = data.len() as u64;
        let (_, delay) =
            self.round_trip(Request::MemcpyH2D { handle, data: data.to_vec(), stream: 0 })?;
        // A synchronous copy blocks the VP for the transport plus the device copy.
        let copy_time = self.runtime.lock().device().arch().copy_time_s(bytes);
        Ok(delay + copy_time)
    }

    fn memcpy_h2d_async(&mut self, stream: u32, handle: u64, data: &[u8]) -> Result<f64, VpError> {
        let (_, delay) =
            self.round_trip(Request::MemcpyH2D { handle, data: data.to_vec(), stream })?;
        // Submission cost only; the timeline model accounts for completion.
        Ok(delay)
    }

    fn memcpy_d2h(&mut self, handle: u64, out: &mut [u8]) -> Result<f64, VpError> {
        let len = out.len() as u64;
        let (resp, delay) = self.round_trip(Request::MemcpyD2H { handle, len, stream: 0 })?;
        match resp {
            Response::Data { data } => {
                if data.len() != out.len() {
                    return Err(VpError::SizeMismatch { buffer: data.len() as u64, host: len });
                }
                out.copy_from_slice(&data);
                let copy_time = self.runtime.lock().device().arch().copy_time_s(len);
                Ok(delay + copy_time)
            }
            other => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn memcpy_d2h_async(
        &mut self,
        stream: u32,
        handle: u64,
        out: &mut [u8],
    ) -> Result<f64, VpError> {
        let len = out.len() as u64;
        let (resp, delay) = self.round_trip(Request::MemcpyD2H { handle, len, stream })?;
        match resp {
            Response::Data { data } => {
                if data.len() != out.len() {
                    return Err(VpError::SizeMismatch { buffer: data.len() as u64, host: len });
                }
                out.copy_from_slice(&data);
                Ok(delay)
            }
            other => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn launch(
        &mut self,
        kernel: &str,
        grid_dim: u32,
        block_dim: u32,
        params: &[WireParam],
        sync: bool,
    ) -> Result<f64, VpError> {
        self.launch_on_stream(0, kernel, grid_dim, block_dim, params, sync)
    }

    fn launch_on_stream(
        &mut self,
        stream: u32,
        kernel: &str,
        grid_dim: u32,
        block_dim: u32,
        params: &[WireParam],
        sync: bool,
    ) -> Result<f64, VpError> {
        let (resp, delay) = self.round_trip(Request::Launch {
            kernel: kernel.to_string(),
            grid_dim,
            block_dim,
            params: params.to_vec(),
            sync,
            stream,
        })?;
        match resp {
            Response::Launched { device_time_s } => {
                // Synchronous launches block the VP for the kernel; asynchronous
                // ones only pay the submission round trip (the timeline model
                // accounts for device completion).
                Ok(if sync { delay + device_time_s } else { delay })
            }
            other => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn synchronize(&mut self) -> Result<f64, VpError> {
        let (_, delay) = self.round_trip(Request::Synchronize)?;
        Ok(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_gpu::GpuArch;
    use sigmavp_sptx::asm;
    use sigmavp_vp::registry::KernelRegistry;

    fn shared_runtime() -> Arc<Mutex<HostRuntime>> {
        let scale = asm::parse(
            ".kernel scale\nentry:\n    rs r0, gtid\n    ldp r1, 0\n    ld.f32 r2, [r1 + r0]\n    add.f32 r2, r2, r2\n    st.f32 [r1 + r0], r2\n    ret\n",
        )
        .unwrap();
        let registry: KernelRegistry = [scale].into_iter().collect();
        Arc::new(Mutex::new(HostRuntime::new(GpuArch::quadro_4000(), registry)))
    }

    #[test]
    fn forwarding_is_functionally_correct() {
        let rt = shared_runtime();
        let mut gpu = MultiplexedGpu::new(VpId(0), rt, TransportCost::shared_memory());
        let n = 128u64;
        let (h, _) = gpu.malloc(n * 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        gpu.memcpy_h2d(h, &data).unwrap();
        let t = gpu.launch("scale", 1, n as u32, &[WireParam::Buffer(h)], true).unwrap();
        assert!(t > 0.0);
        let mut out = vec![0u8; (n * 4) as usize];
        gpu.memcpy_d2h(h, &mut out).unwrap();
        gpu.free(h).unwrap();
        assert_eq!(f32::from_le_bytes(out[8..12].try_into().unwrap()), 4.0);
        let stats = gpu.ipc_stats();
        assert_eq!(stats.messages, 10); // five calls × two frames
        assert!(stats.transport_time_s > 0.0);
        assert!(stats.bytes > n * 4); // the payload crossed the wire
    }

    #[test]
    fn two_vps_share_one_device() {
        let rt = shared_runtime();
        let mut a = MultiplexedGpu::new(VpId(0), rt.clone(), TransportCost::shared_memory());
        let mut b = MultiplexedGpu::new(VpId(1), rt.clone(), TransportCost::shared_memory());
        let (ha, _) = a.malloc(64).unwrap();
        let (hb, _) = b.malloc(64).unwrap();
        assert_ne!(ha, hb, "handles are device-global");
        a.free(ha).unwrap();
        b.free(hb).unwrap();
        assert_eq!(rt.lock().records().len(), 0); // malloc/free are not jobs
    }

    #[test]
    fn socket_transport_is_slower_than_shared_memory() {
        let rt = shared_runtime();
        let mut shm = MultiplexedGpu::new(VpId(0), rt.clone(), TransportCost::shared_memory());
        let mut sock = MultiplexedGpu::new(VpId(1), rt, TransportCost::socket());
        let (h1, t1) = shm.malloc(64).unwrap();
        let (h2, t2) = sock.malloc(64).unwrap();
        assert!(t2 > t1);
        shm.free(h1).unwrap();
        sock.free(h2).unwrap();
    }

    #[test]
    fn host_errors_surface_as_device_errors() {
        let rt = shared_runtime();
        let mut gpu = MultiplexedGpu::new(VpId(0), rt, TransportCost::shared_memory());
        let err = gpu.launch("missing", 1, 1, &[], true).unwrap_err();
        assert!(matches!(err, VpError::Device(_)));
        assert!(matches!(gpu.free(1234), Err(VpError::Device(_))));
    }

    #[test]
    fn async_launch_blocks_only_for_submission() {
        let rt = shared_runtime();
        let mut gpu = MultiplexedGpu::new(VpId(0), rt, TransportCost::shared_memory());
        let (h, _) = gpu.malloc(4096 * 4).unwrap();
        gpu.memcpy_h2d(h, &vec![0u8; 4096 * 4]).unwrap();
        let sync_t = gpu.launch("scale", 16, 256, &[WireParam::Buffer(h)], true).unwrap();
        let async_t = gpu.launch("scale", 16, 256, &[WireParam::Buffer(h)], false).unwrap();
        assert!(async_t < sync_t);
    }
}
