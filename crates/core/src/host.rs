//! The host-side ΣVP runtime: Job Dispatcher plus record keeping.
//!
//! "The Job Dispatcher links the requests to the GPU driver library on the host
//! machine and invokes the physical GPU instructions based on the requests in the
//! Job Queue" (paper, Section 2). [`HostRuntime::process`] is that dispatcher: it
//! receives decoded request [`Envelope`]s, executes them on the simulated host
//! [`GpuDevice`] (functionally — real data moves), and emits response envelopes.
//! Every device-touching request also appends a [`JobRecord`] so the scenario
//! engine can replay the job stream through the two-engine timeline model with and
//! without the re-scheduler's optimizations.

use std::collections::HashMap;

use sigmavp_gpu::alloc::DeviceBuffer;
use sigmavp_gpu::{GpuArch, GpuDevice};
use sigmavp_ipc::message::{Envelope, Request, Response, ResponseEnvelope, VpId, WireParam};
use sigmavp_sptx::interp::{LaunchConfig, ParamValue};
use sigmavp_telemetry::bus::{self, ObsEvent};
use sigmavp_vp::registry::KernelRegistry;

/// What one dispatched job did on the device.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordKind {
    /// Host-to-device transfer.
    H2d {
        /// Bytes moved.
        bytes: u64,
        /// Guest stream (0 = default).
        stream: u32,
    },
    /// Device-to-host transfer.
    D2h {
        /// Bytes moved.
        bytes: u64,
        /// Guest stream (0 = default).
        stream: u32,
    },
    /// A kernel launch.
    Kernel {
        /// Kernel name.
        name: String,
        /// Grid size in blocks.
        grid_dim: u32,
        /// Block size in threads.
        block_dim: u32,
        /// Fixed launch overhead included in `duration_s`.
        launch_overhead_s: f64,
        /// Waves the grid occupied on the host device.
        waves: u64,
        /// Guest stream the launch belongs to (0 = default).
        stream: u32,
    },
}

/// One device-touching job, in dispatch order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Originating VP.
    pub vp: VpId,
    /// The VP's request sequence number.
    pub seq: u64,
    /// What ran.
    pub kind: RecordKind,
    /// Device time the job took, in simulated seconds.
    pub duration_s: f64,
    /// The guest's simulated clock when it sent the request (from
    /// [`Envelope::sent_at_s`](sigmavp_ipc::message::Envelope::sent_at_s)) —
    /// lets the host reconstruct guest-observed queueing delay.
    pub sent_at_s: f64,
}

/// Publish a completed job record onto the telemetry observation bus, where
/// live profile stores (e.g. `sigmavp-obs`'s `ProfileStore`) consume it. One
/// atomic load when no sink is installed; the event carries the stable
/// `job_uid` so consumers can fold observations in canonical `(vp, seq)`
/// order regardless of dispatch-thread interleaving.
pub fn publish_record(arch: &GpuArch, record: &JobRecord) {
    if !bus::has_sinks() {
        return;
    }
    let uid = sigmavp_telemetry::job_uid(record.vp.0, record.seq);
    let event = match &record.kind {
        RecordKind::H2d { bytes, .. } | RecordKind::D2h { bytes, .. } => ObsEvent::CopyObserved {
            arch: arch.name.clone(),
            bytes: *bytes,
            duration_s: record.duration_s,
            uid,
        },
        RecordKind::Kernel { name, grid_dim, block_dim, launch_overhead_s, waves, .. } => {
            ObsEvent::KernelObserved {
                arch: arch.name.clone(),
                kernel: name.clone(),
                blocks: u64::from(*grid_dim),
                waves: *waves,
                lambda_blocks: u64::from(arch.blocks_per_wave(*block_dim)),
                launch_overhead_s: *launch_overhead_s,
                duration_s: record.duration_s,
                uid,
            }
        }
    };
    bus::publish(&event);
}

/// The host-side runtime: device, kernel registry, handle table and job log.
#[derive(Debug)]
pub struct HostRuntime {
    device: GpuDevice,
    registry: KernelRegistry,
    handles: HashMap<u64, DeviceBuffer>,
    next_handle: u64,
    records: Vec<JobRecord>,
    recording: bool,
}

impl HostRuntime {
    /// A runtime over a host GPU of architecture `arch` serving kernels from
    /// `registry`.
    pub fn new(arch: GpuArch, registry: KernelRegistry) -> Self {
        HostRuntime {
            device: GpuDevice::new(arch),
            registry,
            handles: HashMap::new(),
            next_handle: 1,
            records: Vec::new(),
            recording: true,
        }
    }

    /// The underlying device (for profiler-log access).
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Set the block-parallel worker count for kernel launches on this
    /// runtime's device (`0` = one worker per core, `1` = sequential).
    pub fn set_workers(&mut self, workers: u32) {
        self.device.set_workers(workers);
    }

    /// Select the SPTX execution tier for kernel launches on this runtime's
    /// device (warp-lockstep by default; scalar for the reference
    /// interpreter).
    pub fn set_tier(&mut self, tier: sigmavp_sptx::Tier) {
        self.device.set_tier(tier);
    }

    /// The job log so far, in dispatch order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of device buffers currently allocated (leak accounting:
    /// DESIGN.md §12's re-migration fix is asserted against this).
    pub fn live_handles(&self) -> usize {
        self.handles.len()
    }

    /// Drain and return the job log.
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.records)
    }

    /// Dispatch one request, returning the response. All failures are reported to
    /// the guest as [`Response::Error`] (the host never panics on guest input).
    pub fn process(&mut self, envelope: &Envelope) -> ResponseEnvelope {
        let body = match self.dispatch(envelope) {
            Ok(r) => r,
            Err(message) => Response::Error { message },
        };
        ResponseEnvelope { vp: envelope.vp, seq: envelope.seq, sent_at_s: envelope.sent_at_s, body }
    }

    /// Dispatch a *replayed* request: executes like [`HostRuntime::process`]
    /// but appends no [`JobRecord`]s, so reconstructing a migrated VP's device
    /// state after a failover does not double-count its jobs in the timeline.
    pub fn process_replay(&mut self, envelope: &Envelope) -> ResponseEnvelope {
        self.recording = false;
        let response = self.process(envelope);
        self.recording = true;
        response
    }

    fn dispatch(&mut self, envelope: &Envelope) -> Result<Response, String> {
        match &envelope.body {
            Request::Malloc { bytes } => {
                let buf = self.device.malloc(*bytes).map_err(|e| e.to_string())?;
                let handle = self.next_handle;
                self.next_handle += 1;
                self.handles.insert(handle, buf);
                Ok(Response::Malloc { handle })
            }
            Request::Free { handle } => {
                let buf = self.handles.remove(handle).ok_or(format!("unknown handle {handle}"))?;
                self.device.free(buf).map_err(|e| e.to_string())?;
                Ok(Response::Done)
            }
            Request::MemcpyH2D { handle, data, stream } => {
                let buf = self.buffer(*handle)?;
                let t = self.device.memcpy_h2d(buf, data).map_err(|e| e.to_string())?;
                if self.recording {
                    self.records.push(JobRecord {
                        vp: envelope.vp,
                        seq: envelope.seq,
                        sent_at_s: envelope.sent_at_s,
                        kind: RecordKind::H2d { bytes: data.len() as u64, stream: *stream },
                        duration_s: t,
                    });
                }
                Ok(Response::Done)
            }
            Request::MemcpyD2H { handle, len, stream } => {
                let buf = self.buffer(*handle)?;
                if buf.len() != *len {
                    return Err(format!("buffer is {} bytes, requested {len}", buf.len()));
                }
                let mut out = vec![0u8; *len as usize];
                let t = self.device.memcpy_d2h(&mut out, buf).map_err(|e| e.to_string())?;
                if self.recording {
                    self.records.push(JobRecord {
                        vp: envelope.vp,
                        seq: envelope.seq,
                        sent_at_s: envelope.sent_at_s,
                        kind: RecordKind::D2h { bytes: *len, stream: *stream },
                        duration_s: t,
                    });
                }
                Ok(Response::Data { data: out })
            }
            Request::Launch { kernel, grid_dim, block_dim, params, stream, .. } => {
                let program = self.registry.get(kernel).map_err(|e| e.to_string())?;
                let resolved = self.resolve(params)?;
                let cfg = LaunchConfig::linear(*grid_dim, *block_dim);
                let run =
                    self.device.launch(&program, &cfg, &resolved).map_err(|e| e.to_string())?;
                if self.recording {
                    self.records.push(JobRecord {
                        vp: envelope.vp,
                        seq: envelope.seq,
                        sent_at_s: envelope.sent_at_s,
                        kind: RecordKind::Kernel {
                            name: kernel.clone(),
                            grid_dim: *grid_dim,
                            block_dim: *block_dim,
                            launch_overhead_s: self.device.arch().launch_overhead_us * 1e-6,
                            waves: run.cost.waves,
                            stream: *stream,
                        },
                        duration_s: run.cost.time_s,
                    });
                }
                Ok(Response::Launched { device_time_s: run.cost.time_s })
            }
            Request::Synchronize => Ok(Response::Done),
        }
    }

    fn buffer(&self, handle: u64) -> Result<DeviceBuffer, String> {
        self.handles.get(&handle).copied().ok_or(format!("unknown handle {handle}"))
    }

    fn resolve(&self, params: &[WireParam]) -> Result<Vec<ParamValue>, String> {
        params
            .iter()
            .map(|p| match p {
                WireParam::Buffer(h) => self.buffer(*h).map(|b| ParamValue::Ptr(b.addr())),
                WireParam::F64(v) => Ok(ParamValue::F64(*v)),
                WireParam::I64(v) => Ok(ParamValue::I64(*v)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_sptx::asm;

    fn runtime() -> HostRuntime {
        let scale = asm::parse(
            ".kernel scale\nentry:\n    rs r0, gtid\n    ldp r1, 0\n    ld.f32 r2, [r1 + r0]\n    add.f32 r2, r2, r2\n    st.f32 [r1 + r0], r2\n    ret\n",
        )
        .unwrap();
        HostRuntime::new(GpuArch::quadro_4000(), [scale].into_iter().collect())
    }

    fn env(seq: u64, body: Request) -> Envelope {
        Envelope { vp: VpId(0), seq, sent_at_s: 0.0, deadline_s: f64::INFINITY, body }
    }

    #[test]
    fn full_request_cycle() {
        let mut rt = runtime();
        let r = rt.process(&env(0, Request::Malloc { bytes: 64 * 4 }));
        let Response::Malloc { handle } = r.body else { panic!("expected malloc response") };

        let data: Vec<u8> = (0..64u32).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let r = rt.process(&env(1, Request::MemcpyH2D { handle, data, stream: 0 }));
        assert_eq!(r.body, Response::Done);

        let r = rt.process(&env(
            2,
            Request::Launch {
                kernel: "scale".into(),
                grid_dim: 1,
                block_dim: 64,
                params: vec![WireParam::Buffer(handle)],
                sync: true,
                stream: 0,
            },
        ));
        let Response::Launched { device_time_s } = r.body else {
            panic!("expected launch response")
        };
        assert!(device_time_s > 0.0);

        let r = rt.process(&env(3, Request::MemcpyD2H { handle, len: 64 * 4, stream: 0 }));
        let Response::Data { data } = r.body else { panic!("expected data response") };
        assert_eq!(f32::from_le_bytes(data[4..8].try_into().unwrap()), 2.0);

        let r = rt.process(&env(4, Request::Free { handle }));
        assert_eq!(r.body, Response::Done);

        // Three device-touching records: h2d, kernel, d2h.
        assert_eq!(rt.records().len(), 3);
        assert!(matches!(rt.records()[1].kind, RecordKind::Kernel { .. }));
    }

    #[test]
    fn guest_errors_become_error_responses() {
        let mut rt = runtime();
        let r = rt.process(&env(0, Request::Free { handle: 99 }));
        assert!(matches!(r.body, Response::Error { .. }));
        let r = rt.process(&env(
            1,
            Request::Launch {
                kernel: "nope".into(),
                grid_dim: 1,
                block_dim: 1,
                params: vec![],
                sync: true,
                stream: 0,
            },
        ));
        assert!(matches!(r.body, Response::Error { .. }));
    }

    #[test]
    fn handles_are_per_runtime_and_stable() {
        let mut rt = runtime();
        let Response::Malloc { handle: h1 } =
            rt.process(&env(0, Request::Malloc { bytes: 128 })).body
        else {
            panic!()
        };
        let Response::Malloc { handle: h2 } =
            rt.process(&env(1, Request::Malloc { bytes: 128 })).body
        else {
            panic!()
        };
        assert_ne!(h1, h2);
    }

    #[test]
    fn d2h_size_mismatch_is_rejected() {
        let mut rt = runtime();
        let Response::Malloc { handle } = rt.process(&env(0, Request::Malloc { bytes: 64 })).body
        else {
            panic!()
        };
        let r = rt.process(&env(1, Request::MemcpyD2H { handle, len: 128, stream: 0 }));
        assert!(matches!(r.body, Response::Error { .. }));
    }
}
