//! The dispatcher-based live runtime: the full Fig. 2 host-side loop over real
//! transports.
//!
//! Unlike [`threaded`](crate::threaded) (where the host-runtime mutex stands in
//! for the Job Queue), this module runs the paper's architecture literally:
//!
//! * each VP thread talks through a real transport endpoint — frames are
//!   encoded, sent, and decoded on the other side;
//! * a **dispatcher thread** polls every VP endpoint, pushes decoded requests into
//!   the actual [`JobQueue`], *re-orders the pending window* with the scheduling
//!   [`Pipeline`](sigmavp_sched::Pipeline) using expected durations, executes
//!   each job on the device its VP was routed to by the
//!   [`ExecutionSession`](crate::session::ExecutionSession), and sends the
//!   response back;
//! * expected durations come from the device **profiler feedback loop**: the first
//!   launch of a kernel is unknown (duration 0), subsequent launches use the last
//!   observed time — exactly how the paper's Re-scheduler consumes the Profiler's
//!   output ("by using the expected time for each invocation").
//!
//! Because guest calls are synchronous, the pending window holds at most one
//! request per VP — which is precisely why the paper needs VP stop/resume to get
//! deep interleaving; the window reordering here captures what reordering *can*
//! do without it.
//!
//! # Fault tolerance
//!
//! The dispatcher is the supervision point of the fault model (DESIGN.md §10).
//! With [`DispatchedSigmaVp::with_faults`] every VP link is wrapped in a
//! [`FaultyTransport`] that injects the plan's drops, corruption and delays, and
//! the dispatcher injects the plan's transient device errors and honours its
//! scheduled outages. Robustness comes from three cooperating mechanisms:
//!
//! * **request-level retry** — [`RemoteGpu`] retries on receive timeout, corrupt
//!   response, or a `transient:` device error, with exponential backoff and
//!   jitter from the [`Policy`]'s [`RetryPolicy`];
//! * **effect-once dedup** — retries reuse the request's sequence number; the
//!   dispatcher caches the last *executed* response per VP and resends it on a
//!   duplicate instead of re-executing, so a lost response never double-applies
//!   a kernel or memcpy;
//! * **failover** — per-device circuit breakers trip after consecutive
//!   failures; VPs on a dead device are migrated to the least-loaded survivor
//!   by the [`Rebalance`](sigmavp_sched::Rebalance) pass, their device state
//!   reconstructed by replaying the journal of successful mutating requests.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sigmavp_fault::{
    is_transient_error, journal_live_identity, replay_journal, replay_journal_reusing,
    CircuitBreaker, DedupCache, DropNotice, FaultPlan, FaultyTransport, HandleMap, LinkDirection,
    VpJournal, TRANSIENT_ERROR_PREFIX,
};
use sigmavp_gpu::engine::simulate;
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::codec;
use sigmavp_ipc::control::VpControl;
use sigmavp_ipc::message::{Envelope, Request, Response, ResponseEnvelope, VpId, WireParam};
use sigmavp_ipc::queue::{Job, JobId, JobKind, JobQueue};
use sigmavp_ipc::transport::{pair, Transport, TransportCost};
use sigmavp_ipc::IpcError;
use sigmavp_sched::{
    quorum_met, quorum_threshold, DeviceView, LoadRebalance, PassCtx, Pipeline, Policy, Rebalance,
    RetryPolicy,
};
use sigmavp_telemetry::{Lane, TimeDomain};
use sigmavp_vp::error::{
    format_deadline_violation, parse_deadline_violation, DeadlineStage, VpError,
};
use sigmavp_vp::gate::VpGate;
use sigmavp_vp::platform::{SimClock, VirtualPlatform};
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_vp::service::GpuService;
use sigmavp_workloads::app::{AppEnv, Application};

use crate::host::{JobRecord, RecordKind};
use crate::plan::{lower_jobs, EngineEvaluator};
use crate::session::ExecutionSession;
use crate::threaded::{collect_vp_outcomes, ThreadedReport, VpHandle, VpOutcome};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Guest-side [`GpuService`] over a real transport endpoint, with request-level
/// retry.
///
/// Every request carries a stable sequence number that retries *reuse*, so the
/// host can deduplicate: a retry after a lost response gets the cached response
/// back instead of a second execution. Receive timeouts, corrupt response
/// frames, and `transient:` device errors are retried up to
/// [`RetryPolicy::max_attempts`] with exponential backoff and jitter; anything
/// else surfaces as a [`VpError`] preserving the IPC cause.
/// Wall-clock floor on every receive wait; see the comment at its use site.
const WALL_DEADLINE_BACKSTOP: Duration = Duration::from_secs(2);

/// Wall-clock stall backstop for the hung-VP watchdog: if sync launches are
/// parked but no frame has arrived for this long, every unheld VP is presumed
/// wedged and quarantined so the held window can flush. Only consulted when
/// `Policy::hang_windows > 0`; with the watchdog off the dispatcher keeps the
/// original wait-forever lockstep semantics.
const STALL_WALL_BACKSTOP: Duration = Duration::from_millis(500);

struct RemoteGpu {
    vp: VpId,
    transport: Box<dyn Transport>,
    seq: u64,
    /// Shared view of the owning VP's simulated clock; stamps every request's
    /// `sent_at_s` so the host can measure guest-observed queueing delay.
    clock: SimClock,
    retry: RetryPolicy,
    /// Per-request end-to-end deadline budget in simulated microseconds
    /// (`Policy::deadline_us`); 0 disables deadlines and every envelope
    /// carries [`Envelope::NO_DEADLINE`].
    deadline_us: u64,
    /// Jitter source for backoff; seeded per VP (and from the fault plan when
    /// one is active) so runs are reproducible.
    rng: StdRng,
    /// The VP half of the stop/resume protocol: pause points before each
    /// request and inside quiet receive waits, so a dispatcher-held sync
    /// request parks this thread instead of timing it out.
    gate: VpGate,
}

impl RemoteGpu {
    fn round_trip(&mut self, body: Request) -> Result<(Response, f64), VpError> {
        // Scheduling point (Fig. 4b): if the host still holds a stop from the
        // previous sync window, park here before issuing anything new.
        self.gate.pause_point();
        let seq = self.seq;
        self.seq += 1;
        let recorder = sigmavp_telemetry::recorder();
        let sent_wall_s = recorder.wall_now_s();
        let sent = Instant::now();
        // Simulated time spent waiting out timeouts and backoff; folded into the
        // returned delay so the guest clock reflects the recovery cost.
        let mut extra_sim_s = 0.0f64;
        let mut attempts = 0u32;
        let mut last_err = IpcError::Timeout { waited_us: 0 };
        // The request's absolute deadline on the simulated timeline, fixed at
        // birth: retries reuse it, so recovery cost eats into the same budget.
        let birth_s = self.clock.now_s();
        let budget_s = self.deadline_us as f64 * 1e-6;
        let deadline_s =
            if self.deadline_us > 0 { birth_s + budget_s } else { Envelope::NO_DEADLINE };
        loop {
            attempts += 1;
            let envelope = Envelope {
                vp: self.vp,
                seq,
                sent_at_s: self.clock.now_s() + extra_sim_s,
                deadline_s,
                body: body.clone(),
            };
            let frame = codec::encode_request(&envelope);
            let out_delay = self.transport.send(frame).map_err(VpError::Ipc)?;
            // Injected faults time out instantly through the link's
            // DropNotice, so this wall deadline is only a liveness backstop
            // against a genuinely wedged host. It is deliberately far above
            // RetryPolicy::timeout (the *simulated* wait charged to the
            // guest): a starved dispatcher on a loaded CI machine must not be
            // mistaken for a dropped frame, or fault counters stop being
            // reproducible.
            let mut deadline = Instant::now() + self.retry.timeout().max(WALL_DEADLINE_BACKSTOP);
            // `Some` once a frame for *this* request decoded; stale responses
            // (retries answered twice) are discarded without ending the wait.
            let accepted = loop {
                match self.transport.recv_deadline(deadline).map_err(VpError::Ipc)? {
                    Some(resp_frame) => {
                        let back_delay = self.transport.cost().delay_for(resp_frame.len() as u64);
                        match codec::decode_response(&resp_frame) {
                            Ok(decoded) if decoded.seq < seq => {
                                recorder.count("fault.stale_responses", 1);
                                continue;
                            }
                            Ok(decoded) => break Some((decoded, back_delay)),
                            Err(e) => {
                                recorder.count("fault.corrupt_responses", 1);
                                last_err = e;
                                break None;
                            }
                        }
                    }
                    None => {
                        if self.gate.is_stopped() {
                            // The dispatcher is deliberately holding this sync
                            // request in a cross-VP window: silence is not a
                            // fault. Park until resumed, then keep listening
                            // without charging a timeout or a retry.
                            self.gate.pause_point();
                            deadline =
                                Instant::now() + self.retry.timeout().max(WALL_DEADLINE_BACKSTOP);
                            continue;
                        }
                        recorder.count("fault.timeouts", 1);
                        last_err = IpcError::Timeout { waited_us: self.retry.timeout_us };
                        extra_sim_s += self.retry.timeout_s();
                        break None;
                    }
                }
            };
            match accepted {
                Some((decoded, back_delay)) => match decoded.body {
                    Response::Error { message } if is_transient_error(&message) => {
                        if attempts >= self.retry.max_attempts {
                            return Err(VpError::Device(message));
                        }
                    }
                    Response::Error { message } => {
                        // A host-side deadline violation travels as a
                        // structured error string (the dispatcher has no typed
                        // channel); surface it as the typed variant with the
                        // budget/elapsed view this guest actually experienced.
                        if let Some((stage, _, now_s)) = parse_deadline_violation(&message) {
                            return Err(VpError::DeadlineExceeded {
                                stage,
                                budget_s,
                                elapsed_s: (now_s - birth_s).max(0.0),
                            });
                        }
                        return Err(VpError::Device(message));
                    }
                    other => {
                        // The guest-observed round trip, stamped with the job uid
                        // so lifecycle joins can line the envelope send up against
                        // the host-side spans.
                        recorder.span_for_job(
                            TimeDomain::Wall,
                            Lane::Vp(self.vp.0),
                            "request",
                            sent_wall_s,
                            sent.elapsed().as_secs_f64(),
                            sigmavp_telemetry::job_uid(self.vp.0, seq),
                        );
                        return Ok((other, out_delay + back_delay + extra_sim_s));
                    }
                },
                None => {
                    if attempts >= self.retry.max_attempts {
                        return Err(VpError::Ipc(last_err));
                    }
                }
            }
            recorder.count("fault.retries", 1);
            let unit: f64 = self.rng.gen_range(0.0..1.0);
            let backoff = self.retry.backoff_s(attempts, unit);
            extra_sim_s += backoff;
            // Execute boundary: the accumulated recovery cost (timeouts plus
            // backoff, all simulated time) has outlived the request's budget —
            // surface the typed deadline error instead of burning the
            // remaining attempts.
            if birth_s + extra_sim_s > deadline_s {
                recorder.count("liveness.deadline_misses", 1);
                return Err(VpError::DeadlineExceeded {
                    stage: DeadlineStage::Execute,
                    budget_s,
                    elapsed_s: extra_sim_s,
                });
            }
            if backoff > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(backoff.min(0.005)));
            }
        }
    }
}

impl GpuService for RemoteGpu {
    fn malloc(&mut self, bytes: u64) -> Result<(u64, f64), VpError> {
        match self.round_trip(Request::Malloc { bytes })? {
            (Response::Malloc { handle }, delay) => Ok((handle, delay)),
            (other, _) => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn free(&mut self, handle: u64) -> Result<f64, VpError> {
        let (_, delay) = self.round_trip(Request::Free { handle })?;
        Ok(delay)
    }

    fn memcpy_h2d(&mut self, handle: u64, data: &[u8]) -> Result<f64, VpError> {
        let (_, delay) =
            self.round_trip(Request::MemcpyH2D { handle, data: data.to_vec(), stream: 0 })?;
        Ok(delay)
    }

    fn memcpy_d2h(&mut self, handle: u64, out: &mut [u8]) -> Result<f64, VpError> {
        match self.round_trip(Request::MemcpyD2H { handle, len: out.len() as u64, stream: 0 })? {
            (Response::Data { data }, delay) => {
                if data.len() != out.len() {
                    return Err(VpError::SizeMismatch {
                        buffer: data.len() as u64,
                        host: out.len() as u64,
                    });
                }
                out.copy_from_slice(&data);
                Ok(delay)
            }
            (other, _) => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn launch(
        &mut self,
        kernel: &str,
        grid_dim: u32,
        block_dim: u32,
        params: &[WireParam],
        sync: bool,
    ) -> Result<f64, VpError> {
        self.launch_on_stream(0, kernel, grid_dim, block_dim, params, sync)
    }

    fn launch_on_stream(
        &mut self,
        stream: u32,
        kernel: &str,
        grid_dim: u32,
        block_dim: u32,
        params: &[WireParam],
        sync: bool,
    ) -> Result<f64, VpError> {
        match self.round_trip(Request::Launch {
            kernel: kernel.to_string(),
            grid_dim,
            block_dim,
            params: params.to_vec(),
            sync,
            stream,
        })? {
            (Response::Launched { device_time_s }, delay) => {
                Ok(if sync { delay + device_time_s } else { delay })
            }
            (other, _) => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn synchronize(&mut self) -> Result<f64, VpError> {
        let (_, delay) = self.round_trip(Request::Synchronize)?;
        Ok(delay)
    }
}

/// Statistics from one dispatcher run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DispatchStats {
    /// Requests served.
    pub requests: u64,
    /// Reordering passes in which the pending window held more than one job.
    pub multi_job_windows: u64,
    /// Largest pending window observed.
    pub max_window: usize,
    /// Duplicate requests answered from the dedup cache instead of re-executed.
    pub dedup_hits: u64,
    /// VP migrations performed (failover off a dead device or load-triggered).
    pub migrations: u64,
    /// Host GPUs taken out of service (scheduled outage or tripped breaker).
    pub gpu_trips: u64,
    /// Synchronous launches held for a stop/resume window (Fig. 4b).
    pub holds: u64,
    /// Synchronous windows planned and flushed.
    pub sync_windows: u64,
    /// Merge groups the live sync planner found (coalesce plus wave-pack).
    pub live_groups: u64,
    /// Member launches those live groups absorbed.
    pub live_members: u64,
    /// VP stop events issued (0→1 stop-depth edges; one IPC round trip each).
    pub stop_events: u64,
    /// VP resume events issued (1→0 edges).
    pub resume_events: u64,
    /// Wave slots (λ-aligned block quanta) the live merged launches occupied.
    pub wave_slots: u64,
    /// Blocks actually launched into those slots; `wave_slots - wave_filled`
    /// is the Eq. 9 alignment residual, zero for perfectly packed windows.
    pub wave_filled: u64,
    /// Summed Eq. 7 makespan of the executed sync windows under the live plan.
    pub sync_makespan_s: f64,
    /// The same windows priced under the reorder-only (no cross-VP merging)
    /// plan — the async baseline the live path must beat.
    pub sync_reorder_makespan_s: f64,
    /// Partial windows flushed because the hold quorum was met before every
    /// eligible VP was held (`Policy::sync_quorum` below 1.0).
    pub quorum_flushes: u64,
    /// Windows flushed because the sim-time window timeout expired before
    /// any quorum was reached (`Policy::sync_window_timeout`).
    pub timeout_flushes: u64,
    /// Wall-clock stall-backstop trips: every unheld VP went silent while a
    /// window sat held, so the silent VPs were quarantined and the window
    /// released (only armed when the watchdog is on).
    pub backstop_trips: u64,
    /// VPs quarantined by the hung-VP watchdog (removed from the quorum
    /// denominator and failed over to a healthy placement).
    pub quarantined: u64,
    /// Quarantined VPs that showed fresh activity and rejoined the quorum.
    pub rejoins: u64,
    /// Requests refused at the admission, hold, or plan boundary because
    /// their end-to-end deadline had expired (guest-side execute-boundary
    /// misses surface as typed errors, not here).
    pub deadline_misses: u64,
}

/// A live ΣVP system with an explicit dispatcher thread over real transports.
pub struct DispatchedSigmaVp {
    archs: Vec<GpuArch>,
    registry: KernelRegistry,
    cost: TransportCost,
    policy: Policy,
    pending: Vec<(VpId, Box<dyn Application + Send>)>,
    coalescible: HashMap<VpId, bool>,
    next_vp: u32,
    faults: Option<Arc<FaultPlan>>,
}

impl DispatchedSigmaVp {
    /// A system over `archs` host GPUs serving `registry`, with the given
    /// transport cost model for every VP connection. VPs are routed to the
    /// least-loaded device as they spawn.
    ///
    /// # Panics
    ///
    /// Panics if `archs` is empty.
    pub fn new(archs: Vec<GpuArch>, registry: KernelRegistry, cost: TransportCost) -> Self {
        assert!(!archs.is_empty(), "dispatcher runtime needs at least one host gpu");
        DispatchedSigmaVp {
            archs,
            registry,
            cost,
            policy: Policy::Fifo,
            pending: Vec::new(),
            coalescible: HashMap::new(),
            next_vp: 0,
            faults: None,
        }
    }

    /// Single-device convenience constructor (the historical signature's shape).
    pub fn single(arch: GpuArch, registry: KernelRegistry, cost: TransportCost) -> Self {
        Self::new(vec![arch], registry, cost)
    }

    /// Override the scheduling policy (defaults to [`Policy::Fifo`]: earliest-start
    /// window reordering, no coalescing). The pipeline derived from it reorders
    /// the live window and prices the final device timelines.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Inject faults from a deterministic [`FaultPlan`]: every VP link is
    /// wrapped in a [`FaultyTransport`] seeded from the plan, and the
    /// dispatcher honours the plan's device outages and transient errors.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Register an application to run on its own VP thread. Returns the VP id.
    pub fn spawn(&mut self, app: Box<dyn Application + Send>) -> VpId {
        let vp = VpId(self.next_vp);
        self.next_vp += 1;
        self.coalescible.insert(vp, app.characteristics().coalescible);
        self.pending.push((vp, app));
        vp
    }

    /// Launch the VP threads and the dispatcher, wait for completion, and collect
    /// the report plus dispatcher statistics. A VP thread that fails or panics
    /// lands in [`ThreadedReport::failed_vps`] without aborting the fleet.
    ///
    /// # Panics
    ///
    /// Panics if the dispatcher thread itself panics (a bug, not a guest failure).
    pub fn join(self) -> (ThreadedReport, DispatchStats) {
        let mut session = ExecutionSession::new(self.archs, self.registry, self.cost)
            .expect("constructor checked for at least one device");
        session.set_workers(self.policy.workers);
        session.set_tier(self.policy.tier);

        // One transport pair per VP; route each VP to a device up front. With a
        // fault plan active, both ends of the link go through a FaultyTransport
        // carrying that direction's deterministic decision stream.
        let mut host_ends: Vec<(VpId, Box<dyn Transport>)> = Vec::new();
        let mut handles: Vec<VpHandle> = Vec::new();
        let retry = self.policy.retry;
        let deadline_us = self.policy.deadline_us;
        // The stop/resume switchboard, shared by every VP thread and the
        // dispatcher (only exercised when the policy enables sync holds).
        let control = Arc::new(VpControl::new());
        for (vp, app) in self.pending {
            session.assign(vp);
            let (vp_end, host_end) = pair(self.cost);
            let (guest_transport, host_transport): (Box<dyn Transport>, Box<dyn Transport>) =
                match &self.faults {
                    Some(plan) => {
                        // Both ends share a DropNotice so an injected drop (or
                        // an undecodable request) times the guest out in
                        // simulated time immediately — wall-clock scheduling
                        // never decides whether a retry happens.
                        let notice = DropNotice::new();
                        (
                            Box::new(
                                FaultyTransport::new(
                                    vp_end,
                                    plan.link_faults(vp, LinkDirection::GuestToHost),
                                )
                                .with_notice(notice.clone(), true),
                            ),
                            Box::new(
                                FaultyTransport::new(
                                    host_end,
                                    plan.link_faults(vp, LinkDirection::HostToGuest),
                                )
                                .with_notice(notice, false),
                            ),
                        )
                    }
                    None => (Box::new(vp_end), Box::new(host_end)),
                };
            host_ends.push((vp, host_transport));
            let jitter_seed = self.faults.as_ref().map_or(0, |p| p.seed())
                ^ u64::from(vp.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let app_name = app.name().to_string();
            let gate = VpGate::new(control.clone(), vp);
            let handle = std::thread::spawn(move || {
                let mut platform = VirtualPlatform::new(vp);
                let mut service = RemoteGpu {
                    vp,
                    transport: guest_transport,
                    seq: 0,
                    clock: platform.clock_handle(),
                    retry,
                    deadline_us,
                    rng: StdRng::seed_from_u64(jitter_seed),
                    gate,
                };
                let recorder = sigmavp_telemetry::recorder();
                let started_wall_s = recorder.wall_now_s();
                let started = Instant::now();
                let result = {
                    let mut env = AppEnv::new(&mut platform, &mut service);
                    app.run_once(&mut env)
                };
                recorder.span(
                    TimeDomain::Wall,
                    Lane::Vp(vp.0),
                    app.name().to_string(),
                    started_wall_s,
                    started.elapsed().as_secs_f64(),
                );
                let error = result.err();
                let outcome = VpOutcome {
                    vp,
                    app: app.name().to_string(),
                    simulated_time_s: platform.now_s(),
                    gpu_calls: platform.stats().gpu_calls,
                    error: error.as_ref().map(|e| e.to_string()),
                };
                (outcome, error)
            });
            handles.push((vp, app_name, handle));
        }

        let dispatcher = {
            let policy = self.policy;
            let coalescible = self.coalescible;
            let faults = self.faults.clone();
            let control = control.clone();
            std::thread::spawn(move || {
                run_dispatcher(session, host_ends, policy, coalescible, faults, control)
            })
        };

        let (outcomes, failed_vps) = collect_vp_outcomes(handles);
        let (outcome, stats) = dispatcher.join().expect("dispatcher must not panic");
        let report = ThreadedReport {
            outcomes,
            records: outcome.flat_records(),
            device_makespan_s: outcome.makespan_s(),
            device_records: outcome.devices.into_iter().map(|d| d.records).collect(),
            failed_vps,
        };
        (report, stats)
    }
}

/// Trace-span name for a dispatched job.
fn dispatch_span_name(job: &Job) -> String {
    match &job.kind {
        JobKind::CopyIn { bytes } => format!("h2d {bytes}B (VP {})", job.vp.0),
        JobKind::CopyOut { bytes } => format!("d2h {bytes}B (VP {})", job.vp.0),
        JobKind::Kernel { name, .. } => format!("{name} (VP {})", job.vp.0),
    }
}

/// Dispatcher-side supervision state: per-device health, effect-once dedup,
/// and per-VP journals for failover replay.
struct Supervision {
    plan: Option<Arc<FaultPlan>>,
    breakers: Vec<CircuitBreaker>,
    /// Whether each device's trip has already been noticed (counted + marked).
    down_noticed: Vec<bool>,
    /// Attempted operations per device; indexes the plan's transient schedule.
    op_count: Vec<u64>,
    dedup: DedupCache,
    journals: HashMap<VpId, VpJournal>,
    /// Handle translation for migrated VPs (guest handle space → survivor's).
    maps: HashMap<VpId, HandleMap>,
    /// Live handle maps a VP left behind on devices it migrated away from,
    /// keyed by `(vp, device)`. A later relocation *back* replays through
    /// [`replay_journal_reusing`], re-adopting the retained buffers instead of
    /// leaking them and re-mallocing (the §12 fleet fix, applied here).
    visited: HashMap<(VpId, usize), HandleMap>,
    /// Requests currently enqueued but not yet executed, as `(vp, seq)`;
    /// guards against a delayed duplicate being enqueued twice.
    in_flight: HashSet<(u32, u64)>,
}

impl Supervision {
    fn new(plan: Option<Arc<FaultPlan>>, devices: usize) -> Self {
        let threshold = plan
            .as_ref()
            .map_or(sigmavp_fault::plan::DEFAULT_BREAKER_THRESHOLD, |p| p.breaker_threshold());
        Supervision {
            plan,
            breakers: (0..devices).map(|_| CircuitBreaker::new(threshold)).collect(),
            down_noticed: vec![false; devices],
            op_count: vec![0; devices],
            dedup: DedupCache::new(),
            journals: HashMap::new(),
            maps: HashMap::new(),
            visited: HashMap::new(),
            in_flight: HashSet::new(),
        }
    }

    /// Is `device` out of service for a request stamped at `sim_s`?
    fn is_down(&self, session: &ExecutionSession, device: usize, sim_s: f64) -> bool {
        !session.is_healthy(device)
            || self.breakers[device].is_open()
            || self.plan.as_ref().is_some_and(|p| p.device_down(device, sim_s))
    }
}

/// Take `device` out of service (idempotent): mark it unhealthy for routing,
/// trip its breaker, and emit the trip telemetry exactly once.
fn mark_device_down(
    session: &mut ExecutionSession,
    sup: &mut Supervision,
    stats: &mut DispatchStats,
    device: usize,
) {
    if sup.down_noticed[device] {
        return;
    }
    sup.down_noticed[device] = true;
    sup.breakers[device].trip();
    session.mark_down(device);
    stats.gpu_trips += 1;
    let recorder = sigmavp_telemetry::recorder();
    recorder.count("fault.gpu_trips", 1);
    recorder.gauge_set("fault.healthy_gpus", session.healthy_count() as f64);
    if session.healthy_count() <= 1 {
        // Graceful degradation: the fleet continues on a single device.
        recorder.gauge_set("fault.degraded_mode", 1.0);
    }
    // Incident hook: an installed flight recorder dumps a post-mortem here.
    sigmavp_telemetry::bus::publish(&sigmavp_telemetry::bus::ObsEvent::Incident(
        sigmavp_telemetry::bus::Incident {
            kind: sigmavp_telemetry::bus::IncidentKind::BreakerTrip { device },
            wall_s: recorder.wall_now_s(),
            detail: format!(
                "device gpu{device} out of service; {} healthy remain",
                session.healthy_count()
            ),
        },
    ));
}

/// Failover: take `vp`'s current device out of service, then relocate the VP
/// onto `target`.
fn migrate_vp(
    session: &mut ExecutionSession,
    sup: &mut Supervision,
    stats: &mut DispatchStats,
    vp: VpId,
    target: usize,
) {
    let Some(current) = session.device_of(vp) else { return };
    if current == target {
        return;
    }
    mark_device_down(session, sup, stats, current);
    relocate_vp(session, sup, stats, vp, target);
}

/// Move `vp` onto `target` without touching the source device's health (a
/// load-triggered rebalance moves VPs between *live* devices), reconstructing
/// its device state by replaying the journal of successful mutating requests
/// (without re-recording them in the timeline) and installing the resulting
/// handle translation map.
///
/// The map of live handles left behind on the departed device is stashed under
/// `(vp, device)`; a later relocation back to a visited device replays through
/// [`replay_journal_reusing`], re-adopting still-live retained buffers instead
/// of leaking them and allocating fresh ones.
fn relocate_vp(
    session: &mut ExecutionSession,
    sup: &mut Supervision,
    stats: &mut DispatchStats,
    vp: VpId,
    target: usize,
) {
    let Some(current) = session.device_of(vp) else { return };
    if current == target {
        return;
    }
    let recorder = sigmavp_telemetry::recorder();
    let started_wall_s = recorder.wall_now_s();
    let started = Instant::now();
    let journal = sup.journals.entry(vp).or_default();
    let replayed = journal.len() as u64;
    // What this VP leaves behind on `current`: its explicit translation map if
    // it migrated before, else the identity view of its live journal handles.
    let departing = sup.maps.get(&vp).cloned().unwrap_or_else(|| journal_live_identity(journal));
    let retained = sup.visited.remove(&(vp, target));
    let runtime = session.runtime(target);
    let replay = {
        let mut rt = runtime.lock();
        let mut process = |orig_seq: u64, request: &Request| {
            let envelope = Envelope {
                vp,
                seq: u64::MAX,
                sent_at_s: 0.0,
                deadline_s: Envelope::NO_DEADLINE,
                body: request.clone(),
            };
            let op_started_wall_s = recorder.wall_now_s();
            let op_started = Instant::now();
            let body = rt.process_replay(&envelope).body;
            // Stitch the replayed work onto the *original* job's uid so its
            // lifecycle joins into one migration-tagged causal chain.
            recorder.span_for_job(
                TimeDomain::Wall,
                Lane::Dispatcher,
                format!("replay -> gpu{target}"),
                op_started_wall_s,
                op_started.elapsed().as_secs_f64(),
                sigmavp_telemetry::job_uid(vp.0, orig_seq),
            );
            body
        };
        match &retained {
            Some(map) => {
                recorder.count("fault.reuse_migrations", 1);
                replay_journal_reusing(journal, map, &mut process)
            }
            None => replay_journal(journal, &mut process),
        }
    };
    match replay {
        Ok(map) => {
            sup.maps.insert(vp, map);
            recorder.count("fault.replayed_jobs", replayed);
        }
        Err(_) => {
            // The survivor rejected part of the replay; the VP keeps running but
            // requests touching unmapped handles will surface as guest errors.
            recorder.count("fault.replay_failures", 1);
            sup.maps.insert(vp, HandleMap::new());
        }
    }
    sup.visited.insert((vp, current), departing);
    session.reassign(vp, target);
    stats.migrations += 1;
    recorder.count("fault.migrations", 1);
    recorder.span(
        TimeDomain::Wall,
        Lane::Dispatcher,
        format!("migrate VP {} -> gpu{target}", vp.0),
        started_wall_s,
        started.elapsed().as_secs_f64(),
    );
}

/// A synchronous launch the dispatcher is holding while its VP is stopped
/// (Fig. 4b): the reply — and the VP's resume — are deferred until the
/// accumulated cross-VP window flushes.
struct HeldJob {
    job: Job,
    envelope: Envelope,
    arrived: Instant,
    arrived_wall_s: f64,
}

impl HeldJob {
    /// The canonical window-ordering key.
    fn key(&self) -> (u32, u64) {
        (self.job.vp.0, self.envelope.seq)
    }
}

/// Insert a held launch preserving the canonical `(vp, seq)` order, so every
/// window — full or quorum-partial — reads off a sorted prefix and a VP's
/// launches can never interleave out of sequence order across windows.
fn insert_held(held: &mut Vec<HeldJob>, h: HeldJob) {
    let key = h.key();
    let pos = held.partition_point(|x| x.key() < key);
    held.insert(pos, h);
    debug_assert!(held.windows(2).all(|w| w[0].key() < w[1].key()), "held must stay sorted");
}

/// Quarantine `vp`: count it out of the sync-flush quorum, publish a
/// [`VpHung`](sigmavp_telemetry::bus::IncidentKind::VpHung) incident (an
/// installed flight recorder dumps a postmortem bundle on it), and fail the
/// VP's journal over to the least-loaded healthy *other* device through the
/// retained-map replay path — so when (if) the VP wakes, its state is already
/// off the placement it wedged on. The caller owns the quarantine set; this
/// records the side effects.
fn quarantine_vp(
    session: &mut ExecutionSession,
    sup: &mut Supervision,
    stats: &mut DispatchStats,
    vp: VpId,
    device_free_s: &[f64],
    idle_windows: u64,
) {
    let recorder = sigmavp_telemetry::recorder();
    stats.quarantined += 1;
    recorder.count("liveness.quarantined", 1);
    let current = session.device_of(vp);
    sigmavp_telemetry::bus::publish(&sigmavp_telemetry::bus::ObsEvent::Incident(
        sigmavp_telemetry::bus::Incident {
            kind: sigmavp_telemetry::bus::IncidentKind::VpHung { vp: vp.0 },
            wall_s: recorder.wall_now_s(),
            detail: format!(
                "VP {} stopped progressing for {idle_windows} flushed windows on gpu{}; \
                 quarantined out of the sync quorum",
                vp.0,
                current.map_or(-1i64, |d| d as i64),
            ),
        },
    ));
    // Failover: move its journal to the healthiest other device (least
    // simulated backlog, ties to the lowest index). Single-device sessions
    // keep the placement; quarantine still shrinks the quorum.
    if let Some(current) = current {
        let target = (0..session.device_count())
            .filter(|&d| d != current && session.is_healthy(d))
            .min_by(|&a, &b| {
                device_free_s[a]
                    .partial_cmp(&device_free_s[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        if let Some(target) = target {
            relocate_vp(session, sup, stats, vp, target);
            recorder.count("liveness.quarantine_failovers", 1);
        }
    }
}

/// Build and send the structured deadline-violation reply for a request
/// refused at a host-side boundary, and release its in-flight guard.
fn refuse_past_deadline(
    sup: &mut Supervision,
    stats: &mut DispatchStats,
    endpoints: &[(VpId, Box<dyn Transport>)],
    envelope: &Envelope,
    stage: DeadlineStage,
    now_s: f64,
) {
    let recorder = sigmavp_telemetry::recorder();
    stats.deadline_misses += 1;
    recorder.count("liveness.deadline_misses", 1);
    sup.in_flight.remove(&(envelope.vp.0, envelope.seq));
    let response = ResponseEnvelope {
        vp: envelope.vp,
        seq: envelope.seq,
        sent_at_s: envelope.sent_at_s,
        body: Response::Error {
            message: format_deadline_violation(stage, envelope.deadline_s, now_s),
        },
    };
    let frame = codec::encode_response(&response);
    if let Some((_, endpoint)) = endpoints.iter().find(|(v, _)| *v == envelope.vp) {
        let _ = endpoint.send(frame);
    }
}

/// Execute one job end to end — failover safety net, transient injection,
/// handle translation, device dispatch, journaling, dedup storage and profiler
/// feedback — and return its response envelope.
///
/// Every path produces exactly one response; callers differ only in *when*
/// they deliver it (immediately on the async path, at window flush on the
/// sync-hold path). That single-response invariant is what makes the hold
/// protocol deadlock-free under faults: a stopped VP whose device tripped, or
/// that migrated mid-window, still gets a (possibly error) answer and a
/// resume.
#[allow(clippy::too_many_arguments)]
fn execute_job(
    session: &mut ExecutionSession,
    sup: &mut Supervision,
    stats: &mut DispatchStats,
    expected_kernel_s: &mut HashMap<String, f64>,
    job: &Job,
    envelope: &Envelope,
    arrived: Instant,
    arrived_wall_s: f64,
    journal: bool,
) -> ResponseEnvelope {
    let recorder = sigmavp_telemetry::recorder();
    let vp = envelope.vp;
    let sent_at_s = envelope.sent_at_s;
    let mut device = session.device_of(vp).expect("join assigned every vp");
    // Safety net behind the rebalance pass: if the device went down after
    // planning (or the plan saw an earlier timestamp), fail over now — or
    // degrade to an error when no survivor is left.
    if sup.is_down(session, device, sent_at_s) {
        mark_device_down(session, sup, stats, device);
        let survivor = (0..session.device_count())
            .find(|&d| d != device && !sup.is_down(session, d, sent_at_s));
        match survivor {
            Some(target) => {
                migrate_vp(session, sup, stats, vp, target);
                device = target;
            }
            None => {
                recorder.count("fault.no_survivor", 1);
                return ResponseEnvelope {
                    vp,
                    seq: envelope.seq,
                    sent_at_s,
                    body: Response::Error {
                        message: format!("no surviving host gpu: device {device} is down"),
                    },
                };
            }
        }
    }
    // Transient device-error injection: the plan marks attempted operation
    // indexes per device; an injected failure feeds the breaker and is *not*
    // cached, so the guest's retry re-executes.
    let op = sup.op_count[device];
    sup.op_count[device] += 1;
    if sup.plan.as_ref().is_some_and(|p| p.transient_at(device, op)) {
        recorder.count("fault.injected.transient", 1);
        if sup.breakers[device].record_failure() {
            mark_device_down(session, sup, stats, device);
        }
        return ResponseEnvelope {
            vp,
            seq: envelope.seq,
            sent_at_s,
            body: Response::Error {
                message: format!("{TRANSIENT_ERROR_PREFIX} injected device fault"),
            },
        };
    }
    sup.breakers[device].record_success();
    // Migrated VPs keep their original guest handle space; translate through
    // the map built by the journal replay.
    let exec_body = match sup.maps.get(&vp) {
        Some(map) => match map.translate(&envelope.body) {
            Ok(body) => body,
            Err(handle) => {
                return ResponseEnvelope {
                    vp,
                    seq: envelope.seq,
                    sent_at_s,
                    body: Response::Error {
                        message: format!("handle {handle} was lost in failover"),
                    },
                };
            }
        },
        None => envelope.body.clone(),
    };
    let exec_envelope = Envelope {
        vp,
        seq: envelope.seq,
        sent_at_s,
        deadline_s: envelope.deadline_s,
        body: exec_body,
    };
    let runtime = session.runtime(device);
    let exec_started_wall_s = recorder.wall_now_s();
    let exec_started = Instant::now();
    let mut response: ResponseEnvelope = runtime.lock().process(&exec_envelope);
    if let Some(map) = sup.maps.get_mut(&vp) {
        // Keep the guest's handle space stable across the migration: new
        // device handles get virtual guest-side names, frees drop their
        // mapping.
        match (&envelope.body, &mut response.body) {
            (Request::Malloc { .. }, Response::Malloc { handle }) => {
                *handle = map.virtualize(*handle);
            }
            (Request::Free { handle: guest }, Response::Done) => {
                map.remove(*guest);
            }
            _ => {}
        }
    }
    if recorder.enabled() {
        let uid = sigmavp_telemetry::job_uid(vp.0, envelope.seq);
        recorder.span_for_job(
            TimeDomain::Wall,
            Lane::Dispatcher,
            dispatch_span_name(job),
            exec_started_wall_s,
            exec_started.elapsed().as_secs_f64(),
            uid,
        );
        // Queue wait: dispatcher arrival to execution start, on the job-queue
        // lane so the lifecycle join sees the wait phase.
        recorder.span_for_job(
            TimeDomain::Wall,
            Lane::JobQueue,
            dispatch_span_name(job),
            arrived_wall_s,
            (exec_started_wall_s - arrived_wall_s).max(0.0),
            uid,
        );
        // Per-VP request latency: dispatcher arrival to response ready.
        recorder
            .observe_s(&format!("dispatch.vp{}.latency_s", vp.0), arrived.elapsed().as_secs_f64());
    }
    // Journal successful mutating requests (guest handle space) so a later
    // failover or load-triggered relocation can reconstruct device state.
    if journal {
        sup.journals.entry(vp).or_default().record(envelope.seq, &envelope.body, &response.body);
    }
    // Effect-once: remember the executed response for dedup resends.
    sup.dedup.store(&response);
    // Feed the profiler observation back into the expected-time table, and
    // publish it on the observation bus for any live profile store. Guard on
    // (vp, seq): a non-device request leaves an older job as `last()`.
    if let Some(record) = runtime.lock().records().last() {
        if record.vp == vp && record.seq == envelope.seq {
            crate::host::publish_record(session.arch(device), record);
            if let RecordKind::Kernel { name, .. } = &record.kind {
                expected_kernel_s.insert(name.clone(), record.duration_s);
            }
        }
    }
    response
}

/// Synthetic [`JobRecord`] for a held (not yet executed) job, so the live
/// window can be planned with the same engine-model oracle as offline logs.
/// Expected durations stand in for observed ones, and kernels are floored at
/// the launch overhead so a never-profiled launch still prices its fixed cost.
fn synth_record(h: &HeldJob, arch: &GpuArch) -> JobRecord {
    let kind = match &h.job.kind {
        JobKind::CopyIn { bytes } => RecordKind::H2d { bytes: *bytes, stream: 0 },
        JobKind::CopyOut { bytes } => RecordKind::D2h { bytes: *bytes, stream: 0 },
        JobKind::Kernel { name, grid_dim, block_dim } => {
            let bpw = u64::from(arch.blocks_per_wave(*block_dim));
            RecordKind::Kernel {
                name: name.clone(),
                grid_dim: *grid_dim,
                block_dim: *block_dim,
                launch_overhead_s: arch.launch_overhead_us * 1e-6,
                waves: u64::from(*grid_dim).div_ceil(bpw).max(1),
                stream: 0,
            }
        }
    };
    JobRecord {
        vp: h.job.vp,
        seq: h.job.seq,
        kind,
        duration_s: h.job.expected_duration_s,
        sent_at_s: h.envelope.sent_at_s,
    }
}

/// Flush a selected synchronous window (Fig. 4b): rebalance the held VPs
/// across devices (load-triggered moves included), plan each device's slice
/// with the *full* pipeline — the VPs are stopped, so cross-VP coalescing and
/// wave-packing are safe on live traffic — execute the planned jobs, price the
/// window against its reorder-only alternative (Eq. 7), and resume the VPs in
/// planned completion order with their cached responses.
///
/// The caller selects the window (full, quorum-partial, or timeout-forced) and
/// hands it over already in canonical `(vp, seq)` order — the invariant lives
/// at [`insert_held`], so every selection strategy reads off sorted slices.
/// Held launches whose end-to-end deadline expired while waiting are refused
/// here (the `hold` boundary) instead of being planned: their VPs still resume,
/// carrying the structured violation instead of a completion.
#[allow(clippy::too_many_arguments)]
fn flush_sync_window(
    session: &mut ExecutionSession,
    sup: &mut Supervision,
    stats: &mut DispatchStats,
    expected_kernel_s: &mut HashMap<String, f64>,
    control: &VpControl,
    endpoints: &[(VpId, Box<dyn Transport>)],
    pipeline: &Pipeline,
    coalescible: &HashMap<VpId, bool>,
    window: Vec<HeldJob>,
    device_free_s: &mut [f64],
) {
    let recorder = sigmavp_telemetry::recorder();
    let flush_started_wall_s = recorder.wall_now_s();
    let flush_started = Instant::now();
    // Canonical window order is an *insertion* invariant now (`insert_held`):
    // arrival order races between VP threads, so holds are placed by (vp, seq)
    // as they land and every selection below reads off a sorted window.
    assert!(
        window.windows(2).all(|w| w[0].key() < w[1].key()),
        "sync window must arrive in canonical (vp, seq) order"
    );
    stats.sync_windows += 1;
    recorder.count("dispatch.sync.windows", 1);
    recorder.observe_s("dispatch.sync.window_jobs", window.len() as f64);

    // Rebalance over the whole window: down devices drain as in the async
    // path, and the load trigger may move VPs between *live* devices on
    // sustained imbalance.
    let t_now = window.iter().map(|h| h.envelope.sent_at_s).fold(0.0f64, f64::max);
    // Hold-boundary deadline check: anything that expired while parked is
    // refused now, before planning, and resumes with the violation.
    let mut expired: Vec<(VpId, u64, f64, ResponseEnvelope)> = Vec::new();
    let window: Vec<HeldJob> = window
        .into_iter()
        .filter_map(|h| {
            if t_now <= h.envelope.deadline_s {
                return Some(h);
            }
            stats.deadline_misses += 1;
            recorder.count("liveness.deadline_misses", 1);
            let response = ResponseEnvelope {
                vp: h.job.vp,
                seq: h.envelope.seq,
                sent_at_s: h.envelope.sent_at_s,
                body: Response::Error {
                    message: format_deadline_violation(
                        DeadlineStage::Hold,
                        h.envelope.deadline_s,
                        t_now,
                    ),
                },
            };
            expired.push((h.job.vp, h.envelope.seq, h.envelope.sent_at_s, response));
            None
        })
        .collect();
    let migrations = {
        let mut queued = vec![0.0f64; session.device_count()];
        for h in &window {
            if let Some(d) = session.device_of(h.job.vp) {
                queued[d] += h.job.expected_duration_s;
            }
        }
        let route = |vp: VpId| session.device_of(vp);
        let down_for = |d: usize, t: f64| sup.is_down(session, d, t);
        let view = DeviceView {
            queued_s: &queued,
            route: &route,
            down_for: &down_for,
            load: Some(LoadRebalance::DEFAULT),
        };
        let ctx = PassCtx::reorder_only().with_devices(&view);
        Pipeline::new()
            .with_pass(Rebalance)
            .plan(window.iter().map(|h| h.job.clone()).collect(), &ctx)
            .migrations
    };
    for (vp, target) in migrations {
        let Some(current) = session.device_of(vp) else { continue };
        if current == target {
            continue;
        }
        if sup.is_down(session, current, t_now) {
            migrate_vp(session, sup, stats, vp, target);
        } else {
            // Load-triggered: the source device stays in service.
            relocate_vp(session, sup, stats, vp, target);
        }
    }

    // Partition by (post-migration) device, in first-appearance order of the
    // canonical window.
    let mut by_device: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut device_order: Vec<usize> = Vec::new();
    for (i, h) in window.iter().enumerate() {
        let d = session.device_of(h.job.vp).expect("held vp is assigned");
        if !by_device.contains_key(&d) {
            device_order.push(d);
        }
        by_device.entry(d).or_default().push(i);
    }

    let coalescible_fn = |vp: VpId| coalescible.get(&vp).copied().unwrap_or(false);
    // (vp, seq, absolute completion time, response), across all devices —
    // seeded with the deadline-expired refusals so their VPs resume too.
    let mut completions: Vec<(VpId, u64, f64, ResponseEnvelope)> = expired;
    for d in device_order {
        let members = by_device[&d].clone();
        let arch = session.arch(d).clone();
        // Local job ids index the device slice (the lowering contract:
        // `jobs[i].id == JobId(i)` into `records`).
        let local_jobs: Vec<Job> = members
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let mut j = window[w].job.clone();
                j.id = JobId(i as u64);
                j
            })
            .collect();
        let mut records: Vec<JobRecord> =
            members.iter().map(|&w| synth_record(&window[w], &arch)).collect();
        let planned = {
            let evaluator = EngineEvaluator::new(&arch, &records);
            let lanes = |block_dim: u32| arch.blocks_per_wave(block_dim);
            let ctx = PassCtx::new(&coalescible_fn)
                .with_evaluator(&evaluator)
                .with_wave_lanes(&lanes)
                .with_live_sync(true);
            pipeline.plan(local_jobs.clone(), &ctx)
        };

        // Execute every member functionally (coalescing is a *timing* merge;
        // each member still runs on its own buffers), in planned order.
        let mut responses: Vec<(u64, ResponseEnvelope)> = Vec::with_capacity(planned.jobs.len());
        for job in &planned.jobs {
            let h = &window[members[job.id.0 as usize]];
            let response = execute_job(
                session,
                sup,
                stats,
                expected_kernel_s,
                &h.job,
                &h.envelope,
                h.arrived,
                h.arrived_wall_s,
                true,
            );
            // Real observed durations re-price the window below.
            if let Response::Launched { device_time_s } = &response.body {
                records[job.id.0 as usize].duration_s = *device_time_s;
            }
            responses.push((job.id.0, response));
        }

        // Price the executed window (Eq. 7): the live merged plan against the
        // reorder-only plan of the very same jobs — the async baseline.
        let live_tl = simulate(&arch, &lower_jobs(&planned.jobs, &records, &planned.groups, &arch));
        let reorder_stream = pipeline.plan(local_jobs, &PassCtx::reorder_only());
        let reorder_tl = simulate(&arch, &lower_jobs(&reorder_stream.jobs, &records, &[], &arch));
        stats.sync_makespan_s += live_tl.makespan_s;
        stats.sync_reorder_makespan_s += reorder_tl.makespan_s;
        stats.live_groups += planned.groups.len() as u64;
        stats.live_members += planned.merged_members() as u64;
        recorder.observe_s("dispatch.sync.makespan_s", live_tl.makespan_s);
        recorder.observe_s("dispatch.sync.reorder_makespan_s", reorder_tl.makespan_s);
        if !planned.groups.is_empty() {
            recorder.count("dispatch.sync.live_groups", planned.groups.len() as u64);
            recorder.count("dispatch.sync.live_members", planned.merged_members() as u64);
        }
        // Eq. 9 accounting per surviving kernel group: slots = λ-aligned block
        // quanta of the merged grid, filled = blocks actually launched; the
        // difference is the alignment residual.
        let mut anchor_of: HashMap<u64, u64> = HashMap::new();
        for group in &planned.groups {
            for member in &group.dropped {
                anchor_of.insert(member.0, group.anchor.0);
            }
            let geometry: Vec<(u32, u32)> = group
                .member_ids()
                .filter_map(|id| match &window[members[id.0 as usize]].job.kind {
                    JobKind::Kernel { grid_dim, block_dim, .. } => Some((*grid_dim, *block_dim)),
                    _ => None,
                })
                .collect();
            if let Some(&(_, block_dim)) = geometry.first() {
                let total_grid: u64 = geometry.iter().map(|&(g, _)| u64::from(g)).sum();
                let bpw = u64::from(arch.blocks_per_wave(block_dim));
                let slots = total_grid.div_ceil(bpw).max(1) * bpw;
                stats.wave_slots += slots;
                stats.wave_filled += total_grid;
            }
        }

        // Per-VP completion on the shared simulated timeline: the window opens
        // when its last request was stamped (and no earlier than the device's
        // previous window draining), members complete at their op's end — a
        // coalesced-away member at its anchor's.
        let base = window.iter().map(|h| h.envelope.sent_at_s).fold(device_free_s[d], f64::max);
        for (local_id, mut response) in responses {
            let op = anchor_of.get(&local_id).copied().unwrap_or(local_id);
            let end = live_tl.span(op).map_or(live_tl.makespan_s, |s| s.end_s);
            let h = &window[members[local_id as usize]];
            let abs_end = base + end;
            if let Response::Launched { device_time_s } = &mut response.body {
                // Charge the guest its observed completion: queueing behind
                // the window plus its (possibly merged) execution.
                let charge = (abs_end - h.envelope.sent_at_s).max(0.0);
                *device_time_s = charge.max(*device_time_s);
                // Keep the dedup cache consistent with the reply actually sent.
                sup.dedup.store(&response);
            }
            completions.push((h.job.vp, h.envelope.seq, abs_end, response));
        }
        device_free_s[d] = base + live_tl.makespan_s;
    }

    // Resume in planned completion order: the earliest-finishing VP wakes
    // first, exactly as the merged timeline completes (ties by VP id).
    completions.sort_by(|a, b| {
        a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal).then(a.0 .0.cmp(&b.0 .0))
    });
    for (vp, seq, _, response) in completions {
        stats.requests += 1;
        sup.in_flight.remove(&(vp.0, seq));
        let frame = codec::encode_response(&response);
        if let Some((_, endpoint)) = endpoints.iter().find(|(v, _)| *v == vp) {
            let _ = endpoint.send(frame);
        }
        control.resume(vp);
    }
    recorder.span(
        TimeDomain::Wall,
        Lane::Dispatcher,
        format!("sync window ({} jobs)", window.len()),
        flush_started_wall_s,
        flush_started.elapsed().as_secs_f64(),
    );
}

/// The host-side dispatcher loop.
fn run_dispatcher(
    mut session: ExecutionSession,
    mut endpoints: Vec<(VpId, Box<dyn Transport>)>,
    policy: Policy,
    coalescible: HashMap<VpId, bool>,
    faults: Option<Arc<FaultPlan>>,
    control: Arc<VpControl>,
) -> (crate::session::SessionOutcome, DispatchStats) {
    let pipeline = Pipeline::from_policy(&policy);
    let sync_hold = policy.sync_hold;
    let queue = JobQueue::new();
    let mut stats = DispatchStats::default();
    let recorder = sigmavp_telemetry::recorder();
    let mut sup = Supervision::new(faults, session.device_count());
    // Sync windows journal unconditionally: a held VP may be relocated by the
    // load trigger (or fail over) mid-run, and replay needs its history.
    let journal = sup.plan.is_some() || sync_hold;
    // The profiler feedback loop: last observed duration per kernel name.
    let mut expected_kernel_s: HashMap<String, f64> = HashMap::new();
    // Envelopes waiting for execution, keyed by job id, with the wall-clock
    // instant (and collector-relative timestamp) the request arrived at the
    // dispatcher.
    let mut waiting: HashMap<u64, (Envelope, Instant, f64)> = HashMap::new();
    // Held sync launches (at most one per stopped VP) awaiting the window
    // flush, kept in canonical (vp, seq) order by `insert_held`, and the
    // simulated time each device frees up after prior windows.
    let mut held: Vec<HeldJob> = Vec::new();
    let mut device_free_s = vec![0.0f64; session.device_count()];
    // Liveness state. `sim_now` is the max simulated timestamp observed on any
    // arrived envelope — the deterministic clock the window timeout runs on.
    // The watchdog counts flushed windows since each VP's last frame; VPs that
    // fall `hang_windows` behind are quarantined out of the quorum until they
    // speak again. `last_frame` is the wall-clock backstop for the one shape
    // sim-time cannot see: every unheld VP wedged at once, so no frames arrive
    // and no window can flush.
    let quorum_pct = policy.sync_quorum_pct;
    let sync_timeout_s = policy.sync_timeout_s();
    let hang_windows = u64::from(policy.hang_windows);
    let mut quarantined: HashSet<VpId> = HashSet::new();
    let mut last_activity_flush: HashMap<VpId, u64> = HashMap::new();
    let mut flush_count: u64 = 0;
    let mut sim_now: f64 = 0.0;
    let mut last_frame = Instant::now();

    loop {
        // 1. Gather: poll every endpoint once, then triage the frames — corrupt
        //    frames are dropped (the guest retries), duplicates of an executed
        //    request are answered from the dedup cache, duplicates of a pending
        //    request are ignored, the rest are enqueued.
        let mut any = false;
        let mut frames: Vec<(VpId, bytes::Bytes)> = Vec::new();
        endpoints.retain(|(vp, endpoint)| match endpoint.try_recv() {
            Ok(Some(frame)) => {
                any = true;
                frames.push((*vp, frame));
                true
            }
            Ok(None) => true,
            Err(IpcError::Disconnected) => false,
            Err(_) => false,
        });
        for (vp, frame) in frames {
            let Ok(envelope) = codec::decode_request(&frame) else {
                recorder.count("fault.corrupt_frames", 1);
                continue;
            };
            debug_assert_eq!(envelope.vp, vp);
            // Progress bookkeeping: any decoded frame is proof of life. A
            // quarantined VP that speaks again rejoins the quorum — its late
            // launch simply rolls into the next window.
            sim_now = sim_now.max(envelope.sent_at_s);
            last_frame = Instant::now();
            last_activity_flush.insert(vp, flush_count);
            if quarantined.remove(&vp) {
                stats.rejoins += 1;
                recorder.count("liveness.rejoins", 1);
            }
            if let Some(cached) = sup.dedup.lookup(vp, envelope.seq) {
                // Effect-once: this request already executed but its response was
                // lost in flight; resend the cached response without re-executing.
                stats.dedup_hits += 1;
                recorder.count("fault.dedup_hits", 1);
                let resend = codec::encode_response(cached);
                if let Some((_, endpoint)) = endpoints.iter().find(|(v, _)| *v == vp) {
                    let _ = endpoint.send(resend);
                }
                continue;
            }
            if !sup.in_flight.insert((vp.0, envelope.seq)) {
                // A delayed duplicate of a request that is still queued.
                continue;
            }
            // Admission boundary: a request stamped past its own end-to-end
            // deadline (retries eat into the same budget) is refused before it
            // enters any queue.
            if envelope.has_deadline() && envelope.sent_at_s > envelope.deadline_s {
                refuse_past_deadline(
                    &mut sup,
                    &mut stats,
                    &endpoints,
                    &envelope,
                    DeadlineStage::Admission,
                    envelope.sent_at_s,
                );
                continue;
            }
            let id = queue.next_id();
            let kind = match &envelope.body {
                Request::MemcpyH2D { data, .. } => JobKind::CopyIn { bytes: data.len() as u64 },
                Request::MemcpyD2H { len, .. } => JobKind::CopyOut { bytes: *len },
                Request::Launch { kernel, grid_dim, block_dim, .. } => JobKind::Kernel {
                    name: kernel.clone(),
                    grid_dim: *grid_dim,
                    block_dim: *block_dim,
                },
                // Control requests (malloc/free/sync) are cheap; model them as
                // zero-byte copies so they flow through the same queue.
                _ => JobKind::CopyIn { bytes: 0 },
            };
            let device = session.device_of(vp).expect("join assigned every vp");
            let expected = match &kind {
                JobKind::CopyIn { bytes } | JobKind::CopyOut { bytes } => {
                    session.arch(device).copy_time_s(*bytes)
                }
                JobKind::Kernel { name, .. } => {
                    // The profiler feedback loop, observed: a hit means a
                    // previous launch of this kernel already taught the
                    // re-scheduler its expected duration.
                    if let Some(t) = expected_kernel_s.get(name) {
                        recorder.count("profiler.feedback.hits", 1);
                        *t
                    } else {
                        recorder.count("profiler.feedback.misses", 1);
                        0.0
                    }
                }
            };
            let job = Job {
                id,
                vp,
                seq: envelope.seq,
                kind,
                sync: true,
                enqueued_at_s: envelope.sent_at_s,
                expected_duration_s: expected,
            };
            if sync_hold && matches!(&envelope.body, Request::Launch { sync: true, .. }) {
                // Hold the launch and stop its VP (Fig. 4b): the reply is
                // deferred until the cross-VP window flushes. Dedup and
                // in-flight triage already ran above, so a retry of an
                // executed or already-held request never holds twice.
                control.stop(vp);
                stats.holds += 1;
                recorder.count("dispatch.sync.holds", 1);
                let mut job = job;
                // Floor a never-profiled kernel at its launch overhead so the
                // window planner prices the fixed cost a merge would save.
                let floor = session.arch(device).launch_overhead_us * 1e-6;
                job.expected_duration_s = job.expected_duration_s.max(floor);
                insert_held(
                    &mut held,
                    HeldJob {
                        job,
                        envelope,
                        arrived: Instant::now(),
                        arrived_wall_s: recorder.wall_now_s(),
                    },
                );
                continue;
            }
            queue.push(job);
            waiting.insert(id.0, (envelope, Instant::now(), recorder.wall_now_s()));
        }

        // 2. Re-schedule the pending window (the paper's asynchronous reordering,
        //    Fig. 4a) through the shared pipeline — including the rebalance pass,
        //    which sees per-device health and plans migrations off dead GPUs —
        //    then dispatch it.
        let window = queue.drain_all();
        if window.len() > 1 {
            stats.multi_job_windows += 1;
            recorder.count("dispatch.multi_job_windows", 1);
        }
        if !window.is_empty() {
            recorder.count("dispatch.windows", 1);
            recorder.observe_s("dispatch.window_jobs", window.len() as f64);
        }
        stats.max_window = stats.max_window.max(window.len());
        let planned = {
            let mut queued = vec![0.0f64; session.device_count()];
            for job in &window {
                if let Some(d) = session.device_of(job.vp) {
                    queued[d] += job.expected_duration_s;
                }
            }
            let route = |vp: VpId| session.device_of(vp);
            let down_for = |d: usize, t: f64| sup.is_down(&session, d, t);
            let view =
                DeviceView { queued_s: &queued, route: &route, down_for: &down_for, load: None };
            let ctx = PassCtx::reorder_only().with_devices(&view);
            pipeline.plan(window, &ctx)
        };
        for (vp, target) in planned.migrations {
            migrate_vp(&mut session, &mut sup, &mut stats, vp, target);
        }
        for job in planned.jobs {
            let (envelope, arrived, arrived_wall_s) =
                waiting.remove(&job.id.0).expect("every job has an envelope");
            let vp = envelope.vp;
            // Plan boundary: refuse work whose *projected* completion already
            // overshoots its deadline, instead of burning device time on it.
            let projected_s = envelope.sent_at_s + job.expected_duration_s;
            if envelope.has_deadline() && projected_s > envelope.deadline_s {
                refuse_past_deadline(
                    &mut sup,
                    &mut stats,
                    &endpoints,
                    &envelope,
                    DeadlineStage::Plan,
                    projected_s,
                );
                continue;
            }
            let response = execute_job(
                &mut session,
                &mut sup,
                &mut stats,
                &mut expected_kernel_s,
                &job,
                &envelope,
                arrived,
                arrived_wall_s,
                journal,
            );
            stats.requests += 1;
            sup.in_flight.remove(&(vp.0, envelope.seq));
            let frame = codec::encode_response(&response);
            // Find the endpoint; the VP may have just disconnected after an error,
            // in which case the response is dropped.
            if let Some((_, endpoint)) = endpoints.iter().find(|(v, _)| *v == vp) {
                let _ = endpoint.send(frame);
            }
        }

        // 3. Sync window triage, in precedence order:
        //    (a) *full* — every still-connected, non-quarantined VP has a held
        //        launch: the window cannot grow, flush everything. With the
        //        default knobs (quorum 100 %, no timeout, no watchdog) this is
        //        the only branch and reproduces lockstep flushing exactly.
        //        Disconnections and quarantines shrink the quorum, so a lone
        //        survivor still progresses.
        //    (b) *quorum* — a configured fraction < 100 % of eligible VPs is
        //        held: flush exactly the threshold-sized selection with the
        //        earliest (sent_at, vp) stamps — deterministic on simulated
        //        time and starvation-free — and let late arrivals roll into
        //        the next window.
        //    (c) *timeout* — the window has been open longer (in simulated
        //        time) than the configured limit: flush everything held rather
        //        than park VPs behind a straggler indefinitely.
        if sync_hold && !held.is_empty() {
            let eligible = endpoints.iter().filter(|(v, _)| !quarantined.contains(v)).count();
            let full = endpoints
                .iter()
                .filter(|(v, _)| !quarantined.contains(v))
                .all(|(v, _)| held.iter().any(|h| h.job.vp == *v));
            let quorum = !full && quorum_pct < 100 && quorum_met(held.len(), eligible, quorum_pct);
            let window_open_s =
                held.iter().map(|h| h.envelope.sent_at_s).fold(f64::INFINITY, f64::min);
            let timed_out = !full
                && !quorum
                && sync_timeout_s.is_some_and(|limit| sim_now - window_open_s >= limit);
            if full || quorum || timed_out {
                let window: Vec<HeldJob> = if quorum {
                    stats.quorum_flushes += 1;
                    recorder.count("dispatch.sync.quorum_flushes", 1);
                    // Take exactly the quorum threshold, earliest stamps first
                    // (ties by VP id), so no straggler's launch waits forever.
                    let threshold = quorum_threshold(eligible, quorum_pct);
                    let mut order: Vec<usize> = (0..held.len()).collect();
                    order.sort_by(|&a, &b| {
                        held[a]
                            .envelope
                            .sent_at_s
                            .partial_cmp(&held[b].envelope.sent_at_s)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(held[a].key().cmp(&held[b].key()))
                    });
                    order.truncate(threshold);
                    // Removing in descending index order keeps the remaining
                    // indices valid; reversing restores canonical (vp, seq).
                    order.sort_unstable();
                    let mut window = Vec::with_capacity(order.len());
                    for &i in order.iter().rev() {
                        window.push(held.remove(i));
                    }
                    window.reverse();
                    window
                } else {
                    if timed_out {
                        stats.timeout_flushes += 1;
                        recorder.count("dispatch.sync.timeout_flushes", 1);
                    }
                    std::mem::take(&mut held)
                };
                flush_sync_window(
                    &mut session,
                    &mut sup,
                    &mut stats,
                    &mut expected_kernel_s,
                    &control,
                    &endpoints,
                    &pipeline,
                    &coalescible,
                    window,
                    &mut device_free_s,
                );
                flush_count += 1;
                // Watchdog sweep: the fleet just proved it can make progress
                // without the VPs that are neither held nor recently heard
                // from. Any eligible VP `hang_windows` flushes behind is
                // quarantined — removed from the quorum denominator and failed
                // over to a healthy placement.
                if hang_windows > 0 {
                    let hung: Vec<VpId> = endpoints
                        .iter()
                        .map(|(v, _)| *v)
                        .filter(|v| {
                            !quarantined.contains(v)
                                && !held.iter().any(|h| h.job.vp == *v)
                                && flush_count.saturating_sub(
                                    last_activity_flush.get(v).copied().unwrap_or(flush_count),
                                ) >= hang_windows
                        })
                        .collect();
                    for vp in hung {
                        quarantined.insert(vp);
                        quarantine_vp(
                            &mut session,
                            &mut sup,
                            &mut stats,
                            vp,
                            &device_free_s,
                            hang_windows,
                        );
                    }
                }
            }
        }

        if endpoints.is_empty() {
            break;
        }
        if !any {
            // Wall-clock stall backstop (watchdog-gated, so default behavior
            // is untouched): if launches are parked but no frame has arrived
            // for a long wall interval, *every* unheld VP is wedged at once —
            // simulated time is frozen, so neither the quorum nor the timeout
            // can ever fire. Quarantine the silent VPs; the next iteration's
            // full-flush branch then releases the window.
            if sync_hold
                && hang_windows > 0
                && !held.is_empty()
                && last_frame.elapsed() >= STALL_WALL_BACKSTOP
            {
                let stuck: Vec<VpId> = endpoints
                    .iter()
                    .map(|(v, _)| *v)
                    .filter(|v| !quarantined.contains(v) && !held.iter().any(|h| h.job.vp == *v))
                    .collect();
                if !stuck.is_empty() {
                    stats.backstop_trips += 1;
                    recorder.count("liveness.backstop_trips", 1);
                    for vp in stuck {
                        quarantined.insert(vp);
                        quarantine_vp(
                            &mut session,
                            &mut sup,
                            &mut stats,
                            vp,
                            &device_free_s,
                            hang_windows,
                        );
                    }
                }
                last_frame = Instant::now();
            }
            std::thread::yield_now();
        }
    }
    stats.stop_events = control.stop_events();
    stats.resume_events = control.resume_events();
    let outcome =
        session.drain_and_plan(&pipeline, &|vp| coalescible.get(&vp).copied().unwrap_or(false));
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_fault::LinkFaultConfig;
    use sigmavp_workloads::apps::{BlackScholesApp, VectorAddApp};

    #[test]
    fn dispatched_fleet_validates_end_to_end() {
        let app = VectorAddApp { n: 2048 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        );
        for _ in 0..4 {
            sys.spawn(Box::new(VectorAddApp { n: 2048 }));
        }
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.records.len(), 4 * 4); // 2 h2d + kernel + d2h per VP
        assert!(stats.requests >= 4 * 10);
        assert!(report.device_makespan_s > 0.0);
    }

    #[test]
    fn profiler_feedback_fills_expected_times() {
        // With several VPs launching the same kernel repeatedly, later windows hold
        // jobs with non-zero expected durations — visible as multi-job windows
        // being reordered without panics and everything still validating.
        let app = BlackScholesApp { n: 1024, iterations: 4, ..BlackScholesApp::new(1) };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        );
        for _ in 0..4 {
            sys.spawn(Box::new(BlackScholesApp {
                n: 1024,
                iterations: 4,
                ..BlackScholesApp::new(1)
            }));
        }
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        // 4 VPs × (2 h2d + 4 launches + 2 d2h).
        assert_eq!(report.records.len(), 4 * 8);
        assert!(stats.max_window >= 1);
    }

    #[test]
    fn two_host_gpus_split_the_dispatched_fleet() {
        let run = |archs: Vec<GpuArch>| {
            let app = VectorAddApp { n: 2048 };
            let registry: KernelRegistry = app.kernels().into_iter().collect();
            let mut sys = DispatchedSigmaVp::new(archs, registry, TransportCost::shared_memory());
            for _ in 0..6 {
                sys.spawn(Box::new(VectorAddApp { n: 2048 }));
            }
            let (report, _) = sys.join();
            assert!(report.all_ok(), "{:?}", report.outcomes);
            report
        };
        let one = run(vec![GpuArch::quadro_4000()]);
        let two = run(vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()]);
        assert_eq!(one.records.len(), two.records.len());
        assert_eq!(two.device_records.len(), 2);
        // Least-loaded routing spreads six VPs three-and-three, halving each
        // device's log and shrinking the fleet makespan.
        assert!(two.device_records.iter().all(|r| r.len() == 3 * 4));
        let ratio = one.device_makespan_s / two.device_makespan_s;
        assert!(ratio >= 1.5, "makespan ratio {ratio:.2}");
    }

    #[test]
    fn sync_hold_coalesces_a_live_window() {
        let app = VectorAddApp { n: 2048 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(Policy::MultiplexedOptimized.with_sync_hold(true));
        for _ in 0..4 {
            sys.spawn(Box::new(VectorAddApp { n: 2048 }));
        }
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        // One sync launch per VP, all held into a single lockstep window.
        assert_eq!(stats.holds, 4);
        assert_eq!(stats.sync_windows, 1);
        assert_eq!(stats.stop_events, 4);
        assert_eq!(stats.resume_events, 4, "every stopped VP must be resumed");
        // Four identical vector_add launches coalesce live.
        assert!(stats.live_groups >= 1, "{stats:?}");
        assert!(stats.live_members >= 2, "{stats:?}");
        assert!(
            stats.sync_makespan_s < stats.sync_reorder_makespan_s,
            "live plan must beat reorder-only: {} vs {}",
            stats.sync_makespan_s,
            stats.sync_reorder_makespan_s
        );
        // Eq. 9 residual accounting: slots are λ-aligned, never below fill.
        assert!(stats.wave_filled > 0);
        assert!(stats.wave_slots >= stats.wave_filled);
    }

    #[test]
    fn sync_hold_counters_are_reproducible() {
        let run = || {
            let app = BlackScholesApp { n: 1024, iterations: 3, ..BlackScholesApp::new(1) };
            let registry: KernelRegistry = app.kernels().into_iter().collect();
            let mut sys = DispatchedSigmaVp::single(
                GpuArch::quadro_4000(),
                registry,
                TransportCost::shared_memory(),
            )
            .with_policy(Policy::MultiplexedOptimized.with_sync_hold(true));
            for _ in 0..3 {
                sys.spawn(Box::new(BlackScholesApp {
                    n: 1024,
                    iterations: 3,
                    ..BlackScholesApp::new(1)
                }));
            }
            let (report, stats) = sys.join();
            assert!(report.all_ok(), "{:?}", report.outcomes);
            stats
        };
        let a = run();
        let b = run();
        // Windows are lockstep (quorum = every connected VP held), so the
        // whole sync-side ledger — counts and simulated makespans — must be
        // byte-identical run to run; only wall-clock-shaped fields may differ.
        assert_eq!(a.holds, b.holds);
        assert_eq!(a.sync_windows, b.sync_windows);
        assert_eq!(a.live_groups, b.live_groups);
        assert_eq!(a.live_members, b.live_members);
        assert_eq!(a.stop_events, b.stop_events);
        assert_eq!(a.resume_events, b.resume_events);
        assert_eq!(a.wave_slots, b.wave_slots);
        assert_eq!(a.wave_filled, b.wave_filled);
        assert_eq!(a.sync_makespan_s.to_bits(), b.sync_makespan_s.to_bits());
        assert_eq!(a.sync_reorder_makespan_s.to_bits(), b.sync_reorder_makespan_s.to_bits());
        assert!(a.sync_windows >= 3, "one window per lockstep iteration: {a:?}");
    }

    #[test]
    fn sync_hold_survives_a_lossy_delayed_link() {
        // Stop/resume must compose with the PR 4 fault machinery: dropped and
        // delayed frames around a held response resolve through retry + dedup,
        // never by deadlocking a parked VP.
        let app = VectorAddApp { n: 2048 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(Policy::MultiplexedOptimized.with_sync_hold(true))
        .with_faults(FaultPlan::seeded(11).with_link(LinkFaultConfig {
            drop_prob: 0.05,
            corrupt_prob: 0.02,
            delay_prob: 0.2,
            delay_s: 0.002,
        }));
        for _ in 0..4 {
            sys.spawn(Box::new(VectorAddApp { n: 2048 }));
        }
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert!(stats.holds >= 4);
        assert_eq!(stats.stop_events, stats.resume_events, "no VP left parked: {stats:?}");
    }

    #[test]
    fn gpu_trip_while_vps_are_parked_fails_over() {
        // Two devices, two VPs each. Each VectorAdd VP issues 5 ops (3 mallocs
        // + 2 h2d) before its held launch, so device 0's ops 10 and 11 are
        // exactly the two held launches of the first sync window. Making both
        // transient trips the breaker (threshold 2) while the VPs are parked
        // on held responses: they must be resumed with the transient error,
        // retry, migrate to device 1 via journal replay, and still validate.
        let app = VectorAddApp { n: 2048 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(Policy::MultiplexedOptimized.with_sync_hold(true))
        .with_faults(
            FaultPlan::seeded(9).with_transients(0, vec![10, 11]).with_breaker_threshold(2),
        );
        for _ in 0..4 {
            sys.spawn(Box::new(VectorAddApp { n: 2048 }));
        }
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert!(stats.gpu_trips >= 1, "{stats:?}");
        assert!(stats.migrations >= 2, "both device-0 VPs fail over: {stats:?}");
        assert!(stats.holds >= 6, "retried launches are held again: {stats:?}");
        assert_eq!(stats.stop_events, stats.resume_events, "no VP left parked: {stats:?}");
    }

    /// A vector-add guest with configurable wall-clock stalls: `pre_ms` before
    /// its first sync launch (staggers arrival against other VPs), `mid_ms`
    /// between launches (simulates a VP that wedges mid-run and later wakes).
    struct SleepyAdd {
        n: u64,
        pre_ms: u64,
        mid_ms: u64,
        launches: u32,
    }
    impl Application for SleepyAdd {
        fn name(&self) -> &str {
            "sleepyAdd"
        }
        fn kernels(&self) -> Vec<sigmavp_sptx::KernelProgram> {
            vec![sigmavp_workloads::kernels::vector_add()]
        }
        fn characteristics(&self) -> sigmavp_workloads::AppTraits {
            sigmavp_workloads::AppTraits::pure_cuda()
        }
        fn run_once(&self, env: &mut AppEnv<'_>) -> Result<(), VpError> {
            use sigmavp_workloads::app::{download, p, pi, upload};
            let n = self.n;
            let bytes = vec![1u8; (n * 4) as usize];
            let mut cuda = env.cuda();
            let da = upload(&mut cuda, &bytes)?;
            let db = upload(&mut cuda, &bytes)?;
            let dc = cuda.malloc(n * 4)?;
            if self.pre_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.pre_ms));
            }
            for launch in 0..self.launches {
                cuda.launch_sync(
                    "vector_add",
                    n.div_ceil(256) as u32,
                    256,
                    &[p(da), p(db), p(dc), pi(n as i64)],
                )?;
                if self.mid_ms > 0 && launch + 1 < self.launches {
                    std::thread::sleep(Duration::from_millis(self.mid_ms));
                }
            }
            download(&mut cuda, dc)?;
            Ok(())
        }
    }

    /// A guest that only moves bytes — it never launches, so it never holds,
    /// and its steady frame stream is what advances the dispatcher's
    /// deterministic `sim_now` clock past a held window's timeout.
    struct CopiesOnly {
        iterations: u32,
    }
    impl Application for CopiesOnly {
        fn name(&self) -> &str {
            "copiesOnly"
        }
        fn kernels(&self) -> Vec<sigmavp_sptx::KernelProgram> {
            vec![]
        }
        fn characteristics(&self) -> sigmavp_workloads::AppTraits {
            sigmavp_workloads::AppTraits::pure_cuda()
        }
        fn run_once(&self, env: &mut AppEnv<'_>) -> Result<(), VpError> {
            use sigmavp_workloads::app::{download, upload};
            let mut cuda = env.cuda();
            for _ in 0..self.iterations {
                let buf = upload(&mut cuda, &[7u8; 4096])?;
                download(&mut cuda, buf)?;
            }
            Ok(())
        }
    }

    #[test]
    fn quorum_flush_releases_a_partial_window() {
        // Two VPs, quorum 0.5 → threshold 1: the prompt VP's held launch must
        // flush alone, long before the deliberately late VP even arrives.
        let registry: KernelRegistry =
            vec![sigmavp_workloads::kernels::vector_add()].into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(Policy::MultiplexedOptimized.with_sync_hold(true).sync_quorum(0.5));
        sys.spawn(Box::new(SleepyAdd { n: 2048, pre_ms: 0, mid_ms: 0, launches: 1 }));
        sys.spawn(Box::new(SleepyAdd { n: 2048, pre_ms: 60, mid_ms: 0, launches: 1 }));
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert_eq!(stats.holds, 2);
        // Each hold flushed in its own quorum-sized window, exactly once.
        assert_eq!(stats.sync_windows, 2, "{stats:?}");
        assert!(stats.quorum_flushes >= 1, "{stats:?}");
        assert_eq!(stats.stop_events, stats.resume_events, "no VP left parked: {stats:?}");
    }

    #[test]
    fn window_timeout_flushes_without_quorum() {
        // One sync VP held behind a copies-only companion that never holds:
        // the full-quorum predicate can never fire, so only the sim-time
        // window timeout (advanced by the companion's frames) releases it.
        let registry: KernelRegistry =
            vec![sigmavp_workloads::kernels::vector_add()].into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(Policy::MultiplexedOptimized.with_sync_hold(true).with_sync_timeout_us(1));
        sys.spawn(Box::new(SleepyAdd { n: 2048, pre_ms: 0, mid_ms: 0, launches: 1 }));
        sys.spawn(Box::new(CopiesOnly { iterations: 400 }));
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert_eq!(stats.holds, 1);
        assert!(stats.timeout_flushes >= 1, "{stats:?}");
        assert_eq!(stats.stop_events, stats.resume_events, "no VP left parked: {stats:?}");
    }

    #[test]
    fn hung_vp_is_quarantined_and_rejoins() {
        // Three busy VPs iterate sync launches under quorum 0.5 while a fourth
        // wedges for 150 ms between its two launches. The watchdog must
        // quarantine the sleeper (it stops counting toward the quorum and its
        // journal fails over to the other device), then let it rejoin — and
        // finish — when it wakes.
        let registry: KernelRegistry = BlackScholesApp::new(1)
            .kernels()
            .into_iter()
            .chain(std::iter::once(sigmavp_workloads::kernels::vector_add()))
            .collect();
        let mut sys = DispatchedSigmaVp::new(
            vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(
            Policy::MultiplexedOptimized.with_sync_hold(true).sync_quorum(0.5).with_hang_windows(2),
        );
        for _ in 0..3 {
            sys.spawn(Box::new(BlackScholesApp {
                n: 1024,
                iterations: 4,
                ..BlackScholesApp::new(1)
            }));
        }
        sys.spawn(Box::new(SleepyAdd { n: 1024, pre_ms: 0, mid_ms: 150, launches: 2 }));
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert!(stats.quarantined >= 1, "{stats:?}");
        assert!(stats.rejoins >= 1, "the sleeper must rejoin on wake: {stats:?}");
        assert!(stats.migrations >= 1, "quarantine fails the VP over: {stats:?}");
        assert_eq!(stats.stop_events, stats.resume_events, "no VP left parked: {stats:?}");
    }

    #[test]
    fn plan_boundary_refuses_doomed_requests() {
        // A 1 µs budget is below even a zero-byte copy's fixed latency, so the
        // very first projected completion overshoots and the dispatcher
        // refuses at the plan boundary with the typed violation.
        let app = VectorAddApp { n: 2048 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(Policy::MultiplexedOptimized.with_deadline_us(1));
        sys.spawn(Box::new(app));
        let (report, stats) = sys.join();
        let err = report.outcomes[0].error.as_deref().expect("budget must be unmeetable");
        assert!(err.contains("deadline exceeded at plan"), "{err}");
        assert!(stats.deadline_misses >= 1, "{stats:?}");
    }

    #[test]
    fn execute_boundary_charges_recovery_into_the_budget() {
        // A lossy link forces retries whose simulated recovery cost (25 ms
        // receive timeout) dwarfs the 5 ms budget: the guest surfaces the
        // execute-stage violation instead of burning its remaining attempts.
        let app = VectorAddApp { n: 2048 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        )
        .with_policy(Policy::MultiplexedOptimized.with_deadline_us(5_000))
        .with_faults(FaultPlan::seeded(7).with_link(LinkFaultConfig {
            drop_prob: 0.6,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            delay_s: 0.0,
        }));
        sys.spawn(Box::new(app));
        let (report, _) = sys.join();
        let err = report.outcomes[0].error.as_deref().expect("drops must blow the budget");
        assert!(err.contains("deadline exceeded at execute"), "{err}");
    }

    #[test]
    fn guest_errors_propagate_over_the_wire() {
        struct Broken;
        impl Application for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn kernels(&self) -> Vec<sigmavp_sptx::KernelProgram> {
                vec![]
            }
            fn characteristics(&self) -> sigmavp_workloads::AppTraits {
                sigmavp_workloads::AppTraits::pure_cuda()
            }
            fn run_once(&self, env: &mut AppEnv<'_>) -> Result<(), VpError> {
                let mut cuda = env.cuda();
                cuda.launch_sync("missing", 1, 1, &[])?;
                Ok(())
            }
        }
        let app = VectorAddApp { n: 512 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys =
            DispatchedSigmaVp::single(GpuArch::quadro_4000(), registry, TransportCost::socket());
        sys.spawn(Box::new(app));
        sys.spawn(Box::new(Broken));
        let (report, _) = sys.join();
        assert!(report.outcomes[0].error.is_none());
        let err = report.outcomes[1].error.as_deref().expect("broken vp failed");
        assert!(err.contains("missing"), "{err}");
    }
}
