//! The dispatcher-based live runtime: the full Fig. 2 host-side loop over real
//! transports.
//!
//! Unlike [`threaded`](crate::threaded) (where the host-runtime mutex stands in
//! for the Job Queue), this module runs the paper's architecture literally:
//!
//! * each VP thread talks through a real [`ChannelTransport`] endpoint — frames
//!   are encoded, sent, and decoded on the other side;
//! * a **dispatcher thread** polls every VP endpoint, pushes decoded requests into
//!   the actual [`JobQueue`], *re-orders the pending window* with the scheduling
//!   [`Pipeline`](sigmavp_sched::Pipeline) using expected durations, executes
//!   each job on the device its VP was routed to by the
//!   [`ExecutionSession`](crate::session::ExecutionSession), and sends the
//!   response back;
//! * expected durations come from the device **profiler feedback loop**: the first
//!   launch of a kernel is unknown (duration 0), subsequent launches use the last
//!   observed time — exactly how the paper's Re-scheduler consumes the Profiler's
//!   output ("by using the expected time for each invocation").
//!
//! Because guest calls are synchronous, the pending window holds at most one
//! request per VP — which is precisely why the paper needs VP stop/resume to get
//! deep interleaving; the window reordering here captures what reordering *can*
//! do without it.

use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Instant;

use sigmavp_gpu::GpuArch;
use sigmavp_ipc::codec;
use sigmavp_ipc::message::{Request, Response, ResponseEnvelope, VpId, WireParam};
use sigmavp_ipc::queue::{Job, JobKind, JobQueue};
use sigmavp_ipc::transport::{pair, ChannelTransport, Transport, TransportCost};
use sigmavp_ipc::IpcError;
use sigmavp_sched::{PassCtx, Pipeline, Policy};
use sigmavp_telemetry::{Lane, TimeDomain};
use sigmavp_vp::error::VpError;
use sigmavp_vp::platform::{SimClock, VirtualPlatform};
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_vp::service::GpuService;
use sigmavp_workloads::app::{AppEnv, Application};

use crate::host::{JobRecord, RecordKind};
use crate::session::ExecutionSession;
use crate::threaded::{ThreadedReport, VpOutcome};

/// Guest-side [`GpuService`] over a real transport endpoint.
struct RemoteGpu {
    vp: VpId,
    transport: ChannelTransport,
    seq: u64,
    /// Shared view of the owning VP's simulated clock; stamps every request's
    /// `sent_at_s` so the host can measure guest-observed queueing delay.
    clock: SimClock,
}

impl RemoteGpu {
    fn round_trip(&mut self, body: Request) -> Result<(Response, f64), VpError> {
        let envelope = sigmavp_ipc::message::Envelope {
            vp: self.vp,
            seq: self.seq,
            sent_at_s: self.clock.now_s(),
            body,
        };
        self.seq += 1;
        let recorder = sigmavp_telemetry::recorder();
        let sent_wall_s = recorder.wall_now_s();
        let sent = Instant::now();
        let frame = codec::encode_request(&envelope);
        let out_delay = self.transport.send(frame).map_err(|_| VpError::Disconnected)?;
        let resp_frame = self.transport.recv().map_err(|_| VpError::Disconnected)?;
        // The guest-observed round trip, stamped with the job uid so lifecycle
        // joins can line the envelope send up against the host-side spans.
        recorder.span_for_job(
            TimeDomain::Wall,
            Lane::Vp(envelope.vp.0),
            "request",
            sent_wall_s,
            sent.elapsed().as_secs_f64(),
            sigmavp_telemetry::job_uid(envelope.vp.0, envelope.seq),
        );
        let back_delay = self.transport.cost().delay_for(resp_frame.len() as u64);
        let decoded = codec::decode_response(&resp_frame).map_err(|_| VpError::Disconnected)?;
        match decoded.body {
            Response::Error { message } => Err(VpError::Device(message)),
            other => Ok((other, out_delay + back_delay)),
        }
    }
}

impl GpuService for RemoteGpu {
    fn malloc(&mut self, bytes: u64) -> Result<(u64, f64), VpError> {
        match self.round_trip(Request::Malloc { bytes })? {
            (Response::Malloc { handle }, delay) => Ok((handle, delay)),
            (other, _) => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn free(&mut self, handle: u64) -> Result<f64, VpError> {
        let (_, delay) = self.round_trip(Request::Free { handle })?;
        Ok(delay)
    }

    fn memcpy_h2d(&mut self, handle: u64, data: &[u8]) -> Result<f64, VpError> {
        let (_, delay) =
            self.round_trip(Request::MemcpyH2D { handle, data: data.to_vec(), stream: 0 })?;
        Ok(delay)
    }

    fn memcpy_d2h(&mut self, handle: u64, out: &mut [u8]) -> Result<f64, VpError> {
        match self.round_trip(Request::MemcpyD2H { handle, len: out.len() as u64, stream: 0 })? {
            (Response::Data { data }, delay) => {
                if data.len() != out.len() {
                    return Err(VpError::SizeMismatch {
                        buffer: data.len() as u64,
                        host: out.len() as u64,
                    });
                }
                out.copy_from_slice(&data);
                Ok(delay)
            }
            (other, _) => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn launch(
        &mut self,
        kernel: &str,
        grid_dim: u32,
        block_dim: u32,
        params: &[WireParam],
        sync: bool,
    ) -> Result<f64, VpError> {
        self.launch_on_stream(0, kernel, grid_dim, block_dim, params, sync)
    }

    fn launch_on_stream(
        &mut self,
        stream: u32,
        kernel: &str,
        grid_dim: u32,
        block_dim: u32,
        params: &[WireParam],
        sync: bool,
    ) -> Result<f64, VpError> {
        match self.round_trip(Request::Launch {
            kernel: kernel.to_string(),
            grid_dim,
            block_dim,
            params: params.to_vec(),
            sync,
            stream,
        })? {
            (Response::Launched { device_time_s }, delay) => {
                Ok(if sync { delay + device_time_s } else { delay })
            }
            (other, _) => Err(VpError::Device(format!("unexpected response {other:?}"))),
        }
    }

    fn synchronize(&mut self) -> Result<f64, VpError> {
        let (_, delay) = self.round_trip(Request::Synchronize)?;
        Ok(delay)
    }
}

/// Statistics from one dispatcher run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchStats {
    /// Requests served.
    pub requests: u64,
    /// Reordering passes in which the pending window held more than one job.
    pub multi_job_windows: u64,
    /// Largest pending window observed.
    pub max_window: usize,
}

/// A live ΣVP system with an explicit dispatcher thread over real transports.
pub struct DispatchedSigmaVp {
    archs: Vec<GpuArch>,
    registry: KernelRegistry,
    cost: TransportCost,
    policy: Policy,
    pending: Vec<(VpId, Box<dyn Application + Send>)>,
    coalescible: HashMap<VpId, bool>,
    next_vp: u32,
}

impl DispatchedSigmaVp {
    /// A system over `archs` host GPUs serving `registry`, with the given
    /// transport cost model for every VP connection. VPs are routed to the
    /// least-loaded device as they spawn.
    ///
    /// # Panics
    ///
    /// Panics if `archs` is empty.
    pub fn new(archs: Vec<GpuArch>, registry: KernelRegistry, cost: TransportCost) -> Self {
        assert!(!archs.is_empty(), "dispatcher runtime needs at least one host gpu");
        DispatchedSigmaVp {
            archs,
            registry,
            cost,
            policy: Policy::Fifo,
            pending: Vec::new(),
            coalescible: HashMap::new(),
            next_vp: 0,
        }
    }

    /// Single-device convenience constructor (the historical signature's shape).
    pub fn single(arch: GpuArch, registry: KernelRegistry, cost: TransportCost) -> Self {
        Self::new(vec![arch], registry, cost)
    }

    /// Override the scheduling policy (defaults to [`Policy::Fifo`]: earliest-start
    /// window reordering, no coalescing). The pipeline derived from it reorders
    /// the live window and prices the final device timelines.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Register an application to run on its own VP thread. Returns the VP id.
    pub fn spawn(&mut self, app: Box<dyn Application + Send>) -> VpId {
        let vp = VpId(self.next_vp);
        self.next_vp += 1;
        self.coalescible.insert(vp, app.characteristics().coalescible);
        self.pending.push((vp, app));
        vp
    }

    /// Launch the VP threads and the dispatcher, wait for completion, and collect
    /// the report plus dispatcher statistics.
    ///
    /// # Panics
    ///
    /// Panics if a VP thread or the dispatcher panics (bugs, not guest failures).
    pub fn join(self) -> (ThreadedReport, DispatchStats) {
        let mut session = ExecutionSession::new(self.archs, self.registry, self.cost)
            .expect("constructor checked for at least one device");

        // One transport pair per VP; route each VP to a device up front.
        let mut host_ends: Vec<(VpId, ChannelTransport)> = Vec::new();
        let mut handles: Vec<JoinHandle<VpOutcome>> = Vec::new();
        for (vp, app) in self.pending {
            session.assign(vp);
            let (vp_end, host_end) = pair(self.cost);
            host_ends.push((vp, host_end));
            handles.push(std::thread::spawn(move || {
                let mut platform = VirtualPlatform::new(vp);
                let mut service =
                    RemoteGpu { vp, transport: vp_end, seq: 0, clock: platform.clock_handle() };
                let recorder = sigmavp_telemetry::recorder();
                let started_wall_s = recorder.wall_now_s();
                let started = Instant::now();
                let result = {
                    let mut env = AppEnv::new(&mut platform, &mut service);
                    app.run_once(&mut env)
                };
                recorder.span(
                    TimeDomain::Wall,
                    Lane::Vp(vp.0),
                    app.name().to_string(),
                    started_wall_s,
                    started.elapsed().as_secs_f64(),
                );
                VpOutcome {
                    vp,
                    app: app.name().to_string(),
                    simulated_time_s: platform.now_s(),
                    gpu_calls: platform.stats().gpu_calls,
                    error: result.err().map(|e| e.to_string()),
                }
            }));
        }

        let dispatcher = {
            let pipeline = Pipeline::from_policy(&self.policy);
            let coalescible = self.coalescible;
            std::thread::spawn(move || run_dispatcher(session, host_ends, pipeline, coalescible))
        };

        let mut outcomes: Vec<VpOutcome> =
            handles.into_iter().map(|h| h.join().expect("vp thread must not panic")).collect();
        outcomes.sort_by_key(|o| o.vp);
        let (outcome, stats) = dispatcher.join().expect("dispatcher must not panic");
        let report = ThreadedReport {
            outcomes,
            records: outcome.flat_records(),
            device_makespan_s: outcome.makespan_s(),
            device_records: outcome.devices.into_iter().map(|d| d.records).collect(),
        };
        (report, stats)
    }
}

/// Trace-span name for a dispatched job.
fn dispatch_span_name(job: &Job) -> String {
    match &job.kind {
        JobKind::CopyIn { bytes } => format!("h2d {bytes}B (VP {})", job.vp.0),
        JobKind::CopyOut { bytes } => format!("d2h {bytes}B (VP {})", job.vp.0),
        JobKind::Kernel { name, .. } => format!("{name} (VP {})", job.vp.0),
    }
}

/// The host-side dispatcher loop.
fn run_dispatcher(
    mut session: ExecutionSession,
    mut endpoints: Vec<(VpId, ChannelTransport)>,
    pipeline: Pipeline,
    coalescible: HashMap<VpId, bool>,
) -> (crate::session::SessionOutcome, DispatchStats) {
    let queue = JobQueue::new();
    let mut stats = DispatchStats::default();
    let recorder = sigmavp_telemetry::recorder();
    // The window is a live reorder: coalescing decisions happen post-hoc in the
    // session plan, not on in-flight synchronous requests.
    let window_ctx = PassCtx::reorder_only();
    // The profiler feedback loop: last observed duration per kernel name.
    let mut expected_kernel_s: HashMap<String, f64> = HashMap::new();
    // Envelopes waiting for execution, keyed by job id, with the wall-clock
    // instant (and collector-relative timestamp) the request arrived at the
    // dispatcher.
    let mut waiting: HashMap<u64, (sigmavp_ipc::message::Envelope, Instant, f64)> = HashMap::new();

    loop {
        // 1. Gather: poll every endpoint once; enqueue decoded requests.
        let mut any = false;
        endpoints.retain(|(vp, endpoint)| match endpoint.try_recv() {
            Ok(Some(frame)) => {
                any = true;
                let envelope = codec::decode_request(&frame).expect("vp sends valid frames");
                debug_assert_eq!(envelope.vp, *vp);
                let id = queue.next_id();
                let kind = match &envelope.body {
                    Request::MemcpyH2D { data, .. } => JobKind::CopyIn { bytes: data.len() as u64 },
                    Request::MemcpyD2H { len, .. } => JobKind::CopyOut { bytes: *len },
                    Request::Launch { kernel, grid_dim, block_dim, .. } => JobKind::Kernel {
                        name: kernel.clone(),
                        grid_dim: *grid_dim,
                        block_dim: *block_dim,
                    },
                    // Control requests (malloc/free/sync) are cheap; model them as
                    // zero-byte copies so they flow through the same queue.
                    _ => JobKind::CopyIn { bytes: 0 },
                };
                let device = session.device_of(*vp).expect("join assigned every vp");
                let expected = match &kind {
                    JobKind::CopyIn { bytes } | JobKind::CopyOut { bytes } => {
                        session.arch(device).copy_time_s(*bytes)
                    }
                    JobKind::Kernel { name, .. } => {
                        // The profiler feedback loop, observed: a hit means a
                        // previous launch of this kernel already taught the
                        // re-scheduler its expected duration.
                        if let Some(t) = expected_kernel_s.get(name) {
                            recorder.count("profiler.feedback.hits", 1);
                            *t
                        } else {
                            recorder.count("profiler.feedback.misses", 1);
                            0.0
                        }
                    }
                };
                queue.push(Job {
                    id,
                    vp: *vp,
                    seq: envelope.seq,
                    kind,
                    sync: true,
                    enqueued_at_s: envelope.sent_at_s,
                    expected_duration_s: expected,
                });
                waiting.insert(id.0, (envelope, Instant::now(), recorder.wall_now_s()));
                true
            }
            Ok(None) => true,
            Err(IpcError::Disconnected) => false,
            Err(_) => false,
        });

        // 2. Re-schedule the pending window (the paper's asynchronous reordering,
        //    Fig. 4a) through the shared pipeline and dispatch it.
        let window = queue.drain_all();
        if window.len() > 1 {
            stats.multi_job_windows += 1;
            recorder.count("dispatch.multi_job_windows", 1);
        }
        if !window.is_empty() {
            recorder.count("dispatch.windows", 1);
            recorder.observe_s("dispatch.window_jobs", window.len() as f64);
        }
        stats.max_window = stats.max_window.max(window.len());
        for job in pipeline.plan(window, &window_ctx).jobs {
            let (envelope, arrived, arrived_wall_s) =
                waiting.remove(&job.id.0).expect("every job has an envelope");
            let device = session.device_of(envelope.vp).expect("join assigned every vp");
            let runtime = session.runtime(device);
            let exec_started_wall_s = recorder.wall_now_s();
            let exec_started = Instant::now();
            let response: ResponseEnvelope = runtime.lock().process(&envelope);
            if recorder.enabled() {
                let uid = sigmavp_telemetry::job_uid(envelope.vp.0, envelope.seq);
                recorder.span_for_job(
                    TimeDomain::Wall,
                    Lane::Dispatcher,
                    dispatch_span_name(&job),
                    exec_started_wall_s,
                    exec_started.elapsed().as_secs_f64(),
                    uid,
                );
                // Queue wait: dispatcher arrival to execution start, on the
                // job-queue lane so the lifecycle join sees the wait phase.
                recorder.span_for_job(
                    TimeDomain::Wall,
                    Lane::JobQueue,
                    dispatch_span_name(&job),
                    arrived_wall_s,
                    (exec_started_wall_s - arrived_wall_s).max(0.0),
                    uid,
                );
                // Per-VP request latency: dispatcher arrival to response ready.
                recorder.observe_s(
                    &format!("dispatch.vp{}.latency_s", envelope.vp.0),
                    arrived.elapsed().as_secs_f64(),
                );
            }
            // Feed the profiler observation back into the expected-time table.
            if let Some(JobRecord { kind: RecordKind::Kernel { name, .. }, duration_s, .. }) =
                runtime.lock().records().last()
            {
                expected_kernel_s.insert(name.clone(), *duration_s);
            }
            stats.requests += 1;
            let frame = codec::encode_response(&response);
            // Find the endpoint; the VP may have just disconnected after an error,
            // in which case the response is dropped.
            if let Some((_, endpoint)) = endpoints.iter().find(|(vp, _)| *vp == envelope.vp) {
                let _ = endpoint.send(frame);
            }
        }

        if endpoints.is_empty() {
            break;
        }
        if !any {
            std::thread::yield_now();
        }
    }
    let outcome =
        session.drain_and_plan(&pipeline, &|vp| coalescible.get(&vp).copied().unwrap_or(false));
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_workloads::apps::{BlackScholesApp, VectorAddApp};

    #[test]
    fn dispatched_fleet_validates_end_to_end() {
        let app = VectorAddApp { n: 2048 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        );
        for _ in 0..4 {
            sys.spawn(Box::new(VectorAddApp { n: 2048 }));
        }
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.records.len(), 4 * 4); // 2 h2d + kernel + d2h per VP
        assert!(stats.requests >= 4 * 10);
        assert!(report.device_makespan_s > 0.0);
    }

    #[test]
    fn profiler_feedback_fills_expected_times() {
        // With several VPs launching the same kernel repeatedly, later windows hold
        // jobs with non-zero expected durations — visible as multi-job windows
        // being reordered without panics and everything still validating.
        let app = BlackScholesApp { n: 1024, iterations: 4, ..BlackScholesApp::new(1) };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys = DispatchedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
        );
        for _ in 0..4 {
            sys.spawn(Box::new(BlackScholesApp {
                n: 1024,
                iterations: 4,
                ..BlackScholesApp::new(1)
            }));
        }
        let (report, stats) = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        // 4 VPs × (2 h2d + 4 launches + 2 d2h).
        assert_eq!(report.records.len(), 4 * 8);
        assert!(stats.max_window >= 1);
    }

    #[test]
    fn two_host_gpus_split_the_dispatched_fleet() {
        let run = |archs: Vec<GpuArch>| {
            let app = VectorAddApp { n: 2048 };
            let registry: KernelRegistry = app.kernels().into_iter().collect();
            let mut sys = DispatchedSigmaVp::new(archs, registry, TransportCost::shared_memory());
            for _ in 0..6 {
                sys.spawn(Box::new(VectorAddApp { n: 2048 }));
            }
            let (report, _) = sys.join();
            assert!(report.all_ok(), "{:?}", report.outcomes);
            report
        };
        let one = run(vec![GpuArch::quadro_4000()]);
        let two = run(vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()]);
        assert_eq!(one.records.len(), two.records.len());
        assert_eq!(two.device_records.len(), 2);
        // Least-loaded routing spreads six VPs three-and-three, halving each
        // device's log and shrinking the fleet makespan.
        assert!(two.device_records.iter().all(|r| r.len() == 3 * 4));
        let ratio = one.device_makespan_s / two.device_makespan_s;
        assert!(ratio >= 1.5, "makespan ratio {ratio:.2}");
    }

    #[test]
    fn guest_errors_propagate_over_the_wire() {
        struct Broken;
        impl Application for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn kernels(&self) -> Vec<sigmavp_sptx::KernelProgram> {
                vec![]
            }
            fn characteristics(&self) -> sigmavp_workloads::AppTraits {
                sigmavp_workloads::AppTraits::pure_cuda()
            }
            fn run_once(&self, env: &mut AppEnv<'_>) -> Result<(), VpError> {
                let mut cuda = env.cuda();
                cuda.launch_sync("missing", 1, 1, &[])?;
                Ok(())
            }
        }
        let app = VectorAddApp { n: 512 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        let mut sys =
            DispatchedSigmaVp::single(GpuArch::quadro_4000(), registry, TransportCost::socket());
        sys.spawn(Box::new(app));
        sys.spawn(Box::new(Broken));
        let (report, _) = sys.join();
        assert!(report.outcomes[0].error.is_none());
        let err = report.outcomes[1].error.as_deref().expect("broken vp failed");
        assert!(err.contains("missing"), "{err}");
    }
}
