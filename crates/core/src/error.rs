//! Top-level error type.

use std::fmt;

use sigmavp_gpu::GpuError;
use sigmavp_ipc::IpcError;
use sigmavp_vp::VpError;

/// Any failure while running a ΣVP simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SigmaVpError {
    /// A guest-side (VP/application) failure, including validation failures.
    Vp(VpError),
    /// A host-GPU failure.
    Gpu(GpuError),
    /// An IPC failure (codec or transport).
    Ipc(IpcError),
    /// Scenario configuration problem (no VPs, mismatched kernels, …).
    Config(String),
    /// Every host GPU in the session has been marked down, so strict routing
    /// (`try_assign`) has nowhere healthy to place a VP.
    AllDevicesDown,
}

impl fmt::Display for SigmaVpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigmaVpError::Vp(e) => write!(f, "virtual platform error: {e}"),
            SigmaVpError::Gpu(e) => write!(f, "host gpu error: {e}"),
            SigmaVpError::Ipc(e) => write!(f, "ipc error: {e}"),
            SigmaVpError::Config(msg) => write!(f, "scenario configuration error: {msg}"),
            SigmaVpError::AllDevicesDown => {
                write!(f, "every host gpu in the session is marked down")
            }
        }
    }
}

impl std::error::Error for SigmaVpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SigmaVpError::Vp(e) => Some(e),
            SigmaVpError::Gpu(e) => Some(e),
            SigmaVpError::Ipc(e) => Some(e),
            SigmaVpError::Config(_) | SigmaVpError::AllDevicesDown => None,
        }
    }
}

impl From<VpError> for SigmaVpError {
    fn from(e: VpError) -> Self {
        SigmaVpError::Vp(e)
    }
}

impl From<GpuError> for SigmaVpError {
    fn from(e: GpuError) -> Self {
        SigmaVpError::Gpu(e)
    }
}

impl From<IpcError> for SigmaVpError {
    fn from(e: IpcError) -> Self {
        SigmaVpError::Ipc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_and_chains() {
        let e = SigmaVpError::from(VpError::UnknownKernel("k".into()));
        assert!(e.to_string().contains('k'));
        assert!(e.source().is_some());
        let c = SigmaVpError::Config("no vps".into());
        assert!(c.source().is_none());
    }
}
