//! Multi-VP scenarios: run N virtual platforms through complete applications and
//! price the simulation in the paper's three configurations.
//!
//! The paper's Fig. 11 compares, for eight concurrent VP instances of each
//! benchmark: (1) GPU emulation on the VP, (2) plain host-GPU multiplexing, and
//! (3) multiplexing plus Kernel Interleaving and Kernel Coalescing. This module
//! reproduces that comparison:
//!
//! * Every VP **functionally executes** its application (inputs generated, kernels
//!   run, outputs validated) over the chosen backend; nothing is faked at the data
//!   level.
//! * **Timing** composes three ingredients: per-VP *non-GPU* simulated time
//!   (guest CPU work, file I/O, software OpenGL — VPs run on separate host cores,
//!   so these overlap and only the maximum counts), per-VP *IPC* time, and the
//!   host-GPU *timeline makespan* of the recorded job stream, replayed through the
//!   two-engine [`engine`](sigmavp_gpu::engine) model.
//! * Planning is **not** done here: the recorded job stream flows through the
//!   shared scheduling [`Pipeline`](sigmavp_sched::Pipeline) (derived from the
//!   run's [`Policy`]) and the [`ExecutionSession`] owns the device set — the
//!   same spine the live runtimes drive. Under
//!   [`Policy::MultiplexedOptimized`], that pipeline interleaves the stream
//!   (Fig. 4a) and merges matching kernels across VPs (Fig. 5), keeping the
//!   merged plan only when the engine model prices it faster.

use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_sched::{BackendKind, Pipeline, Policy};
use sigmavp_vp::emulation::EmulatedGpu;
use sigmavp_vp::platform::VirtualPlatform;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::{AppEnv, Application};

use crate::error::SigmaVpError;
use crate::session::ExecutionSession;

/// Legacy name of the scenario backend configuration, now unified with the
/// threaded runtime's scheduling policy into [`Policy`].
#[deprecated(
    since = "0.2.0",
    note = "use `sigmavp_sched::Policy` (re-exported as `sigmavp::Policy`)"
)]
pub type GpuMode = Policy;

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The policy that ran.
    pub mode: Policy,
    /// Number of VP instances.
    pub n_vps: usize,
    /// Total simulated time to complete all VPs, seconds.
    pub total_time_s: f64,
    /// Per-VP local simulated times (including time blocked on the GPU service).
    pub vp_times_s: Vec<f64>,
    /// Maximum per-VP non-GPU simulated time.
    pub non_gpu_time_s: f64,
    /// Maximum per-VP IPC transport time (zero for emulation).
    pub ipc_time_s: f64,
    /// Host-GPU timeline makespan — the slowest device for multi-GPU sessions
    /// (zero for emulation).
    pub device_makespan_s: f64,
    /// Device-touching jobs dispatched (zero for emulation).
    pub gpu_jobs: usize,
    /// Kernel groups merged by coalescing.
    pub coalesced_groups: usize,
    /// Total member launches those groups absorbed.
    pub coalesced_members: usize,
    /// Compute-engine utilization of the timeline (zero for emulation).
    pub compute_utilization: f64,
}

impl ScenarioReport {
    /// Speedup of this run relative to a baseline run (typically emulation).
    pub fn speedup_vs(&self, baseline: &ScenarioReport) -> f64 {
        baseline.total_time_s / self.total_time_s
    }
}

/// Run `apps` (one per VP) under the given policy on the default host GPU
/// (Quadro 4000) over a shared-memory transport.
///
/// # Errors
///
/// Returns [`SigmaVpError::Config`] for an empty app list, or any application /
/// backend failure (including output-validation failures).
pub fn run_scenario(
    apps: &[&dyn Application],
    mode: Policy,
) -> Result<ScenarioReport, SigmaVpError> {
    run_scenario_with(apps, mode, GpuArch::quadro_4000(), TransportCost::shared_memory())
}

/// Multi-GPU multiplexing: the paper's framework "multiplexes the host GPUs" —
/// hosts with several devices spread the VPs across them. The
/// [`ExecutionSession`] routes each VP to the least-loaded device (round-robin
/// for sequential arrivals); each device runs its own timeline, and the
/// scenario completes when the slowest device (plus the slowest VP's non-GPU
/// work) does.
///
/// # Errors
///
/// Returns [`SigmaVpError::Config`] for an empty app or device list, or any
/// application/backend failure.
pub fn run_scenario_multi_gpu(
    apps: &[&dyn Application],
    mode: Policy,
    archs: &[GpuArch],
    transport: TransportCost,
) -> Result<ScenarioReport, SigmaVpError> {
    if archs.is_empty() {
        return Err(SigmaVpError::Config("need at least one host gpu".into()));
    }
    if apps.is_empty() {
        return Err(SigmaVpError::Config("scenario needs at least one vp".into()));
    }
    match mode.backend {
        BackendKind::EmulatedOnVp => run_emulated(apps, mode),
        BackendKind::Multiplexed => run_multiplexed(apps, mode, archs, transport),
    }
}

/// [`run_scenario`] with explicit host-GPU architecture and transport cost.
///
/// # Errors
///
/// See [`run_scenario`].
pub fn run_scenario_with(
    apps: &[&dyn Application],
    mode: Policy,
    arch: GpuArch,
    transport: TransportCost,
) -> Result<ScenarioReport, SigmaVpError> {
    run_scenario_multi_gpu(apps, mode, &[arch], transport)
}

fn union_registry(apps: &[&dyn Application]) -> KernelRegistry {
    apps.iter().flat_map(|a| a.kernels()).collect()
}

fn run_emulated(apps: &[&dyn Application], mode: Policy) -> Result<ScenarioReport, SigmaVpError> {
    let registry = union_registry(apps);
    let mut vp_times = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let mut vp = VirtualPlatform::new(VpId(i as u32));
        let mut gpu = EmulatedGpu::on_vp(registry.clone());
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        vp_times.push(vp.now_s());
    }
    // Each VP simulates on its own host core; the scenario completes when the
    // slowest VP does.
    let total = vp_times.iter().copied().fold(0.0, f64::max);
    Ok(ScenarioReport {
        mode,
        n_vps: apps.len(),
        total_time_s: total,
        vp_times_s: vp_times,
        non_gpu_time_s: total,
        ipc_time_s: 0.0,
        device_makespan_s: 0.0,
        gpu_jobs: 0,
        coalesced_groups: 0,
        coalesced_members: 0,
        compute_utilization: 0.0,
    })
}

fn run_multiplexed(
    apps: &[&dyn Application],
    mode: Policy,
    archs: &[GpuArch],
    transport: TransportCost,
) -> Result<ScenarioReport, SigmaVpError> {
    let registry = union_registry(apps);
    let mut session = ExecutionSession::new(archs.to_vec(), registry, transport)?;
    session.set_workers(mode.workers);
    session.set_tier(mode.tier);

    let mut vp_times = Vec::with_capacity(apps.len());
    let mut non_gpu = Vec::with_capacity(apps.len());
    let mut ipc = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let mut vp = VirtualPlatform::new(VpId(i as u32));
        let mut gpu = session.connect(VpId(i as u32));
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        vp_times.push(vp.now_s());
        non_gpu.push(vp.now_s() - vp.stats().gpu_blocked_s);
        ipc.push(gpu.ipc_stats().transport_time_s);
    }

    // Plan the recorded job stream through the shared pipeline. Coalescing only
    // applies to VPs whose apps are coalescing-friendly, and the adaptive pass
    // keeps the merged plan only when the engine model prices it faster.
    let coalescible: Vec<bool> = apps.iter().map(|a| a.characteristics().coalescible).collect();
    let pipeline = Pipeline::from_policy(&mode);
    let outcome = session.drain_and_plan(&pipeline, &|vp: VpId| {
        coalescible.get(vp.0 as usize).copied().unwrap_or(false)
    });

    let non_gpu_max = non_gpu.iter().copied().fold(0.0, f64::max);
    let ipc_max = ipc.iter().copied().fold(0.0, f64::max);
    let makespan = outcome.makespan_s();

    Ok(ScenarioReport {
        mode,
        n_vps: apps.len(),
        total_time_s: non_gpu_max + ipc_max + makespan,
        vp_times_s: vp_times,
        non_gpu_time_s: non_gpu_max,
        ipc_time_s: ipc_max,
        device_makespan_s: makespan,
        gpu_jobs: outcome.gpu_jobs(),
        coalesced_groups: outcome.coalesced_groups(),
        coalesced_members: outcome.coalesced_members(),
        compute_utilization: outcome.compute_utilization(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_workloads::apps::{MatrixMulApp, MergeSortApp, SobelFilterApp, VectorAddApp};

    fn vector_adds(n_vps: usize) -> Vec<VectorAddApp> {
        (0..n_vps).map(|_| VectorAddApp { n: 2048 }).collect()
    }

    fn refs(apps: &[VectorAddApp]) -> Vec<&dyn Application> {
        apps.iter().map(|a| a as &dyn Application).collect()
    }

    #[test]
    fn emulation_is_much_slower_than_multiplexing() {
        // A compute-dense workload (O(n³) kernel over O(n²) guest prep), like the
        // paper's Table 1/Fig. 11 apps: the GPU work dominates, so multiplexing
        // shines. Tiny O(n) workloads are bounded by guest-side costs instead.
        let apps: Vec<MatrixMulApp> = (0..4).map(|_| MatrixMulApp::with_shape(48, 1)).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let slow = run_scenario(&refs, Policy::EmulatedOnVp).unwrap();
        let fast = run_scenario(&refs, Policy::Multiplexed).unwrap();
        let speedup = fast.speedup_vs(&slow);
        // At this toy scale guest-side prep still bounds the gain; the Fig. 11
        // harness at larger scales reaches the paper's hundreds-to-thousands band.
        assert!(speedup > 35.0, "speedup only {speedup:.1}");
        assert_eq!(slow.gpu_jobs, 0);
        assert!(fast.gpu_jobs > 0);
    }

    #[test]
    fn optimizations_help_coalescible_apps() {
        let apps = vector_adds(8);
        let refs = refs(&apps);
        let plain = run_scenario(&refs, Policy::Multiplexed).unwrap();
        let optimized = run_scenario(&refs, Policy::MultiplexedOptimized).unwrap();
        // Four groups: the a/b input copies, the kernel, and the output copy all
        // merge across the eight VPs.
        assert!(optimized.coalesced_groups >= 3, "groups {}", optimized.coalesced_groups);
        assert!(optimized.coalesced_members >= 3 * 8);
        assert!(
            optimized.device_makespan_s < plain.device_makespan_s,
            "optimized {} vs plain {}",
            optimized.device_makespan_s,
            plain.device_makespan_s
        );
        assert!(optimized.total_time_s <= plain.total_time_s);
    }

    #[test]
    fn non_coalescible_apps_merge_nothing() {
        let apps: Vec<SobelFilterApp> =
            (0..4).map(|_| SobelFilterApp { width: 16, height: 12 }).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let optimized = run_scenario(&refs, Policy::MultiplexedOptimized).unwrap();
        assert_eq!(optimized.coalesced_groups, 0);
    }

    #[test]
    fn merge_sort_coalesces_every_pass() {
        // Each of the log²(n) bitonic passes should merge across VPs.
        let apps: Vec<MergeSortApp> = (0..4).map(|_| MergeSortApp { n: 64 }).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let plain = run_scenario(&refs, Policy::Multiplexed).unwrap();
        let optimized = run_scenario(&refs, Policy::MultiplexedOptimized).unwrap();
        // 64 keys → k = 2..64 (6 stages), Σ passes = 21 per VP; every pass groups.
        assert!(optimized.coalesced_groups >= 20, "groups {}", optimized.coalesced_groups);
        assert!(optimized.device_makespan_s < plain.device_makespan_s * 0.5);
    }

    #[test]
    fn reports_are_internally_consistent() {
        let apps = vector_adds(2);
        let refs = refs(&apps);
        let r = run_scenario(&refs, Policy::Multiplexed).unwrap();
        assert_eq!(r.n_vps, 2);
        assert_eq!(r.vp_times_s.len(), 2);
        assert!(r.total_time_s >= r.device_makespan_s);
        assert!(r.compute_utilization > 0.0 && r.compute_utilization <= 1.0);
    }

    #[test]
    fn two_host_gpus_halve_the_device_makespan() {
        // Eight compute-dense VPs on one Quadro vs spread over two: the paper's
        // multi-GPU multiplexing claim at its simplest.
        let apps: Vec<MatrixMulApp> = (0..8).map(|_| MatrixMulApp::with_shape(24, 1)).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let one = run_scenario_multi_gpu(
            &refs,
            Policy::Multiplexed,
            &[GpuArch::quadro_4000()],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap();
        let two = run_scenario_multi_gpu(
            &refs,
            Policy::Multiplexed,
            &[GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(two.n_vps, 8);
        assert_eq!(two.gpu_jobs, one.gpu_jobs);
        let ratio = one.device_makespan_s / two.device_makespan_s;
        assert!((1.6..=2.4).contains(&ratio), "makespan ratio {ratio:.2}");
        assert!(two.total_time_s < one.total_time_s);
    }

    #[test]
    fn heterogeneous_host_gpus_are_supported() {
        let apps: Vec<VectorAddApp> = (0..4).map(|_| VectorAddApp { n: 2048 }).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let r = run_scenario_multi_gpu(
            &refs,
            Policy::MultiplexedOptimized,
            &[GpuArch::quadro_4000(), GpuArch::grid_k520()],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(r.n_vps, 4);
        assert!(r.total_time_s > 0.0);
        let err = run_scenario_multi_gpu(
            &refs,
            Policy::Multiplexed,
            &[],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap_err();
        assert!(matches!(err, SigmaVpError::Config(_)));
    }

    #[test]
    fn empty_scenario_is_rejected() {
        let err = run_scenario(&[], Policy::Multiplexed).unwrap_err();
        assert!(matches!(err, SigmaVpError::Config(_)));
    }

    #[test]
    fn more_vps_cost_more_emulation_but_sublinear_sigma_vp() {
        let small = vector_adds(2);
        let big = vector_adds(8);
        let r2 = run_scenario(&refs(&small), Policy::MultiplexedOptimized).unwrap();
        let r8 = run_scenario(&refs(&big), Policy::MultiplexedOptimized).unwrap();
        // Eight coalesced VPs must cost less than 4× the two-VP makespan.
        assert!(r8.device_makespan_s < 4.0 * r2.device_makespan_s);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_gpu_mode_alias_still_compiles() {
        let apps = vector_adds(2);
        let refs = refs(&apps);
        let r = run_scenario(&refs, GpuMode::Multiplexed).unwrap();
        assert_eq!(r.mode, Policy::Multiplexed);
    }
}
