//! Multi-VP scenarios: run N virtual platforms through complete applications and
//! price the simulation in the paper's three configurations.
//!
//! The paper's Fig. 11 compares, for eight concurrent VP instances of each
//! benchmark: (1) GPU emulation on the VP, (2) plain host-GPU multiplexing, and
//! (3) multiplexing plus Kernel Interleaving and Kernel Coalescing. This module
//! reproduces that comparison:
//!
//! * Every VP **functionally executes** its application (inputs generated, kernels
//!   run, outputs validated) over the chosen backend; nothing is faked at the data
//!   level.
//! * **Timing** composes three ingredients: per-VP *non-GPU* simulated time
//!   (guest CPU work, file I/O, software OpenGL — VPs run on separate host cores,
//!   so these overlap and only the maximum counts), per-VP *IPC* time, and the
//!   host-GPU *timeline makespan* of the recorded job stream, replayed through the
//!   two-engine [`engine`](sigmavp_gpu::engine) model.
//! * In [`GpuMode::MultiplexedOptimized`], the job stream is first reordered by
//!   the [interleaver](sigmavp_sched::interleave) and identical kernel jobs from
//!   different VPs (at the same per-VP kernel ordinal) are merged into single
//!   launches with wave-aligned grids and amortized launch overheads, with
//!   cross-stream dependencies preserved in the timeline.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use sigmavp_gpu::engine::{simulate, Engine as GpuEngine, GpuOp, StreamId};
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::queue::{Job, JobId, JobKind};
use sigmavp_ipc::transport::TransportCost;
use sigmavp_sched::interleave::reorder_async;
use sigmavp_vp::emulation::EmulatedGpu;
use sigmavp_vp::platform::VirtualPlatform;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::{AppEnv, Application};

use crate::backend::MultiplexedGpu;
use crate::error::SigmaVpError;
use crate::host::{HostRuntime, JobRecord, RecordKind};

/// The GPU backend configuration of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuMode {
    /// Software GPU emulation inside each binary-translating VP (the paper's blue
    /// bars — the slow baseline).
    EmulatedOnVp,
    /// Host-GPU multiplexing without the two optimizations (red line).
    Multiplexed,
    /// Host-GPU multiplexing with Kernel Interleaving and Kernel Coalescing
    /// (green line).
    MultiplexedOptimized,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The mode that ran.
    pub mode: GpuMode,
    /// Number of VP instances.
    pub n_vps: usize,
    /// Total simulated time to complete all VPs, seconds.
    pub total_time_s: f64,
    /// Per-VP local simulated times (including time blocked on the GPU service).
    pub vp_times_s: Vec<f64>,
    /// Maximum per-VP non-GPU simulated time.
    pub non_gpu_time_s: f64,
    /// Maximum per-VP IPC transport time (zero for emulation).
    pub ipc_time_s: f64,
    /// Host-GPU timeline makespan (zero for emulation).
    pub device_makespan_s: f64,
    /// Device-touching jobs dispatched (zero for emulation).
    pub gpu_jobs: usize,
    /// Kernel groups merged by coalescing.
    pub coalesced_groups: usize,
    /// Total member launches those groups absorbed.
    pub coalesced_members: usize,
    /// Compute-engine utilization of the timeline (zero for emulation).
    pub compute_utilization: f64,
}

impl ScenarioReport {
    /// Speedup of this run relative to a baseline run (typically emulation).
    pub fn speedup_vs(&self, baseline: &ScenarioReport) -> f64 {
        baseline.total_time_s / self.total_time_s
    }
}

/// Run `apps` (one per VP) in the given mode on the default host GPU
/// (Quadro 4000) over a shared-memory transport.
///
/// # Errors
///
/// Returns [`SigmaVpError::Config`] for an empty app list, or any application /
/// backend failure (including output-validation failures).
pub fn run_scenario(
    apps: &[&dyn Application],
    mode: GpuMode,
) -> Result<ScenarioReport, SigmaVpError> {
    run_scenario_with(apps, mode, GpuArch::quadro_4000(), TransportCost::shared_memory())
}

/// Multi-GPU multiplexing: the paper's framework "multiplexes the host GPUs" —
/// hosts with several devices spread the VPs across them. VPs are assigned
/// round-robin to the given devices; each device runs its own timeline, and the
/// scenario completes when the slowest device (plus the slowest VP's non-GPU work)
/// does.
///
/// # Errors
///
/// Returns [`SigmaVpError::Config`] for an empty app or device list, or any
/// application/backend failure.
pub fn run_scenario_multi_gpu(
    apps: &[&dyn Application],
    mode: GpuMode,
    archs: &[GpuArch],
    transport: TransportCost,
) -> Result<ScenarioReport, SigmaVpError> {
    if archs.is_empty() {
        return Err(SigmaVpError::Config("need at least one host gpu".into()));
    }
    if apps.is_empty() {
        return Err(SigmaVpError::Config("scenario needs at least one vp".into()));
    }
    if archs.len() == 1 || mode == GpuMode::EmulatedOnVp {
        return run_scenario_with(apps, mode, archs[0].clone(), transport);
    }
    // Partition VPs round-robin across devices and run one sub-scenario per
    // device; non-GPU work of all VPs overlaps globally (separate host cores),
    // device timelines are independent hardware.
    let mut reports = Vec::with_capacity(archs.len());
    for (d, arch) in archs.iter().enumerate() {
        let subset: Vec<&dyn Application> = apps
            .iter()
            .enumerate()
            .filter(|(i, _)| i % archs.len() == d)
            .map(|(_, a)| *a)
            .collect();
        if subset.is_empty() {
            continue;
        }
        reports.push(run_scenario_with(&subset, mode, arch.clone(), transport)?);
    }
    let non_gpu = reports.iter().map(|r| r.non_gpu_time_s).fold(0.0, f64::max);
    let ipc = reports.iter().map(|r| r.ipc_time_s).fold(0.0, f64::max);
    let makespan = reports.iter().map(|r| r.device_makespan_s).fold(0.0, f64::max);
    Ok(ScenarioReport {
        mode,
        n_vps: apps.len(),
        total_time_s: non_gpu + ipc + makespan,
        vp_times_s: reports.iter().flat_map(|r| r.vp_times_s.iter().copied()).collect(),
        non_gpu_time_s: non_gpu,
        ipc_time_s: ipc,
        device_makespan_s: makespan,
        gpu_jobs: reports.iter().map(|r| r.gpu_jobs).sum(),
        coalesced_groups: reports.iter().map(|r| r.coalesced_groups).sum(),
        coalesced_members: reports.iter().map(|r| r.coalesced_members).sum(),
        compute_utilization: reports.iter().map(|r| r.compute_utilization).fold(0.0, f64::max),
    })
}

/// [`run_scenario`] with explicit host-GPU architecture and transport cost.
///
/// # Errors
///
/// See [`run_scenario`].
pub fn run_scenario_with(
    apps: &[&dyn Application],
    mode: GpuMode,
    arch: GpuArch,
    transport: TransportCost,
) -> Result<ScenarioReport, SigmaVpError> {
    if apps.is_empty() {
        return Err(SigmaVpError::Config("scenario needs at least one vp".into()));
    }
    match mode {
        GpuMode::EmulatedOnVp => run_emulated(apps),
        GpuMode::Multiplexed => run_multiplexed(apps, arch, transport, false),
        GpuMode::MultiplexedOptimized => run_multiplexed(apps, arch, transport, true),
    }
}

fn union_registry(apps: &[&dyn Application]) -> KernelRegistry {
    apps.iter().flat_map(|a| a.kernels()).collect()
}

fn run_emulated(apps: &[&dyn Application]) -> Result<ScenarioReport, SigmaVpError> {
    let registry = union_registry(apps);
    let mut vp_times = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let mut vp = VirtualPlatform::new(VpId(i as u32));
        let mut gpu = EmulatedGpu::on_vp(registry.clone());
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        vp_times.push(vp.now_s());
    }
    // Each VP simulates on its own host core; the scenario completes when the
    // slowest VP does.
    let total = vp_times.iter().copied().fold(0.0, f64::max);
    Ok(ScenarioReport {
        mode: GpuMode::EmulatedOnVp,
        n_vps: apps.len(),
        total_time_s: total,
        vp_times_s: vp_times,
        non_gpu_time_s: total,
        ipc_time_s: 0.0,
        device_makespan_s: 0.0,
        gpu_jobs: 0,
        coalesced_groups: 0,
        coalesced_members: 0,
        compute_utilization: 0.0,
    })
}

fn run_multiplexed(
    apps: &[&dyn Application],
    arch: GpuArch,
    transport: TransportCost,
    optimized: bool,
) -> Result<ScenarioReport, SigmaVpError> {
    let registry = union_registry(apps);
    let runtime = Arc::new(Mutex::new(HostRuntime::new(arch.clone(), registry)));

    let mut vp_times = Vec::with_capacity(apps.len());
    let mut non_gpu = Vec::with_capacity(apps.len());
    let mut ipc = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let mut vp = VirtualPlatform::new(VpId(i as u32));
        let mut gpu = MultiplexedGpu::new(VpId(i as u32), runtime.clone(), transport);
        let mut env = AppEnv::new(&mut vp, &mut gpu);
        app.run_once(&mut env)?;
        vp_times.push(vp.now_s());
        non_gpu.push(vp.now_s() - vp.stats().gpu_blocked_s);
        ipc.push(gpu.ipc_stats().transport_time_s);
    }

    let records = runtime.lock().take_records();
    let gpu_jobs = records.len();
    let mut jobs = records_to_jobs(&records);
    if optimized {
        jobs = reorder_async(jobs);
    }

    // Coalescing plan (optimized mode only, and only for VPs whose apps are
    // coalescing-friendly). The re-scheduler knows the expected time of every
    // invocation, so it only applies coalescing when the merged timeline actually
    // wins (an adaptive policy the paper's expected-time machinery enables).
    let coalescible: Vec<bool> = apps.iter().map(|a| a.characteristics().coalescible).collect();
    let (timeline, groups, members) = if optimized {
        let plain_tl = simulate(&arch, &stabilize_dep_order(build_ops_plain(&jobs, &records)));
        let (ops, g, m) = build_ops_coalesced(&jobs, &records, &coalescible, &arch);
        let merged_tl = simulate(&arch, &ops);
        if g > 0 && merged_tl.makespan_s <= plain_tl.makespan_s {
            (merged_tl, g, m)
        } else {
            (plain_tl, 0, 0)
        }
    } else {
        (simulate(&arch, &stabilize_dep_order(build_ops_plain(&jobs, &records))), 0, 0)
    };
    let non_gpu_max = non_gpu.iter().copied().fold(0.0, f64::max);
    let ipc_max = ipc.iter().copied().fold(0.0, f64::max);
    let total = non_gpu_max + ipc_max + timeline.makespan_s;

    Ok(ScenarioReport {
        mode: if optimized { GpuMode::MultiplexedOptimized } else { GpuMode::Multiplexed },
        n_vps: apps.len(),
        total_time_s: total,
        vp_times_s: vp_times,
        non_gpu_time_s: non_gpu_max,
        ipc_time_s: ipc_max,
        device_makespan_s: timeline.makespan_s,
        gpu_jobs,
        coalesced_groups: groups,
        coalesced_members: members,
        compute_utilization: timeline.utilization(GpuEngine::Compute),
    })
}

fn records_to_jobs(records: &[JobRecord]) -> Vec<Job> {
    records
        .iter()
        .enumerate()
        .map(|(i, r)| Job {
            id: JobId(i as u64),
            vp: r.vp,
            seq: r.seq,
            kind: match &r.kind {
                RecordKind::H2d { bytes, .. } => JobKind::CopyIn { bytes: *bytes },
                RecordKind::D2h { bytes, .. } => JobKind::CopyOut { bytes: *bytes },
                RecordKind::Kernel { name, grid_dim, block_dim, .. } => JobKind::Kernel {
                    name: name.clone(),
                    grid_dim: *grid_dim,
                    block_dim: *block_dim,
                },
            },
            sync: true,
            enqueued_at_s: r.sent_at_s,
            expected_duration_s: r.duration_s,
        })
        .collect()
}

fn job_engine(kind: &JobKind) -> GpuEngine {
    match kind {
        JobKind::CopyIn { .. } => GpuEngine::CopyH2D,
        JobKind::CopyOut { .. } => GpuEngine::CopyD2H,
        JobKind::Kernel { .. } => GpuEngine::Compute,
    }
}

/// Guest streams supported per VP in the timeline (engine stream id =
/// `vp × MAX_GUEST_STREAMS + guest_stream`).
const MAX_GUEST_STREAMS: u32 = 16;

/// Lower jobs to engine ops, honoring guest streams with CUDA *legacy
/// default-stream* semantics: operations on the default stream (0) synchronize
/// with every outstanding non-default-stream op of the same VP issued before
/// them, and non-default-stream ops wait for the last default-stream op. Ops on
/// different non-default streams of the same VP may overlap (the asynchronous
/// case of Fig. 4a).
fn build_ops_plain(jobs: &[Job], records: &[JobRecord]) -> Vec<GpuOp> {
    let mut last_default: HashMap<VpId, u64> = HashMap::new();
    let mut outstanding: HashMap<VpId, Vec<u64>> = HashMap::new();
    jobs.iter()
        .map(|j| {
            let guest_stream = match &records[j.id.0 as usize].kind {
                RecordKind::H2d { stream, .. }
                | RecordKind::D2h { stream, .. }
                | RecordKind::Kernel { stream, .. } => *stream % MAX_GUEST_STREAMS,
            };
            let op_id = j.id.0;
            let after = if guest_stream == 0 {
                // Default-to-default ordering comes from the engine stream itself;
                // only the cross-stream joins need explicit dependencies.
                let deps = outstanding.remove(&j.vp).unwrap_or_default();
                last_default.insert(j.vp, op_id);
                deps
            } else {
                outstanding.entry(j.vp).or_default().push(op_id);
                last_default.get(&j.vp).map(|&d| vec![d]).unwrap_or_default()
            };
            GpuOp {
                id: op_id,
                stream: StreamId(j.vp.0 * MAX_GUEST_STREAMS + guest_stream),
                engine: job_engine(&j.kind),
                duration_s: j.expected_duration_s,
                after,
            }
        })
        .collect()
}

/// Merge matching jobs from different coalescing-friendly VPs into single
/// operations and lower everything to engine ops with correct cross-stream
/// dependencies.
///
/// Jobs are grouped by their *per-VP ordinal* (the k-th device job each VP
/// submits) plus an identity check: copies match by direction (their chunks merge
/// into one contiguous transfer, paper Fig. 5), kernels match by name and block
/// size (the Kernel Match test). Each merged op sits at the position of its *last*
/// member, so every member's intra-VP predecessors still precede it; dropped
/// members' later jobs gain an explicit dependency on the merged op.
///
/// Returns `(ops, merged_groups, absorbed_member_jobs)`.
fn build_ops_coalesced(
    jobs: &[Job],
    records: &[JobRecord],
    coalescible: &[bool],
    arch: &GpuArch,
) -> (Vec<GpuOp>, usize, usize) {
    #[derive(Hash, PartialEq, Eq)]
    enum Identity {
        In,
        Out,
        Kernel(String, u32),
    }

    let mut ordinal: HashMap<VpId, u64> = HashMap::new();
    let mut groups: HashMap<(u64, Identity), Vec<usize>> = HashMap::new();
    for (idx, job) in jobs.iter().enumerate() {
        let ord = ordinal.entry(job.vp).or_insert(0);
        if coalescible.get(job.vp.0 as usize).copied().unwrap_or(false) {
            let identity = match &job.kind {
                JobKind::CopyIn { .. } => Identity::In,
                JobKind::CopyOut { .. } => Identity::Out,
                JobKind::Kernel { name, block_dim, .. } => {
                    Identity::Kernel(name.clone(), *block_dim)
                }
            };
            groups.entry((*ord, identity)).or_default().push(idx);
        }
        *ord += 1;
    }

    let mut role: HashMap<usize, MergeRole> = HashMap::new();
    let mut n_groups = 0;
    let mut n_members = 0;
    for (_, member_idxs) in groups {
        if member_idxs.len() < 2 {
            continue;
        }
        n_groups += 1;
        n_members += member_idxs.len();
        let anchor = *member_idxs.iter().max().expect("non-empty group");
        let others: Vec<usize> = member_idxs.iter().copied().filter(|&i| i != anchor).collect();
        role.insert(anchor, MergeRole::Anchor { members: others.clone() });
        for o in others {
            role.insert(o, MergeRole::Dropped { anchor });
        }
    }

    // Lower to ops. Track, per VP, the last emitted op id (for dependency wiring)
    // and any pending barrier (a dropped member's next op must wait for the merged
    // op). Barriers on not-yet-lowered anchors use a placeholder id resolved below.
    let mut ops = Vec::with_capacity(jobs.len());
    let mut last_op_of_vp: HashMap<VpId, u64> = HashMap::new();
    let mut pending_barrier: HashMap<VpId, u64> = HashMap::new();
    let mut anchor_op_id: HashMap<usize, u64> = HashMap::new();

    for (idx, job) in jobs.iter().enumerate() {
        match role.get(&idx) {
            Some(MergeRole::Dropped { anchor }) => {
                pending_barrier.insert(job.vp, u64::MAX - *anchor as u64);
            }
            Some(MergeRole::Anchor { members }) => {
                let duration = merged_duration(jobs, records, idx, members, arch);
                let mut after: Vec<u64> = members
                    .iter()
                    .filter_map(|&m| last_op_of_vp.get(&jobs[m].vp).copied())
                    .collect();
                if let Some(b) = pending_barrier.remove(&job.vp) {
                    after.push(b);
                }
                let op_id = idx as u64;
                ops.push(GpuOp {
                    id: op_id,
                    stream: StreamId(job.vp.0),
                    engine: job_engine(&job.kind),
                    duration_s: duration,
                    after,
                });
                anchor_op_id.insert(idx, op_id);
                last_op_of_vp.insert(job.vp, op_id);
                // All member VPs now logically depend on this op.
                for &m in members {
                    last_op_of_vp.insert(jobs[m].vp, op_id);
                }
            }
            None => {
                let mut after = vec![];
                if let Some(b) = pending_barrier.remove(&job.vp) {
                    after.push(b);
                }
                let op_id = idx as u64;
                ops.push(GpuOp {
                    id: op_id,
                    stream: StreamId(job.vp.0),
                    engine: job_engine(&job.kind),
                    duration_s: job.expected_duration_s,
                    after,
                });
                last_op_of_vp.insert(job.vp, op_id);
            }
        }
    }

    // Resolve placeholder barriers (u64::MAX - anchor_index) to real op ids.
    for op in &mut ops {
        for dep in &mut op.after {
            if *dep > u64::MAX / 2 {
                let anchor_idx = (u64::MAX - *dep) as usize;
                *dep = anchor_op_id.get(&anchor_idx).copied().unwrap_or(0);
            }
        }
    }
    (stabilize_dep_order(ops), n_groups, n_members)
}

/// Duration of a merged operation.
///
/// * Copies merge into one contiguous transfer: one fixed latency plus the summed
///   bytes over the copy-engine bandwidth (Fig. 5's coalesced memory chunk).
/// * Kernels merge into one launch: one launch overhead plus the members' combined
///   compute time scaled by the wave-alignment gain
///   (`merged waves / Σ member waves` — Eq. 9's alignment effect).
fn merged_duration(
    jobs: &[Job],
    records: &[JobRecord],
    anchor: usize,
    members: &[usize],
    arch: &GpuArch,
) -> f64 {
    match &jobs[anchor].kind {
        JobKind::CopyIn { .. } | JobKind::CopyOut { .. } => {
            let total_bytes: u64 = members
                .iter()
                .chain(std::iter::once(&anchor))
                .map(|&i| match jobs[i].kind {
                    JobKind::CopyIn { bytes } | JobKind::CopyOut { bytes } => bytes,
                    JobKind::Kernel { .. } => 0,
                })
                .sum();
            arch.copy_time_s(total_bytes)
        }
        JobKind::Kernel { block_dim, .. } => {
            let block_dim = *block_dim;
            let mut total_grid = 0u64;
            let mut sum_compute = 0.0f64;
            let mut sum_waves = 0u64;
            let mut overhead = arch.launch_overhead_us * 1e-6;
            for &idx in members.iter().chain(std::iter::once(&anchor)) {
                let JobKind::Kernel { grid_dim, .. } = &jobs[idx].kind else { continue };
                total_grid += *grid_dim as u64;
                // Job ids index the original record order even after reordering.
                let rec = &records[jobs[idx].id.0 as usize];
                if let RecordKind::Kernel { launch_overhead_s, waves, .. } = &rec.kind {
                    overhead = *launch_overhead_s;
                    sum_waves += *waves;
                    sum_compute += (rec.duration_s - launch_overhead_s).max(0.0);
                }
            }
            let bpw = arch.blocks_per_wave(block_dim) as u64;
            let merged_waves = total_grid.div_ceil(bpw).max(1);
            let wave_ratio =
                if sum_waves > 0 { merged_waves as f64 / sum_waves as f64 } else { 1.0 };
            overhead + sum_compute * wave_ratio.min(1.0)
        }
    }
}

#[derive(Debug, Clone)]
enum MergeRole {
    Anchor { members: Vec<usize> },
    Dropped { anchor: usize },
}

/// Reorder ops (stably) so every op is issued after all of its `after`
/// dependencies — the in-order engine model requires dependencies to precede their
/// dependents in issue order. Cycles cannot occur (dependencies always point at
/// merged ops whose members precede the dependents), but the code degrades
/// gracefully by emitting any stuck remainder in its given order.
fn stabilize_dep_order(ops: Vec<GpuOp>) -> Vec<GpuOp> {
    let mut emitted: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut pending: std::collections::VecDeque<GpuOp> = ops.into();
    let mut out = Vec::with_capacity(pending.len());
    let mut stall = 0usize;
    while let Some(op) = pending.pop_front() {
        if op.after.iter().all(|d| emitted.contains(d)) {
            emitted.insert(op.id);
            out.push(op);
            stall = 0;
        } else {
            pending.push_back(op);
            stall += 1;
            if stall > pending.len() {
                while let Some(op) = pending.pop_front() {
                    out.push(op);
                }
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_workloads::apps::{MatrixMulApp, MergeSortApp, SobelFilterApp, VectorAddApp};

    fn vector_adds(n_vps: usize) -> Vec<VectorAddApp> {
        (0..n_vps).map(|_| VectorAddApp { n: 2048 }).collect()
    }

    fn refs(apps: &[VectorAddApp]) -> Vec<&dyn Application> {
        apps.iter().map(|a| a as &dyn Application).collect()
    }

    #[test]
    fn emulation_is_much_slower_than_multiplexing() {
        // A compute-dense workload (O(n³) kernel over O(n²) guest prep), like the
        // paper's Table 1/Fig. 11 apps: the GPU work dominates, so multiplexing
        // shines. Tiny O(n) workloads are bounded by guest-side costs instead.
        let apps: Vec<MatrixMulApp> = (0..4).map(|_| MatrixMulApp::with_shape(48, 1)).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let slow = run_scenario(&refs, GpuMode::EmulatedOnVp).unwrap();
        let fast = run_scenario(&refs, GpuMode::Multiplexed).unwrap();
        let speedup = fast.speedup_vs(&slow);
        // At this toy scale guest-side prep still bounds the gain; the Fig. 11
        // harness at larger scales reaches the paper's hundreds-to-thousands band.
        assert!(speedup > 35.0, "speedup only {speedup:.1}");
        assert_eq!(slow.gpu_jobs, 0);
        assert!(fast.gpu_jobs > 0);
    }

    #[test]
    fn optimizations_help_coalescible_apps() {
        let apps = vector_adds(8);
        let refs = refs(&apps);
        let plain = run_scenario(&refs, GpuMode::Multiplexed).unwrap();
        let optimized = run_scenario(&refs, GpuMode::MultiplexedOptimized).unwrap();
        // Four groups: the a/b input copies, the kernel, and the output copy all
        // merge across the eight VPs.
        assert!(optimized.coalesced_groups >= 3, "groups {}", optimized.coalesced_groups);
        assert!(optimized.coalesced_members >= 3 * 8);
        assert!(
            optimized.device_makespan_s < plain.device_makespan_s,
            "optimized {} vs plain {}",
            optimized.device_makespan_s,
            plain.device_makespan_s
        );
        assert!(optimized.total_time_s <= plain.total_time_s);
    }

    #[test]
    fn non_coalescible_apps_merge_nothing() {
        let apps: Vec<SobelFilterApp> =
            (0..4).map(|_| SobelFilterApp { width: 16, height: 12 }).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let optimized = run_scenario(&refs, GpuMode::MultiplexedOptimized).unwrap();
        assert_eq!(optimized.coalesced_groups, 0);
    }

    #[test]
    fn merge_sort_coalesces_every_pass() {
        // Each of the log²(n) bitonic passes should merge across VPs.
        let apps: Vec<MergeSortApp> = (0..4).map(|_| MergeSortApp { n: 64 }).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let plain = run_scenario(&refs, GpuMode::Multiplexed).unwrap();
        let optimized = run_scenario(&refs, GpuMode::MultiplexedOptimized).unwrap();
        // 64 keys → k = 2..64 (6 stages), Σ passes = 21 per VP; every pass groups.
        assert!(optimized.coalesced_groups >= 20, "groups {}", optimized.coalesced_groups);
        assert!(optimized.device_makespan_s < plain.device_makespan_s * 0.5);
    }

    #[test]
    fn reports_are_internally_consistent() {
        let apps = vector_adds(2);
        let refs = refs(&apps);
        let r = run_scenario(&refs, GpuMode::Multiplexed).unwrap();
        assert_eq!(r.n_vps, 2);
        assert_eq!(r.vp_times_s.len(), 2);
        assert!(r.total_time_s >= r.device_makespan_s);
        assert!(r.compute_utilization > 0.0 && r.compute_utilization <= 1.0);
    }

    #[test]
    fn two_host_gpus_halve_the_device_makespan() {
        // Eight compute-dense VPs on one Quadro vs spread over two: the paper's
        // multi-GPU multiplexing claim at its simplest.
        let apps: Vec<MatrixMulApp> = (0..8).map(|_| MatrixMulApp::with_shape(24, 1)).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let one = run_scenario_multi_gpu(
            &refs,
            GpuMode::Multiplexed,
            &[GpuArch::quadro_4000()],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap();
        let two = run_scenario_multi_gpu(
            &refs,
            GpuMode::Multiplexed,
            &[GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(two.n_vps, 8);
        assert_eq!(two.gpu_jobs, one.gpu_jobs);
        let ratio = one.device_makespan_s / two.device_makespan_s;
        assert!((1.6..=2.4).contains(&ratio), "makespan ratio {ratio:.2}");
        assert!(two.total_time_s < one.total_time_s);
    }

    #[test]
    fn heterogeneous_host_gpus_are_supported() {
        let apps: Vec<VectorAddApp> = (0..4).map(|_| VectorAddApp { n: 2048 }).collect();
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a as &dyn Application).collect();
        let r = run_scenario_multi_gpu(
            &refs,
            GpuMode::MultiplexedOptimized,
            &[GpuArch::quadro_4000(), GpuArch::grid_k520()],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap();
        assert_eq!(r.n_vps, 4);
        assert!(r.total_time_s > 0.0);
        let err = run_scenario_multi_gpu(
            &refs,
            GpuMode::Multiplexed,
            &[],
            sigmavp_ipc::transport::TransportCost::shared_memory(),
        )
        .unwrap_err();
        assert!(matches!(err, SigmaVpError::Config(_)));
    }

    #[test]
    fn empty_scenario_is_rejected() {
        let err = run_scenario(&[], GpuMode::Multiplexed).unwrap_err();
        assert!(matches!(err, SigmaVpError::Config(_)));
    }

    #[test]
    fn more_vps_cost_more_emulation_but_sublinear_sigma_vp() {
        let small = vector_adds(2);
        let big = vector_adds(8);
        let r2 = run_scenario(&refs(&small), GpuMode::MultiplexedOptimized).unwrap();
        let r8 = run_scenario(&refs(&big), GpuMode::MultiplexedOptimized).unwrap();
        // Eight coalesced VPs must cost less than 4× the two-VP makespan.
        assert!(r8.device_makespan_s < 4.0 * r2.device_makespan_s);
    }
}
