//! # sigmavp — Simulation using GPU-Multiplexing for Acceleration of Virtual Platforms
//!
//! The top-level framework of the ΣVP reproduction (Jung & Carloni, DAC 2015): it
//! ties the substrates together exactly as the paper's Fig. 2 does.
//!
//! * On each **VP side**: a guest application (from
//!   [`sigmavp_workloads`]) talks to the CUDA-like GPU user library
//!   ([`sigmavp_vp::cuda`]), which delegates either to software
//!   [emulation](sigmavp_vp::emulation) (the slow path, Fig. 1a) or to this crate's
//!   [`MultiplexedGpu`] forwarding backend (Fig. 1b).
//! * On the **host side**: the [`HostRuntime`] decodes requests
//!   arriving through the [IPC codec](sigmavp_ipc::codec), dispatches them to the
//!   simulated [host GPU](sigmavp_gpu::GpuDevice), and records every job for
//!   timeline analysis.
//! * The [`scenario`] module runs N virtual platforms through a complete
//!   application and prices the result in three modes — GPU emulation on the VP,
//!   plain host-GPU multiplexing, and multiplexing plus Kernel Interleaving and
//!   Kernel Coalescing — producing the numbers behind the paper's Fig. 11.
//! * The [`paths`] module reproduces Table 1's six execution paths for a single
//!   workload.
//!
//! ## Quickstart
//!
//! ```
//! use sigmavp::scenario::run_scenario;
//! use sigmavp::Policy;
//! use sigmavp_workloads::apps::VectorAddApp;
//!
//! # fn main() -> Result<(), sigmavp::SigmaVpError> {
//! let app = VectorAddApp { n: 1024 };
//! let apps: Vec<&dyn sigmavp_workloads::Application> = vec![&app, &app];
//! let slow = run_scenario(&apps, Policy::EmulatedOnVp)?;
//! let fast = run_scenario(&apps, Policy::MultiplexedOptimized)?;
//! assert!(fast.total_time_s < slow.total_time_s);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

pub mod backend;
pub mod dispatcher;
pub mod error;
pub mod host;
pub mod paths;
pub mod plan;
pub mod scenario;
pub mod session;
pub mod threaded;

pub use backend::MultiplexedGpu;
pub use dispatcher::{DispatchStats, DispatchedSigmaVp};
pub use error::SigmaVpError;
pub use host::HostRuntime;
pub use plan::{op_job_uid, plan_device, DevicePlan, EngineEvaluator};
pub use scenario::{run_scenario, run_scenario_with, ScenarioReport};
pub use session::{DeviceOutcome, ExecutionSession, SessionOutcome, VpQueueWait};
pub use sigmavp_fault::FaultPlan;
pub use sigmavp_sched::{Admission, BackendKind, InterleaveMode, Pipeline, Policy, RetryPolicy};
pub use threaded::ThreadedSigmaVp;

#[allow(deprecated)]
pub use scenario::GpuMode;
#[allow(deprecated)]
pub use threaded::SchedulingPolicy;
