//! The live, multi-threaded ΣVP runtime: each VP is a real OS thread.
//!
//! The [`scenario`](crate::scenario) engine drives VPs deterministically to make
//! the experiments reproducible; this module is the *deployment* shape of Fig. 2 —
//! many VP instances running concurrently against a shared
//! [`ExecutionSession`]:
//!
//! * every VP thread owns its [`VirtualPlatform`] clock and a
//!   [`MultiplexedGpu`](crate::backend::MultiplexedGpu) connection to the device
//!   the session routed it to; requests are really encoded, the host-runtime
//!   mutex is the serialization point the paper's Job Queue provides;
//! * a [`TurnGate`] reproduces the *VP Control* mechanism ("stops and resumes the
//!   VPs") for synchronous invocations: under a policy with
//!   [`Admission::RoundRobin`], VPs take strict turns issuing GPU calls,
//!   which is exactly the interleaved arrival order of Fig. 4b — and it makes the
//!   concurrent job stream deterministic;
//! * [`ThreadedSigmaVp::join`] collects per-VP outcomes plus the per-device job
//!   logs, and prices the fleet through the same scheduling
//!   [`Pipeline`](sigmavp_sched::Pipeline) the scenario engine uses — so live
//!   runs get multi-GPU routing and timeline analysis for free.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::{VpId, WireParam};
use sigmavp_ipc::transport::TransportCost;
use sigmavp_sched::{Admission, Pipeline, Policy};
use sigmavp_vp::error::VpError;
use sigmavp_vp::platform::VirtualPlatform;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_vp::service::GpuService;
use sigmavp_workloads::app::{AppEnv, Application};

use crate::backend::MultiplexedGpu;
use crate::host::{HostRuntime, JobRecord};
use crate::session::ExecutionSession;

/// Legacy name of the live-runtime admission policy, now unified with the
/// scenario engine's `GpuMode` into [`Policy`].
#[deprecated(
    since = "0.2.0",
    note = "use `sigmavp_sched::Policy` (re-exported as `sigmavp::Policy`)"
)]
pub type SchedulingPolicy = Policy;

#[derive(Debug)]
struct GateState {
    order: Vec<VpId>,
    next: usize,
    finished: HashSet<VpId>,
}

/// The VP-control turnstile: at most one VP may issue GPU calls at a time, and
/// turns rotate in registration order, skipping finished VPs.
#[derive(Debug)]
pub struct TurnGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl TurnGate {
    /// A gate rotating over `order`.
    pub fn new(order: Vec<VpId>) -> Self {
        TurnGate {
            state: Mutex::new(GateState { order, next: 0, finished: HashSet::new() }),
            cv: Condvar::new(),
        }
    }

    fn is_turn(state: &GateState, vp: VpId) -> bool {
        state.order.get(state.next).copied() == Some(vp)
    }

    fn advance(state: &mut GateState) {
        if state.order.is_empty() || state.finished.len() >= state.order.len() {
            return;
        }
        // Rotate to the next unfinished VP.
        for _ in 0..state.order.len() {
            state.next = (state.next + 1) % state.order.len();
            if !state.finished.contains(&state.order[state.next]) {
                return;
            }
        }
    }

    /// Block until it is `vp`'s turn.
    pub fn enter(&self, vp: VpId) {
        let started = std::time::Instant::now();
        let mut s = self.state.lock();
        while !Self::is_turn(&s, vp) {
            self.cv.wait(&mut s);
        }
        drop(s);
        let r = sigmavp_telemetry::recorder();
        if r.enabled() {
            r.count("gate.turns", 1);
            r.observe_s("gate.wait_s", started.elapsed().as_secs_f64());
        }
    }

    /// Yield the turn to the next unfinished VP.
    pub fn leave(&self, vp: VpId) {
        let mut s = self.state.lock();
        if Self::is_turn(&s, vp) {
            Self::advance(&mut s);
        }
        self.cv.notify_all();
    }

    /// Mark `vp` finished so the rotation skips it (and release its turn if held).
    pub fn finish(&self, vp: VpId) {
        let mut s = self.state.lock();
        s.finished.insert(vp);
        if Self::is_turn(&s, vp) {
            Self::advance(&mut s);
        }
        self.cv.notify_all();
    }
}

/// A [`GpuService`] decorator that takes a gate turn around every call.
struct GatedGpu {
    vp: VpId,
    inner: MultiplexedGpu,
    gate: Option<Arc<TurnGate>>,
}

impl GatedGpu {
    fn guarded<T>(
        &mut self,
        f: impl FnOnce(&mut MultiplexedGpu) -> Result<T, VpError>,
    ) -> Result<T, VpError> {
        if let Some(gate) = self.gate.clone() {
            gate.enter(self.vp);
            let result = f(&mut self.inner);
            gate.leave(self.vp);
            result
        } else {
            f(&mut self.inner)
        }
    }
}

impl GpuService for GatedGpu {
    fn malloc(&mut self, bytes: u64) -> Result<(u64, f64), VpError> {
        self.guarded(|g| g.malloc(bytes))
    }

    fn free(&mut self, handle: u64) -> Result<f64, VpError> {
        self.guarded(|g| g.free(handle))
    }

    fn memcpy_h2d(&mut self, handle: u64, data: &[u8]) -> Result<f64, VpError> {
        self.guarded(|g| g.memcpy_h2d(handle, data))
    }

    fn memcpy_d2h(&mut self, handle: u64, out: &mut [u8]) -> Result<f64, VpError> {
        self.guarded(|g| g.memcpy_d2h(handle, out))
    }

    fn launch(
        &mut self,
        kernel: &str,
        grid_dim: u32,
        block_dim: u32,
        params: &[WireParam],
        sync: bool,
    ) -> Result<f64, VpError> {
        self.guarded(|g| g.launch(kernel, grid_dim, block_dim, params, sync))
    }

    fn synchronize(&mut self) -> Result<f64, VpError> {
        self.guarded(|g| g.synchronize())
    }
}

/// Per-VP result of a live run.
#[derive(Debug, Clone, PartialEq)]
pub struct VpOutcome {
    /// The VP.
    pub vp: VpId,
    /// Application name it ran.
    pub app: String,
    /// Final simulated time of the VP's clock.
    pub simulated_time_s: f64,
    /// GPU API calls issued.
    pub gpu_calls: u64,
    /// Error message if the application failed (validation or backend).
    pub error: Option<String>,
}

/// Result of joining a live run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedReport {
    /// Per-VP outcomes, in spawn order.
    pub outcomes: Vec<VpOutcome>,
    /// All job records, concatenated device by device (the full log for
    /// single-device runs, in dispatch order).
    pub records: Vec<JobRecord>,
    /// Per-device job logs, each in dispatch order.
    pub device_records: Vec<Vec<JobRecord>>,
    /// Fleet device makespan: each device's planned job stream replayed through
    /// the engine model; the slowest device counts.
    pub device_makespan_s: f64,
    /// VPs whose thread failed (application error or panic), with the error.
    /// A failed VP no longer aborts the fleet: healthy VPs still complete and
    /// their outcomes are reported alongside.
    pub failed_vps: Vec<(VpId, VpError)>,
}

impl ThreadedReport {
    /// Whether every VP completed without error.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.error.is_none()) && self.failed_vps.is_empty()
    }
}

/// Best-effort panic payload extraction for reporting a crashed VP thread.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// A spawned VP thread awaiting collection: its id, app name, and the handle
/// yielding the outcome plus any structured error.
pub(crate) type VpHandle = (VpId, String, JoinHandle<(VpOutcome, Option<VpError>)>);

/// Join a batch of VP threads without letting one panic abort the fleet: a
/// panicked thread is reported as a failed VP (with a synthesized outcome) and
/// every healthy VP's result is still collected. Threads report their
/// structured [`VpError`] (if any) alongside the outcome.
pub(crate) fn collect_vp_outcomes(
    handles: Vec<VpHandle>,
) -> (Vec<VpOutcome>, Vec<(VpId, VpError)>) {
    let mut outcomes = Vec::new();
    let mut failed_vps: Vec<(VpId, VpError)> = Vec::new();
    for (vp, app, handle) in handles {
        match handle.join() {
            Ok((outcome, error)) => {
                if let Some(error) = error {
                    failed_vps.push((vp, error));
                }
                outcomes.push(outcome);
            }
            Err(payload) => {
                let message = format!("vp thread panicked: {}", panic_message(&*payload));
                sigmavp_telemetry::recorder().count("fault.vp_panics", 1);
                failed_vps.push((vp, VpError::Device(message.clone())));
                outcomes.push(VpOutcome {
                    vp,
                    app,
                    simulated_time_s: 0.0,
                    gpu_calls: 0,
                    error: Some(message),
                });
            }
        }
    }
    outcomes.sort_by_key(|o| o.vp);
    failed_vps.sort_by_key(|f| f.0);
    (outcomes, failed_vps)
}

/// A live multi-VP ΣVP system.
pub struct ThreadedSigmaVp {
    session: ExecutionSession,
    policy: Policy,
    pending: Vec<(VpId, Box<dyn Application + Send>)>,
    coalescible: HashMap<VpId, bool>,
    next_vp: u32,
}

impl ThreadedSigmaVp {
    /// A system over `archs` host GPUs, each serving `registry`. VPs are routed
    /// to the least-loaded device as they spawn.
    ///
    /// # Panics
    ///
    /// Panics if `archs` is empty.
    pub fn new(
        archs: Vec<GpuArch>,
        registry: KernelRegistry,
        cost: TransportCost,
        policy: Policy,
    ) -> Self {
        let mut session = ExecutionSession::new(archs, registry, cost)
            .expect("threaded runtime needs at least one host gpu");
        session.set_workers(policy.workers);
        session.set_tier(policy.tier);
        ThreadedSigmaVp {
            session,
            policy,
            pending: Vec::new(),
            coalescible: HashMap::new(),
            next_vp: 0,
        }
    }

    /// Single-device convenience constructor (the historical signature's shape).
    pub fn single(
        arch: GpuArch,
        registry: KernelRegistry,
        cost: TransportCost,
        policy: Policy,
    ) -> Self {
        Self::new(vec![arch], registry, cost, policy)
    }

    /// Register an application to run on its own VP thread. Returns the VP id.
    pub fn spawn(&mut self, app: Box<dyn Application + Send>) -> VpId {
        let vp = VpId(self.next_vp);
        self.next_vp += 1;
        self.session.assign(vp);
        self.coalescible.insert(vp, app.characteristics().coalescible);
        self.pending.push((vp, app));
        vp
    }

    /// Launch every registered VP as a thread, wait for completion, and collect the
    /// report. A VP thread that fails — or even panics — no longer aborts the
    /// fleet: it lands in [`ThreadedReport::failed_vps`] and every healthy VP's
    /// result is still collected.
    pub fn join(mut self) -> ThreadedReport {
        let gate = match self.policy.admission {
            Admission::Fifo => None,
            Admission::RoundRobin => {
                Some(Arc::new(TurnGate::new(self.pending.iter().map(|(vp, _)| *vp).collect())))
            }
        };

        let handles: Vec<VpHandle> = self
            .pending
            .into_iter()
            .map(|(vp, app)| {
                let device = self.session.device_of(vp).expect("spawn assigned a device");
                let runtime: Arc<Mutex<HostRuntime>> = self.session.runtime(device);
                let cost = self.session.transport();
                let gate = gate.clone();
                let app_name = app.name().to_string();
                let handle = std::thread::spawn(move || {
                    let mut platform = VirtualPlatform::new(vp);
                    let mut service = GatedGpu {
                        vp,
                        inner: MultiplexedGpu::new(vp, runtime, cost)
                            .with_clock(platform.clock_handle()),
                        gate: gate.clone(),
                    };
                    let result = {
                        let mut env = AppEnv::new(&mut platform, &mut service);
                        app.run_once(&mut env)
                    };
                    if let Some(g) = &gate {
                        g.finish(vp);
                    }
                    let error = result.err();
                    let outcome = VpOutcome {
                        vp,
                        app: app.name().to_string(),
                        simulated_time_s: platform.now_s(),
                        gpu_calls: platform.stats().gpu_calls,
                        error: error.as_ref().map(|e| e.to_string()),
                    };
                    (outcome, error)
                });
                (vp, app_name, handle)
            })
            .collect();

        let (outcomes, failed_vps) = collect_vp_outcomes(handles);

        let pipeline = Pipeline::from_policy(&self.policy);
        let coalescible = self.coalescible;
        let outcome = self
            .session
            .drain_and_plan(&pipeline, &|vp| coalescible.get(&vp).copied().unwrap_or(false));
        ThreadedReport {
            outcomes,
            records: outcome.flat_records(),
            device_makespan_s: outcome.makespan_s(),
            device_records: outcome.devices.into_iter().map(|d| d.records).collect(),
            failed_vps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmavp_workloads::apps::{MergeSortApp, VectorAddApp};

    fn system(policy: Policy) -> ThreadedSigmaVp {
        let app = VectorAddApp { n: 1024 };
        let registry: KernelRegistry = app.kernels().into_iter().collect();
        ThreadedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
            policy,
        )
    }

    #[test]
    fn concurrent_vps_all_validate() {
        let mut sys = system(Policy::Fifo);
        for _ in 0..6 {
            sys.spawn(Box::new(VectorAddApp { n: 1024 }));
        }
        let report = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        assert_eq!(report.outcomes.len(), 6);
        // 6 VPs × (2 h2d + 1 kernel + 1 d2h) device jobs.
        assert_eq!(report.records.len(), 6 * 4);
        assert_eq!(report.device_records.len(), 1);
        assert!(report.device_makespan_s > 0.0);
        for o in &report.outcomes {
            assert!(o.simulated_time_s > 0.0);
            // vectorAdd issues 10 calls: 3 mallocs, 2 h2d, 1 launch, 1 d2h, 3 frees.
            assert_eq!(o.gpu_calls, 10);
        }
    }

    #[test]
    fn round_robin_policy_interleaves_deterministically() {
        let mut sys = system(Policy::RoundRobin);
        for _ in 0..3 {
            sys.spawn(Box::new(VectorAddApp { n: 512 }));
        }
        let report = sys.join();
        assert!(report.all_ok());
        // With strict turns, device jobs arrive in perfect round-robin VP order.
        let vps: Vec<u32> = report.records.iter().map(|r| r.vp.0).collect();
        let expected: Vec<u32> = (0..vps.len()).map(|i| (i % 3) as u32).collect();
        assert_eq!(vps, expected, "round-robin arrival order");
    }

    #[test]
    fn two_host_gpus_reduce_the_live_makespan() {
        // The live-runtime multi-GPU gap, closed: the same eight-VP fleet on one
        // device vs two. The planned device makespan must drop by ≥ 1.5×.
        let run = |archs: Vec<GpuArch>| {
            let app = VectorAddApp { n: 4096 };
            let registry: KernelRegistry = app.kernels().into_iter().collect();
            let mut sys =
                ThreadedSigmaVp::new(archs, registry, TransportCost::shared_memory(), Policy::Fifo);
            for _ in 0..8 {
                sys.spawn(Box::new(VectorAddApp { n: 4096 }));
            }
            let report = sys.join();
            assert!(report.all_ok(), "{:?}", report.outcomes);
            report
        };
        let one = run(vec![GpuArch::quadro_4000()]);
        let two = run(vec![GpuArch::quadro_4000(), GpuArch::quadro_4000()]);
        assert_eq!(one.records.len(), two.records.len());
        assert_eq!(two.device_records.len(), 2);
        // Least-loaded routing spreads eight VPs four-and-four.
        assert!(two.device_records.iter().all(|r| !r.is_empty()));
        let ratio = one.device_makespan_s / two.device_makespan_s;
        assert!(ratio >= 1.5, "makespan ratio {ratio:.2}");
    }

    #[test]
    fn failures_are_isolated_per_vp() {
        /// An application that launches a kernel missing from the registry.
        struct Broken;
        impl Application for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn kernels(&self) -> Vec<sigmavp_sptx::KernelProgram> {
                vec![]
            }
            fn characteristics(&self) -> sigmavp_workloads::AppTraits {
                sigmavp_workloads::AppTraits::pure_cuda()
            }
            fn run_once(&self, env: &mut AppEnv<'_>) -> Result<(), VpError> {
                let mut cuda = env.cuda();
                cuda.launch_sync("missing_kernel", 1, 1, &[])?;
                Ok(())
            }
        }

        let mut sys = system(Policy::RoundRobin);
        sys.spawn(Box::new(VectorAddApp { n: 512 }));
        sys.spawn(Box::new(Broken));
        sys.spawn(Box::new(VectorAddApp { n: 512 }));
        let report = sys.join();
        assert!(!report.all_ok());
        assert_eq!(report.outcomes.iter().filter(|o| o.error.is_some()).count(), 1);
        // The healthy VPs still completed and validated.
        assert!(report.outcomes[0].error.is_none());
        assert!(report.outcomes[2].error.is_none());
    }

    #[test]
    fn mixed_apps_share_the_device() {
        let va = VectorAddApp { n: 512 };
        let ms = MergeSortApp { n: 64 };
        let mut registry: KernelRegistry = va.kernels().into_iter().collect();
        for k in ms.kernels() {
            registry.register(k);
        }
        let mut sys = ThreadedSigmaVp::single(
            GpuArch::quadro_4000(),
            registry,
            TransportCost::shared_memory(),
            Policy::Fifo,
        );
        sys.spawn(Box::new(va));
        sys.spawn(Box::new(ms));
        let report = sys.join();
        assert!(report.all_ok(), "{:?}", report.outcomes);
        // Both kernel kinds appear in the shared log.
        let kernels: HashSet<String> = report
            .records
            .iter()
            .filter_map(|r| match &r.kind {
                crate::host::RecordKind::Kernel { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(kernels.contains("vector_add"));
        assert!(kernels.contains("bitonic_step"));
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_scheduling_policy_alias_still_compiles() {
        let mut sys = system(SchedulingPolicy::Fifo);
        sys.spawn(Box::new(VectorAddApp { n: 512 }));
        assert!(sys.join().all_ok());
    }

    #[test]
    fn turn_gate_rotation_skips_finished() {
        let gate = TurnGate::new(vec![VpId(0), VpId(1), VpId(2)]);
        gate.enter(VpId(0));
        gate.finish(VpId(0)); // now VP 1's turn
        gate.enter(VpId(1));
        gate.leave(VpId(1)); // now VP 2's turn
        gate.finish(VpId(2)); // skip to VP 1 again
        gate.enter(VpId(1)); // must not block
    }
}
