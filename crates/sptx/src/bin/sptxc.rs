//! `sptxc` — the SPTX command-line tool: check, disassemble, optimize and run
//! kernels from `.sptx` assembly files.
//!
//! ```text
//! sptxc check  kernel.sptx
//! sptxc opt    kernel.sptx               # optimized assembly on stdout
//! sptxc stats  kernel.sptx               # static instruction mix
//! sptxc run    kernel.sptx --grid 4 --block 64 --mem 4096 \
//!              --param ptr:0 --param i64:256 [--dump-f32 0..32]
//! ```
//!
//! `run` executes the kernel over a zeroed memory image of `--mem` bytes and
//! prints the dynamic profile; `--dump-f32 LO..HI` additionally prints a word
//! range of the final memory.

use std::process::ExitCode;

use sigmavp_sptx::asm;
use sigmavp_sptx::interp::{Interpreter, LaunchConfig, Memory, ParamValue};
use sigmavp_sptx::isa::InstrClass;
use sigmavp_sptx::opt::optimize;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sptxc <check|opt|stats|run> <file.sptx> \
         [--grid N] [--block N] [--mem BYTES] [--param ptr:N|i64:N|f64:X]... [--dump-f32 LO..HI]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(command), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sptxc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match asm::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sptxc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "check" => {
            println!(
                "{}: ok ({} blocks, {} static instructions, {} registers, {} params)",
                program.name(),
                program.blocks().len(),
                program.static_size(),
                program.num_regs(),
                program.num_params()
            );
            ExitCode::SUCCESS
        }
        "stats" => {
            println!("kernel {}", program.name());
            for class in InstrClass::ALL {
                println!("  {class:<7} {}", program.static_mix().get(class));
            }
            ExitCode::SUCCESS
        }
        "opt" => match optimize(&program) {
            Ok((optimized, stats)) => {
                eprintln!(
                    "sptxc: folded {} and removed {} instructions in {} passes",
                    stats.folded, stats.removed, stats.iterations
                );
                print!("{}", asm::disassemble(&optimized));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sptxc: optimizer failed: {e}");
                ExitCode::FAILURE
            }
        },
        "run" => run_command(&args[2..], &program, path),
        _ => usage(),
    }
}

fn run_command(args: &[String], program: &sigmavp_sptx::KernelProgram, path: &str) -> ExitCode {
    let mut grid = 1u32;
    let mut block = 32u32;
    let mut mem_bytes = 64 * 1024usize;
    let mut params: Vec<ParamValue> = Vec::new();
    let mut dump: Option<(u64, u64)> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Option<String> { it.next().cloned() };
        match flag.as_str() {
            "--grid" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(v) => grid = v,
                None => return usage(),
            },
            "--block" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(v) => block = v,
                None => return usage(),
            },
            "--mem" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(v) => mem_bytes = v,
                None => return usage(),
            },
            "--param" => {
                let Some(spec) = value(&mut it) else { return usage() };
                let Some((kind, raw)) = spec.split_once(':') else { return usage() };
                let parsed = match kind {
                    "ptr" => raw.parse().ok().map(ParamValue::Ptr),
                    "i64" => raw.parse().ok().map(ParamValue::I64),
                    "f64" => raw.parse().ok().map(ParamValue::F64),
                    _ => None,
                };
                match parsed {
                    Some(p) => params.push(p),
                    None => return usage(),
                }
            }
            "--dump-f32" => {
                let Some(range) = value(&mut it) else { return usage() };
                let Some((lo, hi)) = range.split_once("..") else { return usage() };
                match (lo.parse(), hi.parse()) {
                    (Ok(lo), Ok(hi)) => dump = Some((lo, hi)),
                    _ => return usage(),
                }
            }
            _ => return usage(),
        }
    }

    let mut mem = Memory::new(mem_bytes);
    match Interpreter::new().run(program, &LaunchConfig::linear(grid, block), &params, &mut mem) {
        Ok(profile) => {
            println!(
                "{}: ran {} threads, {} dynamic instructions",
                program.name(),
                profile.threads,
                profile.counts.total()
            );
            for class in InstrClass::ALL {
                let n = profile.counts.get(class);
                if n > 0 {
                    println!("  {class:<7} {n}");
                }
            }
            println!(
                "  memory: {} accesses, {} unique 128B segments",
                profile.memory.accesses, profile.memory.unique_segments
            );
            if let Some((lo, hi)) = dump {
                for word in lo..hi {
                    match mem.read_f32(word * 4) {
                        Ok(v) => println!("  f32[{word}] = {v}"),
                        Err(e) => {
                            eprintln!("sptxc: dump out of range: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sptxc: {path}: runtime fault: {e}");
            ExitCode::FAILURE
        }
    }
}
