//! Stage 1 of the tiered interpreter: predecoding kernels into flat op streams.
//!
//! The scalar interpreter walks the [`KernelProgram`] AST per thread: every
//! executed instruction re-reads an `Instr` enum with `Reg`/`Pred` wrappers,
//! re-derives its [`InstrClass`] and re-matches `Option<Reg>` index operands.
//! The warp tier instead lowers each program **once** into a
//! [`DecodedProgram`]: a flat, cache-friendly stream of [`DOp`]s with operands
//! pre-resolved to dense `u16` register indices, immediates inlined as runtime
//! [`Value`]s, per-op classes precomputed, and branch targets patched to block
//! offsets in the stream. Because ΣVP's common case is many VPs launching the
//! *same* kernels (that is what Kernel Coalescing exploits), decoded programs
//! are held in a process-global cache keyed by program identity, so repeated
//! launches decode zero times.
//!
//! The decoder also computes the per-block **immediate post-dominator**, which
//! the warp tier uses as the reconvergence point for divergent branches (see
//! [`crate::warp`]). Blocks that cannot reach a `ret` (infinite-loop arms)
//! reconverge at the virtual exit ([`EXIT`]): their lanes simply run until
//! they retire or the instruction budget aborts the warp.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use crate::interp::Value;
use crate::isa::{BinOp, CmpOp, Imm, Instr, ScalarType, Special, Terminator, UnaryOp};
use crate::program::KernelProgram;

/// Sentinel block offset for the virtual exit node: reaching it means the
/// lane retired. Used both as a reconvergence point for branches with no
/// common post-dominator and as the "no target" marker.
pub(crate) const EXIT: u32 = u32::MAX;

/// A predecoded instruction: operands resolved to dense indices, immediates
/// inlined, and the [`InstrClass`](crate::isa::InstrClass) index precomputed
/// so profiling is one array add per op instead of a per-lane rederivation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedOp {
    /// `InstrClass::index()` of this op.
    pub class: u8,
    /// The operation itself.
    pub op: DOp,
}

/// The flattened instruction forms executed by the warp tier. Mirrors
/// [`Instr`] exactly — the lowering is purely representational, never
/// semantic, which is what keeps the tiers byte-identical.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DOp {
    /// `dst = a <op> b`.
    Bin { op: BinOp, ty: ScalarType, dst: u16, a: u16, b: u16 },
    /// `dst = <op> a`.
    Un { op: UnaryOp, ty: ScalarType, dst: u16, a: u16 },
    /// `dst = a * b + c` (fused).
    Mad { ty: ScalarType, dst: u16, a: u16, b: u16, c: u16 },
    /// `dst = imm`, already lowered to a runtime [`Value`].
    MovImm { dst: u16, val: Value },
    /// `dst = src`.
    Mov { dst: u16, src: u16 },
    /// `dst = (to) src`.
    Cvt { to: ScalarType, from: ScalarType, dst: u16, src: u16 },
    /// `pred = a <cmp> b`.
    Setp { cmp: CmpOp, ty: ScalarType, pred: u8, a: u16, b: u16 },
    /// `dst = special`.
    ReadSpecial { dst: u16, special: Special },
    /// `dst = params[index]`.
    LdParam { dst: u16, index: u16 },
    /// Global-memory load; `index == u16::MAX` means no index register.
    Ld { ty: ScalarType, dst: u16, base: u16, index: u16, offset: i64 },
    /// Global-memory store; `index == u16::MAX` means no index register.
    St { ty: ScalarType, base: u16, index: u16, offset: i64, src: u16 },
}

/// Marker for "no index register" in [`DOp::Ld`]/[`DOp::St`].
pub(crate) const NO_INDEX: u16 = u16::MAX;

/// A block's span in the flat op stream plus everything the warp scheduler
/// needs: its terminator, its budget cost, and its reconvergence point.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedBlock {
    /// Offset of the block's first op in [`DecodedProgram::ops`].
    pub start: u32,
    /// Number of ops in the block.
    pub len: u32,
    /// Dynamic instructions one thread is charged per visit: `len` plus one
    /// branch for every terminator except `ret` (which is free).
    pub cost: u64,
    /// The block's terminator, with targets as stream block offsets.
    pub term: DTerm,
    /// Immediate post-dominator of this block — the reconvergence point for a
    /// divergent conditional branch here — or [`EXIT`] when the block has no
    /// post-dominator short of the virtual exit.
    pub reconv: u32,
}

/// Decoded terminator with patched targets.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DTerm {
    /// Thread exit.
    Ret,
    /// Unconditional branch.
    Bra(u32),
    /// Two-way conditional branch on a predicate lane.
    CondBra { pred: u8, if_true: u32, if_false: u32 },
}

/// A kernel lowered for the warp tier: the flat op stream plus per-block
/// metadata. Shared via `Arc` between the cache, the interpreter and the
/// worker pool.
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    /// All blocks' ops, concatenated in block order.
    pub ops: Vec<DecodedOp>,
    /// Per-block spans and terminators, indexed by `BlockId.0`.
    pub blocks: Vec<DecodedBlock>,
    /// Register file size (dense indices `0..num_regs`).
    pub num_regs: u16,
    /// Predicate file size.
    pub num_preds: u8,
}

/// Lower `program` into a [`DecodedProgram`], or `None` if the program uses a
/// feature outside the warp tier's envelope (the caller falls back to the
/// scalar tier). Today the only rejections are resource-shaped: parameter
/// indices beyond `u16::MAX` and programs with more than 2^24 blocks.
fn lower(program: &KernelProgram) -> Option<DecodedProgram> {
    let nblocks = program.blocks().len();
    if nblocks >= (1 << 24) {
        return None;
    }
    let mut ops = Vec::with_capacity(program.static_size() as usize);
    let mut blocks = Vec::with_capacity(nblocks);
    for b in program.blocks() {
        let start = ops.len() as u32;
        for i in &b.instrs {
            let class = i.class().index() as u8;
            let op = match i {
                Instr::Bin { op, ty, dst, a, b } => {
                    DOp::Bin { op: *op, ty: *ty, dst: dst.0, a: a.0, b: b.0 }
                }
                Instr::Un { op, ty, dst, a } => DOp::Un { op: *op, ty: *ty, dst: dst.0, a: a.0 },
                Instr::Mad { ty, dst, a, b, c } => {
                    DOp::Mad { ty: *ty, dst: dst.0, a: a.0, b: b.0, c: c.0 }
                }
                Instr::MovImm { dst, imm } => {
                    let val = match imm {
                        Imm::F(v) => Value::F(*v),
                        Imm::I(v) => Value::I(*v),
                    };
                    DOp::MovImm { dst: dst.0, val }
                }
                Instr::Mov { dst, src } => DOp::Mov { dst: dst.0, src: src.0 },
                Instr::Cvt { to, from, dst, src } => {
                    DOp::Cvt { to: *to, from: *from, dst: dst.0, src: src.0 }
                }
                Instr::Setp { cmp, ty, pred, a, b } => {
                    DOp::Setp { cmp: *cmp, ty: *ty, pred: pred.0, a: a.0, b: b.0 }
                }
                Instr::ReadSpecial { dst, special } => {
                    DOp::ReadSpecial { dst: dst.0, special: *special }
                }
                Instr::LdParam { dst, index } => {
                    let index = u16::try_from(*index).ok()?;
                    DOp::LdParam { dst: dst.0, index }
                }
                Instr::Ld { ty, dst, base, index, offset } => DOp::Ld {
                    ty: *ty,
                    dst: dst.0,
                    base: base.0,
                    index: index.map_or(NO_INDEX, |r| r.0),
                    offset: *offset,
                },
                Instr::St { ty, base, index, offset, src } => DOp::St {
                    ty: *ty,
                    base: base.0,
                    index: index.map_or(NO_INDEX, |r| r.0),
                    offset: *offset,
                    src: src.0,
                },
            };
            ops.push(DecodedOp { class, op });
        }
        let len = (ops.len() as u32) - start;
        let (term, branch_cost) = match b.terminator {
            Terminator::Ret => (DTerm::Ret, 0u64),
            Terminator::Bra(t) => (DTerm::Bra(t.0), 1),
            Terminator::CondBra { pred, if_true, if_false } => {
                (DTerm::CondBra { pred: pred.0, if_true: if_true.0, if_false: if_false.0 }, 1)
            }
        };
        blocks.push(DecodedBlock {
            start,
            len,
            cost: len as u64 + branch_cost,
            term,
            reconv: EXIT,
        });
    }

    let ipdom = immediate_postdominators(&blocks);
    for (b, r) in blocks.iter_mut().zip(ipdom) {
        b.reconv = r;
    }

    Some(DecodedProgram {
        ops,
        blocks,
        num_regs: program.num_regs(),
        num_preds: program.num_preds(),
    })
}

/// Successor block offsets of a decoded terminator (`ret` has none).
fn successors(term: DTerm) -> [Option<u32>; 2] {
    match term {
        DTerm::Ret => [None, None],
        DTerm::Bra(t) => [Some(t), None],
        DTerm::CondBra { if_true, if_false, .. } => [Some(if_true), Some(if_false)],
    }
}

/// Immediate post-dominator of every block over the CFG augmented with a
/// virtual exit that every `ret` block flows into; [`EXIT`] where none exists
/// (the block cannot reach a `ret`, or the exit itself is the closest
/// post-dominator).
///
/// Uses the classic iterate-to-fixpoint set formulation: block counts are
/// tiny (workload kernels have < 20 blocks), so bitset intersection beats a
/// fancier Cooper–Harvey–Kennedy walk in both code size and constant factor.
fn immediate_postdominators(blocks: &[DecodedBlock]) -> Vec<u32> {
    let n = blocks.len();
    let words = n.div_ceil(64);
    let full = |sets: &mut Vec<u64>| {
        for w in sets.iter_mut() {
            *w = u64::MAX;
        }
    };
    // pdom[b] over real blocks only; the virtual exit post-dominates
    // everything and is represented implicitly. `reaches_exit[b]` tracks
    // whether b can reach a ret at all.
    let mut reaches_exit = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let r = match blocks[b].term {
                DTerm::Ret => true,
                t => successors(t)
                    .into_iter()
                    .flatten()
                    .any(|s| reaches_exit.get(s as usize).copied().unwrap_or(false)),
            };
            if r && !reaches_exit[b] {
                reaches_exit[b] = true;
                changed = true;
            }
        }
    }

    let mut pdom: Vec<Vec<u64>> = vec![vec![u64::MAX; words]; n];
    for (b, set) in pdom.iter_mut().enumerate() {
        if let DTerm::Ret = blocks[b].term {
            // A ret block's only post-dominators are itself (+ virtual exit).
            for w in set.iter_mut() {
                *w = 0;
            }
            set[b / 64] |= 1 << (b % 64);
        }
    }
    let mut tmp = vec![0u64; words];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            if matches!(blocks[b].term, DTerm::Ret) {
                continue;
            }
            full(&mut tmp);
            let mut any_succ = false;
            for s in successors(blocks[b].term).into_iter().flatten() {
                let s = s as usize;
                if s >= n {
                    continue;
                }
                any_succ = true;
                for (t, p) in tmp.iter_mut().zip(&pdom[s]) {
                    *t &= *p;
                }
            }
            if !any_succ {
                for w in tmp.iter_mut() {
                    *w = 0;
                }
            }
            tmp[b / 64] |= 1 << (b % 64);
            if tmp != pdom[b] {
                pdom[b].copy_from_slice(&tmp);
                changed = true;
            }
        }
    }

    let count = |set: &[u64]| set.iter().map(|w| w.count_ones() as usize).sum::<usize>();
    (0..n)
        .map(|b| {
            if !reaches_exit[b] {
                return EXIT;
            }
            // Strict post-dominators of b; the immediate one is the member
            // whose own pdom set is exactly that strict set.
            let strict: Vec<usize> =
                (0..n).filter(|&q| q != b && pdom[b][q / 64] & (1 << (q % 64)) != 0).collect();
            if strict.is_empty() {
                return EXIT;
            }
            strict
                .iter()
                .copied()
                .find(|&p| count(&pdom[p]) == strict.len())
                .map_or(EXIT, |p| p as u32)
        })
        .collect()
}

/// Structural hash of a program, strong enough to bucket the decode cache
/// (hits are verified with full `PartialEq` afterwards, so collisions only
/// cost a compare). Floats hash by bit pattern.
fn structural_hash(program: &KernelProgram) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    program.name().hash(&mut h);
    program.num_regs().hash(&mut h);
    program.num_preds().hash(&mut h);
    program.num_params().hash(&mut h);
    program.blocks().len().hash(&mut h);
    for b in program.blocks() {
        b.instrs.len().hash(&mut h);
        for i in &b.instrs {
            hash_instr(i, &mut h);
        }
        match b.terminator {
            Terminator::Ret => 0u8.hash(&mut h),
            Terminator::Bra(t) => {
                1u8.hash(&mut h);
                t.0.hash(&mut h);
            }
            Terminator::CondBra { pred, if_true, if_false } => {
                2u8.hash(&mut h);
                pred.0.hash(&mut h);
                if_true.0.hash(&mut h);
                if_false.0.hash(&mut h);
            }
        }
    }
    h.finish()
}

fn hash_instr(i: &Instr, h: &mut impl Hasher) {
    std::mem::discriminant(i).hash(h);
    match i {
        Instr::Bin { op, ty, dst, a, b } => {
            (*op as u8, *ty as u8, dst.0, a.0, b.0).hash(h);
        }
        Instr::Un { op, ty, dst, a } => (*op as u8, *ty as u8, dst.0, a.0).hash(h),
        Instr::Mad { ty, dst, a, b, c } => (*ty as u8, dst.0, a.0, b.0, c.0).hash(h),
        Instr::MovImm { dst, imm } => {
            dst.0.hash(h);
            match imm {
                Imm::F(v) => (0u8, v.to_bits()).hash(h),
                Imm::I(v) => (1u8, *v).hash(h),
            }
        }
        Instr::Mov { dst, src } => (dst.0, src.0).hash(h),
        Instr::Cvt { to, from, dst, src } => (*to as u8, *from as u8, dst.0, src.0).hash(h),
        Instr::Setp { cmp, ty, pred, a, b } => {
            (*cmp as u8, *ty as u8, pred.0, a.0, b.0).hash(h);
        }
        Instr::ReadSpecial { dst, special } => (dst.0, *special as u8).hash(h),
        Instr::LdParam { dst, index } => (dst.0, *index).hash(h),
        Instr::Ld { ty, dst, base, index, offset } => {
            (*ty as u8, dst.0, base.0, index.map(|r| r.0), *offset).hash(h);
        }
        Instr::St { ty, base, index, offset, src } => {
            (*ty as u8, base.0, index.map(|r| r.0), *offset, src.0).hash(h);
        }
    }
}

/// Cached decode outcome: a program either lowered successfully (shared
/// stream) or was rejected (cached too, so the scalar fallback also skips
/// re-lowering on every launch).
type CacheSlot = (KernelProgram, Option<Arc<DecodedProgram>>);

/// Evict everything once the cache holds this many programs. Real fleets run
/// dozens of kernels; this bound only guards unbounded program synthesis
/// (e.g. fuzzers), where losing the cache is harmless.
const CACHE_CAPACITY: usize = 512;

fn cache() -> &'static Mutex<HashMap<u64, Vec<CacheSlot>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Vec<CacheSlot>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of programs currently held in the decode cache (for tests).
#[cfg(test)]
pub(crate) fn cached_programs() -> usize {
    cache().lock().expect("decode cache poisoned").values().map(Vec::len).sum()
}

/// Decode `program`, consulting the process-global cache: repeated launches
/// of the same kernel (the common ΣVP case) decode zero times. Returns
/// `None` for programs the decoder rejects — the caller runs the scalar
/// tier instead.
pub(crate) fn decode(program: &KernelProgram) -> Option<Arc<DecodedProgram>> {
    let key = structural_hash(program);
    {
        let map = cache().lock().expect("decode cache poisoned");
        if let Some(slots) = map.get(&key) {
            if let Some((_, dec)) = slots.iter().find(|(p, _)| p == program) {
                let r = sigmavp_telemetry::recorder();
                if r.enabled() {
                    r.count("sptx.decode.hits", 1);
                }
                return dec.clone();
            }
        }
    }
    // Lower outside the lock; duplicate work on a race is harmless.
    let dec = lower(program).map(Arc::new);
    let mut map = cache().lock().expect("decode cache poisoned");
    if map.values().map(Vec::len).sum::<usize>() >= CACHE_CAPACITY {
        map.clear();
    }
    let slots = map.entry(key).or_default();
    let out = match slots.iter().find(|(p, _)| p == program) {
        Some((_, existing)) => existing.clone(),
        None => {
            slots.push((program.clone(), dec.clone()));
            dec
        }
    };
    let cached = map.values().map(Vec::len).sum::<usize>();
    drop(map);
    let r = sigmavp_telemetry::recorder();
    if r.enabled() {
        r.count("sptx.decode.misses", 1);
        r.gauge_set("sptx.decode.programs_cached", cached as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{BinOp, InstrClass, ScalarType};

    fn loop_program() -> KernelProgram {
        // entry -> header -> {body -> header, exit(ret)}
        let mut b = ProgramBuilder::new("loop");
        let (i, n, one) = (b.reg(), b.reg(), b.reg());
        let p = b.pred();
        b.mov_imm_i(i, 0).mov_imm_i(n, 4).mov_imm_i(one, 1);
        let header = b.declare_block();
        let body = b.declare_block();
        let exit = b.declare_block();
        b.bra(header);
        b.switch_to(header);
        b.setp(crate::isa::CmpOp::Lt, ScalarType::I64, p, i, n).cond_bra(p, body, exit);
        b.switch_to(body);
        b.binop(BinOp::Add, ScalarType::I64, i, i, one).bra(header);
        b.switch_to(exit);
        b.ret();
        b.build().unwrap()
    }

    #[test]
    fn lowering_preserves_shape_and_classes() {
        let p = loop_program();
        let d = lower(&p).unwrap();
        assert_eq!(d.blocks.len(), p.blocks().len());
        assert_eq!(d.ops.len() as u64, p.static_mix().total() - d.branch_terminators());
        // Entry block: 3 mov-imm (Bit class), cost 3 + 1 branch.
        assert_eq!(d.blocks[0].len, 3);
        assert_eq!(d.blocks[0].cost, 4);
        assert_eq!(d.ops[0].class, InstrClass::Bit.index() as u8);
        // Exit block: ret is free.
        let exit = d.blocks.last().unwrap();
        assert_eq!(exit.cost, 0);
        assert!(matches!(exit.term, DTerm::Ret));
    }

    impl DecodedProgram {
        fn branch_terminators(&self) -> u64 {
            self.blocks.iter().filter(|b| !matches!(b.term, DTerm::Ret)).count() as u64
        }
    }

    #[test]
    fn loop_header_reconverges_at_exit() {
        let p = loop_program();
        let d = lower(&p).unwrap();
        // Block 1 is the loop header (entry=0, header=1, body=2, exit=3): its
        // divergent branch must reconverge at the loop exit.
        assert!(matches!(d.blocks[1].term, DTerm::CondBra { .. }));
        assert_eq!(d.blocks[1].reconv, 3);
        // The body's sole successor path rejoins at the header.
        assert_eq!(d.blocks[2].reconv, 1);
    }

    #[test]
    fn infinite_loop_arms_reconverge_at_exit_sentinel() {
        // entry: cond_bra p -> spin | done; spin: bra spin; done: ret.
        let mut b = ProgramBuilder::new("spin");
        let (x, y) = (b.reg(), b.reg());
        let p = b.pred();
        b.mov_imm_i(x, 0).mov_imm_i(y, 1).setp(crate::isa::CmpOp::Lt, ScalarType::I64, p, x, y);
        let spin = b.declare_block();
        let done = b.declare_block();
        b.cond_bra(p, spin, done);
        b.switch_to(spin);
        b.bra(spin);
        b.switch_to(done);
        b.ret();
        let prog = b.build().unwrap();
        let d = lower(&prog).unwrap();
        // Post-dominance ranges over terminating paths only, so the entry's
        // branch reconverges at `done`; the spin block itself can never reach
        // a ret and gets the virtual-exit sentinel (its lanes run until they
        // retire or the budget aborts the warp).
        assert_eq!(d.blocks[0].reconv, 2);
        assert_eq!(d.blocks[1].reconv, EXIT, "spin never reaches a ret");
    }

    #[test]
    fn cache_hits_after_first_decode() {
        let p = loop_program();
        let first = decode(&p).unwrap();
        let again = decode(&p).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "second decode must be a cache hit");
        assert!(cached_programs() >= 1);
        // A structurally different program gets its own entry.
        let mut b = ProgramBuilder::new("loop");
        let r = b.reg();
        b.mov_imm_i(r, 42).ret();
        let q = b.build().unwrap();
        let other = decode(&q).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
    }
}
