//! # SPTX — a small PTX-like virtual ISA for simulated GPUs
//!
//! SPTX is the kernel representation used throughout the ΣVP framework. It plays the
//! role that NVIDIA PTX plays in the original DAC'15 paper: a portable, typed,
//! block-structured intermediate representation that can be
//!
//! * **executed** by a scalar [`interp::Interpreter`] over a full CUDA-style grid
//!   (this is what both the "GPU emulation on VP" path and the functional layer of the
//!   host-GPU device model do),
//! * **profiled** — every execution produces per-instruction-class counters and
//!   per-basic-block iteration counts, exactly the inputs required by the paper's
//!   profile-based execution analysis (Eq. 1), and
//! * **statically analyzed** — per-block instruction counts by class (the paper's
//!   μ\{b,T\}) are available without executing anything.
//!
//! The instruction classes mirror the paper's set: `{FP32, FP64, Int, Bit, Branch,
//! Ld, St}` (see [`isa::InstrClass`]).
//!
//! ## Quick example
//!
//! Build and run a `vectorAdd`-style kernel on a 2-block × 4-thread grid:
//!
//! ```
//! use sigmavp_sptx::builder::ProgramBuilder;
//! use sigmavp_sptx::isa::{BinOp, ScalarType, Special};
//! use sigmavp_sptx::interp::{Interpreter, LaunchConfig, Memory, ParamValue};
//!
//! # fn main() -> Result<(), sigmavp_sptx::SptxError> {
//! let mut b = ProgramBuilder::new("vector_add");
//! let (tid, ctaid, ntid) = (b.reg(), b.reg(), b.reg());
//! let (idx, a, x, y, sum) = (b.reg(), b.reg(), b.reg(), b.reg(), b.reg());
//! b.read_special(tid, Special::TidX)
//!     .read_special(ctaid, Special::CtaIdX)
//!     .read_special(ntid, Special::NTidX)
//!     .binop(BinOp::Mul, ScalarType::I64, idx, ctaid, ntid)
//!     .binop(BinOp::Add, ScalarType::I64, idx, idx, tid)
//!     .ld_param(a, 0)
//!     .ld_indexed(ScalarType::F32, x, a, idx, 0)
//!     .ld_param(a, 1)
//!     .ld_indexed(ScalarType::F32, y, a, idx, 0)
//!     .binop(BinOp::Add, ScalarType::F32, sum, x, y)
//!     .ld_param(a, 2)
//!     .st_indexed(ScalarType::F32, a, idx, 0, sum)
//!     .ret();
//! let program = b.build()?;
//!
//! let mut mem = Memory::new(3 * 8 * 4);
//! for i in 0..8 {
//!     mem.write_f32(i * 4, i as f32)?;
//!     mem.write_f32(32 + i * 4, 10.0 * i as f32)?;
//! }
//! let cfg = LaunchConfig::linear(2, 4);
//! let params = vec![ParamValue::Ptr(0), ParamValue::Ptr(32), ParamValue::Ptr(64)];
//! let profile = Interpreter::new().run(&program, &cfg, &params, &mut mem)?;
//!
//! assert_eq!(mem.read_f32(64 + 3 * 4)?, 33.0);
//! assert!(profile.counts.total() > 0);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod counters;
mod decode;
pub mod error;
pub mod exec;
pub mod interp;
pub mod isa;
pub mod opt;
mod parallel;
pub mod program;
pub mod validate;
mod warp;

pub use error::SptxError;
pub use interp::Tier;
pub use program::KernelProgram;
