//! The SPTX instruction set: registers, scalar types, operations and instruction
//! classes.
//!
//! The classification into [`InstrClass`] mirrors the instruction-type set used by the
//! ΣVP paper's estimation equations: `i ∈ {FP32, FP64, Int, Bit, B, Ld, St}`.

use std::fmt;

/// A virtual general-purpose register.
///
/// SPTX is an infinite-register IR (like PTX before register allocation); registers
/// are identified by a dense `u16` index assigned by the
/// [`ProgramBuilder`](crate::builder::ProgramBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A predicate (boolean) register, written by [`Instr::Setp`] and consumed by
/// conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(pub u8);

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a basic block within a [`KernelProgram`](crate::program::KernelProgram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Scalar data types supported by SPTX arithmetic and memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// 64-bit signed integer (SPTX's only integer width; narrower loads/stores
    /// sign-extend).
    I64,
}

impl ScalarType {
    /// Width of a value of this type in bytes when loaded from or stored to memory.
    pub fn width(self) -> u64 {
        match self {
            ScalarType::F32 => 4,
            ScalarType::F64 => 8,
            ScalarType::I64 => 8,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::F32 => write!(f, "f32"),
            ScalarType::F64 => write!(f, "f64"),
            ScalarType::I64 => write!(f, "i64"),
        }
    }
}

/// Instruction classes used for profiling and for the paper's per-class estimation
/// models (σ, τ, power components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrClass {
    /// Single-precision floating point arithmetic.
    Fp32,
    /// Double-precision floating point arithmetic.
    Fp64,
    /// Integer arithmetic (including address arithmetic).
    Int,
    /// Bitwise / logical operations and data movement between registers.
    Bit,
    /// Control flow (branches, the paper's class `B`).
    Branch,
    /// Global-memory loads.
    Ld,
    /// Global-memory stores.
    St,
}

impl InstrClass {
    /// All classes in a fixed order, matching the paper's enumeration.
    pub const ALL: [InstrClass; 7] = [
        InstrClass::Fp32,
        InstrClass::Fp64,
        InstrClass::Int,
        InstrClass::Bit,
        InstrClass::Branch,
        InstrClass::Ld,
        InstrClass::St,
    ];

    /// Dense index of this class, suitable for indexing per-class arrays.
    pub fn index(self) -> usize {
        match self {
            InstrClass::Fp32 => 0,
            InstrClass::Fp64 => 1,
            InstrClass::Int => 2,
            InstrClass::Bit => 3,
            InstrClass::Branch => 4,
            InstrClass::Ld => 5,
            InstrClass::St => 6,
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrClass::Fp32 => write!(f, "fp32"),
            InstrClass::Fp64 => write!(f, "fp64"),
            InstrClass::Int => write!(f, "int"),
            InstrClass::Bit => write!(f, "bit"),
            InstrClass::Branch => write!(f, "branch"),
            InstrClass::Ld => write!(f, "ld"),
            InstrClass::St => write!(f, "st"),
        }
    }
}

/// Binary arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division. Integer division by zero is a runtime error.
    Div,
    /// Remainder (integer types only behave like `%`; float uses `rem_euclid`).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and (integer; classified as [`InstrClass::Bit`]).
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

impl BinOp {
    /// Whether this operation belongs to the bitwise class regardless of type.
    pub fn is_bitwise(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr)
    }
}

/// Unary arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root (float types only; integer operands are converted).
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Bitwise not (classified as [`InstrClass::Bit`]).
    Not,
}

impl UnaryOp {
    /// Whether this operation belongs to the bitwise class.
    pub fn is_bitwise(self) -> bool {
        matches!(self, UnaryOp::Not)
    }

    /// Whether this is a transcendental (multi-cycle SFU) operation.
    pub fn is_transcendental(self) -> bool {
        matches!(self, UnaryOp::Sqrt | UnaryOp::Exp | UnaryOp::Log | UnaryOp::Sin | UnaryOp::Cos)
    }
}

/// Comparison operators for [`Instr::Setp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Special (read-only) per-thread registers, mirroring PTX's `%tid`, `%ntid`,
/// `%ctaid`, `%nctaid` along the x dimension plus a flattened global thread id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Thread index within its block (`threadIdx.x`).
    TidX,
    /// Threads per block (`blockDim.x`).
    NTidX,
    /// Block index within the grid (`blockIdx.x`).
    CtaIdX,
    /// Blocks per grid (`gridDim.x`).
    NCtaIdX,
    /// Flattened global thread index (`blockIdx.x * blockDim.x + threadIdx.x`).
    GlobalTid,
}

/// An immediate operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imm {
    /// Floating-point immediate (used for both f32 and f64 destinations).
    F(f64),
    /// Integer immediate.
    I(i64),
}

/// A non-terminator SPTX instruction.
///
/// Every instruction is classified into exactly one [`InstrClass`] by
/// [`Instr::class`]; the classification drives profiling, timing and power models.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = a <op> b` with operands interpreted as `ty`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Operand interpretation type.
        ty: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = <op> a` with the operand interpreted as `ty`.
    Un {
        /// The operation.
        op: UnaryOp,
        /// Operand interpretation type.
        ty: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Reg,
    },
    /// Fused multiply-add `dst = a * b + c` (counts as one instruction of the float
    /// class, like PTX `mad`/`fma`).
    Mad {
        /// Operand interpretation type.
        ty: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Reg,
        /// Multiplier.
        b: Reg,
        /// Addend.
        c: Reg,
    },
    /// Load an immediate into a register.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: Imm,
    },
    /// Copy one register to another (classified as [`InstrClass::Bit`], like PTX
    /// `mov`).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Convert between scalar types: `dst = (to) src`.
    Cvt {
        /// Destination type.
        to: ScalarType,
        /// Source type.
        from: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Set a predicate from a typed comparison: `p = a <cmp> b`.
    Setp {
        /// Comparison operator.
        cmp: CmpOp,
        /// Operand interpretation type.
        ty: ScalarType,
        /// Destination predicate.
        pred: Pred,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Read a special register.
    ReadSpecial {
        /// Destination register.
        dst: Reg,
        /// The special register to read.
        special: Special,
    },
    /// Load kernel parameter `index` into a register. Pointer parameters load the
    /// base byte address; scalar parameters load the value.
    LdParam {
        /// Destination register.
        dst: Reg,
        /// Parameter slot.
        index: usize,
    },
    /// Global-memory load: `dst = *(ty*)(base + index * ty.width() + offset)`.
    ///
    /// `index` may be [`None`] for a direct `base + offset` access.
    Ld {
        /// Element type (determines access width).
        ty: ScalarType,
        /// Destination register.
        dst: Reg,
        /// Register holding the base byte address.
        base: Reg,
        /// Optional element index register (scaled by the type width).
        index: Option<Reg>,
        /// Constant byte offset.
        offset: i64,
    },
    /// Global-memory store: `*(ty*)(base + index * ty.width() + offset) = src`.
    St {
        /// Element type (determines access width).
        ty: ScalarType,
        /// Register holding the base byte address.
        base: Reg,
        /// Optional element index register (scaled by the type width).
        index: Option<Reg>,
        /// Constant byte offset.
        offset: i64,
        /// Value register to store.
        src: Reg,
    },
}

impl Instr {
    /// The paper's instruction class of this instruction.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Bin { op, ty, .. } => {
                if op.is_bitwise() {
                    InstrClass::Bit
                } else {
                    class_of_type(*ty)
                }
            }
            Instr::Un { op, ty, .. } => {
                if op.is_bitwise() {
                    InstrClass::Bit
                } else {
                    class_of_type(*ty)
                }
            }
            Instr::Mad { ty, .. } => class_of_type(*ty),
            Instr::MovImm { .. } | Instr::Mov { .. } => InstrClass::Bit,
            Instr::Cvt { to, .. } => class_of_type(*to),
            Instr::Setp { ty, .. } => class_of_type(*ty),
            Instr::ReadSpecial { .. } => InstrClass::Int,
            Instr::LdParam { .. } => InstrClass::Bit,
            Instr::Ld { .. } => InstrClass::Ld,
            Instr::St { .. } => InstrClass::St,
        }
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Bin { a, b, .. } => vec![*a, *b],
            Instr::Un { a, .. } => vec![*a],
            Instr::Mad { a, b, c, .. } => vec![*a, *b, *c],
            Instr::MovImm { .. } => vec![],
            Instr::Mov { src, .. } => vec![*src],
            Instr::Cvt { src, .. } => vec![*src],
            Instr::Setp { a, b, .. } => vec![*a, *b],
            Instr::ReadSpecial { .. } | Instr::LdParam { .. } => vec![],
            Instr::Ld { base, index, .. } => {
                let mut v = vec![*base];
                v.extend(index.iter().copied());
                v
            }
            Instr::St { base, index, src, .. } => {
                let mut v = vec![*base, *src];
                v.extend(index.iter().copied());
                v
            }
        }
    }

    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Mad { dst, .. }
            | Instr::MovImm { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Cvt { dst, .. }
            | Instr::ReadSpecial { dst, .. }
            | Instr::LdParam { dst, .. }
            | Instr::Ld { dst, .. } => Some(*dst),
            Instr::Setp { .. } | Instr::St { .. } => None,
        }
    }
}

fn class_of_type(ty: ScalarType) -> InstrClass {
    match ty {
        ScalarType::F32 => InstrClass::Fp32,
        ScalarType::F64 => InstrClass::Fp64,
        ScalarType::I64 => InstrClass::Int,
    }
}

/// The terminator of a basic block. Every terminator counts as one
/// [`InstrClass::Branch`] instruction except [`Terminator::Ret`], which is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional branch.
    Bra(BlockId),
    /// Two-way conditional branch on a predicate.
    CondBra {
        /// The predicate to test.
        pred: Pred,
        /// Target when the predicate is true.
        if_true: BlockId,
        /// Target when the predicate is false.
        if_false: BlockId,
    },
    /// Return from the kernel (thread exit).
    Ret,
}

impl Terminator {
    /// Basic blocks this terminator can transfer control to.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Bra(t) => vec![*t],
            Terminator::CondBra { if_true, if_false, .. } => vec![*if_true, *if_false],
            Terminator::Ret => vec![],
        }
    }

    /// Whether executing this terminator consumes a branch instruction slot.
    pub fn is_branch(&self) -> bool {
        !matches!(self, Terminator::Ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_follows_type_for_arithmetic() {
        let i =
            Instr::Bin { op: BinOp::Add, ty: ScalarType::F64, dst: Reg(0), a: Reg(1), b: Reg(2) };
        assert_eq!(i.class(), InstrClass::Fp64);
        let i =
            Instr::Bin { op: BinOp::Add, ty: ScalarType::F32, dst: Reg(0), a: Reg(1), b: Reg(2) };
        assert_eq!(i.class(), InstrClass::Fp32);
        let i =
            Instr::Bin { op: BinOp::Add, ty: ScalarType::I64, dst: Reg(0), a: Reg(1), b: Reg(2) };
        assert_eq!(i.class(), InstrClass::Int);
    }

    #[test]
    fn bitwise_ops_are_bit_class_regardless_of_type() {
        let i =
            Instr::Bin { op: BinOp::Xor, ty: ScalarType::I64, dst: Reg(0), a: Reg(1), b: Reg(2) };
        assert_eq!(i.class(), InstrClass::Bit);
        let i = Instr::Un { op: UnaryOp::Not, ty: ScalarType::I64, dst: Reg(0), a: Reg(1) };
        assert_eq!(i.class(), InstrClass::Bit);
    }

    #[test]
    fn memory_ops_have_ld_st_classes() {
        let ld =
            Instr::Ld { ty: ScalarType::F32, dst: Reg(0), base: Reg(1), index: None, offset: 0 };
        assert_eq!(ld.class(), InstrClass::Ld);
        let st =
            Instr::St { ty: ScalarType::F32, base: Reg(1), index: None, offset: 0, src: Reg(0) };
        assert_eq!(st.class(), InstrClass::St);
    }

    #[test]
    fn def_use_sets_are_correct() {
        let i = Instr::Mad { ty: ScalarType::F32, dst: Reg(9), a: Reg(1), b: Reg(2), c: Reg(3) };
        assert_eq!(i.def(), Some(Reg(9)));
        assert_eq!(i.uses(), vec![Reg(1), Reg(2), Reg(3)]);

        let st = Instr::St {
            ty: ScalarType::F64,
            base: Reg(4),
            index: Some(Reg(5)),
            offset: 8,
            src: Reg(6),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![Reg(4), Reg(6), Reg(5)]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Ret.successors(), vec![]);
        assert_eq!(Terminator::Bra(BlockId(3)).successors(), vec![BlockId(3)]);
        let c = Terminator::CondBra { pred: Pred(0), if_true: BlockId(1), if_false: BlockId(2) };
        assert_eq!(c.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(c.is_branch());
        assert!(!Terminator::Ret.is_branch());
    }

    #[test]
    fn instr_class_indices_are_dense_and_unique() {
        let mut seen = [false; 7];
        for c in InstrClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Pred(1).to_string(), "p1");
        assert_eq!(ScalarType::F64.to_string(), "f64");
        assert_eq!(InstrClass::Branch.to_string(), "branch");
    }

    #[test]
    fn scalar_widths() {
        assert_eq!(ScalarType::F32.width(), 4);
        assert_eq!(ScalarType::F64.width(), 8);
        assert_eq!(ScalarType::I64.width(), 8);
    }
}
