//! Block-parallel grid execution with a deterministic, byte-identical merge.
//!
//! SPTX has no inter-thread communication primitives (no shared memory,
//! barriers or atomics), so thread blocks are independent and can execute
//! concurrently. The contract of this module is that the parallel path is
//! **observationally identical** to the sequential interpreter — same final
//! memory bytes, same [`ExecutionProfile`], same error value — for every
//! program whose blocks do not read locations written by other blocks (the
//! only behaviour the ISA leaves undefined; the sequential interpreter's
//! ordering of such races is an implementation accident, not a guarantee).
//!
//! How the contract is met:
//!
//! * **Isolation** — each block executes against an [`OverlayMem`]: reads hit
//!   the launch-entry base memory unless the block itself wrote the location;
//!   writes go to a private overlay *and* an append-only journal. Blocks
//!   therefore never observe each other mid-launch.
//! * **Deterministic replay** — after all workers finish, journals are
//!   replayed into the real memory in ascending `ctaid` order (entries within
//!   a block are already in `(tid, program)` order), so overlapping writes
//!   resolve exactly as the sequential `for ctaid { for tid { .. } }` loop
//!   would, including last-writer-wins races *between* journal entries of
//!   different blocks.
//! * **First-error selection** — a worker stops claiming blocks past the
//!   lowest known-faulting `ctaid`; the merge walk replays completed blocks
//!   up to that block, replays its partial journal, and returns its error —
//!   the same error and the same partial memory state the sequential
//!   interpreter produces.
//! * **Exact budget accounting** — the sequential instruction budget is
//!   cumulative across the whole launch. Each parallel block runs under the
//!   full budget (a block can never need more than the launch allows), and
//!   the merge walk re-accumulates per-block counts in `ctaid` order; the
//!   first block whose count crosses the remaining budget is re-executed
//!   sequentially on the merged memory with the cumulative count primed, so
//!   the abort happens at the exact instruction — and with the exact partial
//!   writes — of the sequential run.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::counters::{ExecutionProfile, MemoryTraceSummary, SegmentSet};
use crate::decode::DecodedProgram;
use crate::error::SptxError;
use crate::exec::WorkerPool;
use crate::interp::{DataSpace, Interpreter, LaunchConfig, Memory, ParamValue, Value};
use crate::isa::BlockId;
use crate::program::KernelProgram;
use crate::warp::{CtaCounters, CtaOutcome, WarpExec, WarpStats};

/// One journaled global-memory write: up to 8 little-endian bytes at `addr`.
struct JournalEntry {
    addr: u64,
    bytes: [u8; 8],
    width: u8,
}

/// Identity-strength hasher for 8-byte-aligned slot indices (splitmix-style
/// finalizer); cheaper than SipHash on the per-access overlay lookups. Also
/// used by the warp tier's store-slot hazard map.
#[derive(Default)]
pub(crate) struct SlotHasher(u64);

impl Hasher for SlotHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        let mut x = n;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        self.0 = x;
    }
}

/// Overlay slot: one 8-byte-aligned span of block-private bytes.
#[derive(Clone, Copy)]
struct Slot {
    bytes: [u8; 8],
    mask: u8,
}

type SlotMap = HashMap<u64, Slot, BuildHasherDefault<SlotHasher>>;

/// A block's view of global memory: launch-entry base bytes shadowed by the
/// block's own writes, with every write also journaled for ordered replay.
struct OverlayMem<'a> {
    base: &'a Memory,
    slots: &'a mut SlotMap,
    journal: &'a mut Vec<JournalEntry>,
}

impl OverlayMem<'_> {
    fn read<const W: usize>(&self, addr: u64) -> Result<[u8; W], SptxError> {
        let a = self.base.check(addr, W as u64)?;
        let mut out = [0u8; W];
        out.copy_from_slice(&self.base.as_bytes()[a..a + W]);
        if !self.slots.is_empty() {
            let first = addr >> 3;
            let last = (addr + W as u64 - 1) >> 3;
            for s in first..=last {
                if let Some(slot) = self.slots.get(&s) {
                    for off in 0..8u64 {
                        if slot.mask & (1 << off) != 0 {
                            let p = s * 8 + off;
                            if p >= addr && p < addr + W as u64 {
                                out[(p - addr) as usize] = slot.bytes[off as usize];
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn write(&mut self, addr: u64, src: &[u8]) -> Result<(), SptxError> {
        self.base.check(addr, src.len() as u64)?;
        let mut bytes = [0u8; 8];
        bytes[..src.len()].copy_from_slice(src);
        self.journal.push(JournalEntry { addr, bytes, width: src.len() as u8 });
        let first = addr >> 3;
        let last = (addr + src.len() as u64 - 1) >> 3;
        for s in first..=last {
            let slot = self.slots.entry(s).or_insert(Slot { bytes: [0; 8], mask: 0 });
            for off in 0..8u64 {
                let p = s * 8 + off;
                if p >= addr && p < addr + src.len() as u64 {
                    slot.bytes[off as usize] = src[(p - addr) as usize];
                    slot.mask |= 1 << off;
                }
            }
        }
        Ok(())
    }
}

impl DataSpace for OverlayMem<'_> {
    fn read_f32(&self, addr: u64) -> Result<f32, SptxError> {
        Ok(f32::from_le_bytes(self.read::<4>(addr)?))
    }
    fn read_f64(&self, addr: u64) -> Result<f64, SptxError> {
        Ok(f64::from_le_bytes(self.read::<8>(addr)?))
    }
    fn read_i64(&self, addr: u64) -> Result<i64, SptxError> {
        Ok(i64::from_le_bytes(self.read::<8>(addr)?))
    }
    fn write_f32(&mut self, addr: u64, v: f32) -> Result<(), SptxError> {
        self.write(addr, &v.to_le_bytes())
    }
    fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), SptxError> {
        self.write(addr, &v.to_le_bytes())
    }
    fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), SptxError> {
        self.write(addr, &v.to_le_bytes())
    }
    fn check_span(&self, addr: u64, len: u64) -> Result<(), SptxError> {
        self.base.check(addr, len).map(|_| ())
    }
}

/// Outcome of one block's isolated execution.
struct BlockRecord {
    ctaid: u32,
    /// Dynamic instructions the block executed (terminators included), i.e.
    /// its contribution to the launch-cumulative budget counter.
    instrs: u64,
    journal_start: usize,
    journal_len: usize,
    error: Option<SptxError>,
}

/// Everything one pool participant accumulated across the blocks it claimed.
struct WorkerLog {
    class_counts: [u64; 7],
    block_iters: Vec<u64>,
    trace: MemoryTraceSummary,
    segments: SegmentSet,
    journal: Vec<JournalEntry>,
    records: Vec<BlockRecord>,
    stats: WarpStats,
}

impl WorkerLog {
    fn new(program_blocks: usize) -> Self {
        WorkerLog {
            class_counts: [0; 7],
            block_iters: vec![0; program_blocks],
            trace: MemoryTraceSummary::default(),
            segments: SegmentSet::new(),
            journal: Vec::new(),
            records: Vec::new(),
            stats: WarpStats::default(),
        }
    }
}

/// Execute the grid with up to `workers` concurrent blocks and merge the
/// per-worker results deterministically. See the module docs for the
/// byte-identity argument.
pub(crate) fn run_parallel(
    interp: &Interpreter,
    program: &KernelProgram,
    dec: Option<&DecodedProgram>,
    cfg: &LaunchConfig,
    params: &[ParamValue],
    mem: &mut Memory,
    workers: usize,
) -> Result<ExecutionProfile, SptxError> {
    let grid = cfg.grid_dim;
    let participants = workers.min(grid as usize);
    let logs: Vec<Mutex<WorkerLog>> =
        (0..participants).map(|_| Mutex::new(WorkerLog::new(program.blocks().len()))).collect();
    let next_block = AtomicU32::new(0);
    // Lowest ctaid known to have faulted: blocks past it cannot influence the
    // launch result, so workers stop claiming them. Blocks at or below it are
    // always executed (the counter only ever decreases).
    let min_error = AtomicU32::new(u32::MAX);

    let base: &Memory = mem;
    let task = |slot: usize| {
        let mut guard = logs[slot].lock().expect("worker log poisoned");
        let log = &mut *guard;
        let mut regs = vec![Value::I(0); program.num_regs() as usize];
        let mut preds = vec![false; program.num_preds() as usize];
        let mut slots = SlotMap::default();
        let mut warp = dec.map(|d| (WarpExec::new(d), CtaCounters::new(program.blocks().len())));
        loop {
            let ctaid = next_block.fetch_add(1, Ordering::Relaxed);
            if ctaid >= grid || ctaid > min_error.load(Ordering::Acquire) {
                break;
            }
            slots.clear();
            let journal_start = log.journal.len();
            let mut executed = 0u64;
            let mut error = None;

            // Warp-lockstep attempt first: a clean CTA leaves exactly the
            // journal, counters and instruction count the scalar loop below
            // would have produced. On abort the overlay is reset and the CTA
            // re-runs scalar, so records and the merge walk are unchanged.
            let mut lockstep_done = false;
            if let (Some(d), Some((we, cc))) = (dec, warp.as_mut()) {
                cc.reset();
                let outcome = {
                    let mut overlay =
                        OverlayMem { base, slots: &mut slots, journal: &mut log.journal };
                    crate::warp::run_cta(
                        we,
                        d,
                        cfg,
                        params,
                        &mut overlay,
                        ctaid,
                        interp.budget,
                        0,
                        cc,
                    )
                };
                match outcome {
                    CtaOutcome::Done => {
                        executed = cc.instrs;
                        for (a, b) in log.class_counts.iter_mut().zip(cc.class_counts) {
                            *a += b;
                        }
                        for (a, b) in log.block_iters.iter_mut().zip(&cc.block_iters) {
                            *a += b;
                        }
                        log.trace.accesses += cc.trace.accesses;
                        log.trace.load_bytes += cc.trace.load_bytes;
                        log.trace.store_bytes += cc.trace.store_bytes;
                        log.segments.absorb(std::mem::take(&mut cc.segments));
                        log.stats.merge_cta(cc);
                        lockstep_done = true;
                    }
                    CtaOutcome::Abort => {
                        log.journal.truncate(journal_start);
                        slots.clear();
                        log.stats.fallback_ctas += 1;
                    }
                }
            }
            if !lockstep_done {
                let mut overlay = OverlayMem { base, slots: &mut slots, journal: &mut log.journal };
                for tid in 0..cfg.block_dim {
                    regs.iter_mut().for_each(|r| *r = Value::I(0));
                    preds.iter_mut().for_each(|p| *p = false);
                    if let Err(e) = interp.run_thread(
                        program,
                        cfg,
                        params,
                        &mut overlay,
                        ctaid,
                        tid,
                        &mut regs,
                        &mut preds,
                        &mut log.class_counts,
                        &mut log.block_iters,
                        &mut log.segments,
                        &mut log.trace,
                        &mut executed,
                    ) {
                        error = Some(e);
                        break;
                    }
                }
            }
            let faulted = error.is_some();
            log.records.push(BlockRecord {
                ctaid,
                instrs: executed,
                journal_start,
                journal_len: log.journal.len() - journal_start,
                error,
            });
            if faulted {
                min_error.fetch_min(ctaid, Ordering::AcqRel);
            }
        }
    };
    let tasks = WorkerPool::global().run_scoped(participants, &task);

    let logs: Vec<WorkerLog> =
        logs.into_iter().map(|m| m.into_inner().expect("worker log poisoned")).collect();

    // Index block records by ctaid for the ordered walk. Entries can be
    // missing only past the first faulting block, which the walk never
    // reaches.
    let mut order: Vec<Option<(u32, u32)>> = vec![None; grid as usize];
    for (s, log) in logs.iter().enumerate() {
        for (i, rec) in log.records.iter().enumerate() {
            order[rec.ctaid as usize] = Some((s as u32, i as u32));
        }
    }

    let mut cum = 0u64;
    for ctaid in 0..grid {
        let (s, i) = order[ctaid as usize].expect("blocks before the first fault always execute");
        let log = &logs[s as usize];
        let rec = &log.records[i as usize];
        let fits = cum.saturating_add(rec.instrs) <= interp.budget;
        match (&rec.error, fits) {
            (None, true) => {
                replay(mem, &log.journal[rec.journal_start..rec.journal_start + rec.journal_len]);
                cum += rec.instrs;
            }
            (Some(e), true) => {
                // The fault happens before the cumulative budget would, so the
                // block's partial journal is exactly the sequential partial
                // state.
                replay(mem, &log.journal[rec.journal_start..rec.journal_start + rec.journal_len]);
                return Err(e.clone());
            }
            (_, false) => {
                // The cumulative budget runs out somewhere inside this block:
                // re-run just this block sequentially on the merged memory
                // with the cumulative count primed, reproducing the abort at
                // the exact instruction with the exact partial writes.
                match rerun_block(interp, program, cfg, params, mem, ctaid, cum) {
                    Err(e) => return Err(e),
                    // Unreachable for race-free programs; if a cross-block
                    // race made the parallel count an overestimate, keep the
                    // (authoritative) sequential outcome and continue.
                    Ok(new_cum) => cum = new_cum,
                }
            }
        }
    }

    let mut class_counts = [0u64; 7];
    let mut block_iters = vec![0u64; program.blocks().len()];
    let mut trace = MemoryTraceSummary::default();
    let mut segments = SegmentSet::new();
    let mut journal_bytes = 0u64;
    let mut steals = 0u64;
    let mut stats = WarpStats::default();
    for (s, log) in logs.into_iter().enumerate() {
        stats.absorb(&log.stats);
        for (a, b) in class_counts.iter_mut().zip(log.class_counts) {
            *a += b;
        }
        for (a, b) in block_iters.iter_mut().zip(log.block_iters) {
            *a += b;
        }
        trace.load_bytes += log.trace.load_bytes;
        trace.store_bytes += log.trace.store_bytes;
        trace.accesses += log.trace.accesses;
        segments.absorb(log.segments);
        journal_bytes += (log.journal.len() * std::mem::size_of::<JournalEntry>()) as u64;
        if s != 0 {
            steals += log.records.len() as u64;
        }
    }
    trace.unique_segments = segments.distinct();

    let mut profile = ExecutionProfile::new();
    for (c, n) in crate::isa::InstrClass::ALL.iter().zip(class_counts.iter()) {
        profile.counts.add(*c, *n);
    }
    for (i, n) in block_iters.iter().enumerate() {
        if *n > 0 {
            profile.block_iterations.insert(BlockId(i as u32), *n);
        }
    }
    profile.memory = trace;
    profile.threads = cfg.total_threads();

    let r = sigmavp_telemetry::recorder();
    if r.enabled() {
        r.count("sptx.launches", 1);
        r.count("sptx.instructions_executed", cum);
        r.count("sptx.parallel.launches", 1);
        r.count("sptx.parallel.tasks", tasks as u64);
        r.count("sptx.parallel.blocks", grid as u64);
        r.count("sptx.parallel.steals", steals);
        r.count("sptx.parallel.journal_bytes", journal_bytes);
    }
    if dec.is_some() {
        stats.emit();
    }
    Ok(profile)
}

fn replay(mem: &mut Memory, entries: &[JournalEntry]) {
    let bytes = mem.as_bytes_mut();
    for e in entries {
        // Bounds were checked against the same-sized base at execution time.
        let a = e.addr as usize;
        let w = e.width as usize;
        bytes[a..a + w].copy_from_slice(&e.bytes[..w]);
    }
}

/// Sequentially re-execute one block on the merged memory with the launch's
/// cumulative instruction count primed at `cum`, returning the updated count
/// (or, normally, the budget/fault error at its exact sequential position).
fn rerun_block(
    interp: &Interpreter,
    program: &KernelProgram,
    cfg: &LaunchConfig,
    params: &[ParamValue],
    mem: &mut Memory,
    ctaid: u32,
    cum: u64,
) -> Result<u64, SptxError> {
    let mut regs = vec![Value::I(0); program.num_regs() as usize];
    let mut preds = vec![false; program.num_preds() as usize];
    let mut class_counts = [0u64; 7];
    let mut block_iters = vec![0u64; program.blocks().len()];
    let mut segments = SegmentSet::new();
    let mut trace = MemoryTraceSummary::default();
    let mut executed = cum;
    for tid in 0..cfg.block_dim {
        regs.iter_mut().for_each(|r| *r = Value::I(0));
        preds.iter_mut().for_each(|p| *p = false);
        interp.run_thread(
            program,
            cfg,
            params,
            mem,
            ctaid,
            tid,
            &mut regs,
            &mut preds,
            &mut class_counts,
            &mut block_iters,
            &mut segments,
            &mut trace,
            &mut executed,
        )?;
    }
    Ok(executed)
}
