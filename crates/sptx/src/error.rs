//! Error types shared by the SPTX assembler, validator and interpreter.

use std::fmt;

use crate::isa::{BlockId, Reg};

/// Any error produced while building, parsing, validating or executing an SPTX
/// program.
///
/// The variants carry enough location information (block, instruction index, register,
/// address) to point a user at the offending kernel code.
#[derive(Debug, Clone, PartialEq)]
pub enum SptxError {
    /// A branch targets a basic block that does not exist.
    UnknownBlock {
        /// The invalid target.
        target: BlockId,
        /// The block containing the branch.
        from: BlockId,
    },
    /// A basic block is missing its terminator instruction.
    MissingTerminator(BlockId),
    /// A register was read before any instruction wrote it.
    UseBeforeDef {
        /// The offending register.
        reg: Reg,
        /// The block in which the use occurs.
        block: BlockId,
        /// Instruction index within the block.
        instr: usize,
    },
    /// A predicate register was read before any instruction wrote it.
    PredUseBeforeDef {
        /// Index of the predicate register.
        pred: u8,
        /// The block in which the use occurs.
        block: BlockId,
    },
    /// The program has no basic blocks.
    EmptyProgram,
    /// A kernel parameter index is out of range for the supplied parameter list.
    BadParamIndex {
        /// The requested parameter slot.
        index: usize,
        /// Number of parameters actually supplied.
        supplied: usize,
    },
    /// A load or store fell outside the bounds of kernel global memory.
    OutOfBoundsAccess {
        /// Byte address of the access.
        addr: u64,
        /// Width of the access in bytes.
        width: u64,
        /// Size of the memory in bytes.
        mem_size: u64,
    },
    /// A pointer-typed operation was attempted on a non-pointer parameter.
    ExpectedPointerParam(usize),
    /// The interpreter executed more than its configured instruction budget;
    /// the kernel is assumed to be stuck in an infinite loop.
    InstructionBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// The block in which the fault occurred.
        block: BlockId,
    },
    /// A parse error from the text assembler.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The launch configuration is degenerate (zero-sized grid or block) or exceeds
    /// implementation limits.
    BadLaunch(String),
}

impl fmt::Display for SptxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SptxError::UnknownBlock { target, from } => {
                write!(f, "branch in block {from} targets unknown block {target}")
            }
            SptxError::MissingTerminator(b) => {
                write!(f, "basic block {b} has no terminator")
            }
            SptxError::UseBeforeDef { reg, block, instr } => write!(
                f,
                "register {reg} read before definition at block {block} instruction {instr}"
            ),
            SptxError::PredUseBeforeDef { pred, block } => {
                write!(f, "predicate p{pred} read before definition in block {block}")
            }
            SptxError::EmptyProgram => write!(f, "program has no basic blocks"),
            SptxError::BadParamIndex { index, supplied } => write!(
                f,
                "parameter index {index} out of range ({supplied} parameters supplied)"
            ),
            SptxError::OutOfBoundsAccess { addr, width, mem_size } => write!(
                f,
                "memory access of {width} bytes at address {addr:#x} exceeds memory size {mem_size:#x}"
            ),
            SptxError::ExpectedPointerParam(i) => {
                write!(f, "parameter {i} used as a pointer but is a scalar")
            }
            SptxError::InstructionBudgetExceeded { budget } => {
                write!(f, "instruction budget of {budget} exceeded; kernel assumed divergent")
            }
            SptxError::DivisionByZero { block } => {
                write!(f, "integer division by zero in block {block}")
            }
            SptxError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            SptxError::BadLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
        }
    }
}

impl std::error::Error for SptxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = SptxError::UseBeforeDef { reg: Reg(4), block: BlockId(1), instr: 3 };
        let s = e.to_string();
        assert!(s.contains("r4"));
        assert!(s.contains("block 1"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SptxError>();
    }

    #[test]
    fn out_of_bounds_reports_hex() {
        let e = SptxError::OutOfBoundsAccess { addr: 0x100, width: 8, mem_size: 0x80 };
        assert!(e.to_string().contains("0x100"));
    }
}
