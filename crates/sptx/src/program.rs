//! Kernel programs: basic blocks, static per-block instruction statistics and
//! structural queries.

use std::collections::HashMap;

use crate::isa::{BlockId, Instr, InstrClass, Terminator};

/// A straight-line sequence of instructions ended by a single [`Terminator`].
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// The block's instructions, executed in order.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub terminator: Terminator,
    /// Optional label carried over from the assembler, for diagnostics.
    pub label: Option<String>,
}

impl BasicBlock {
    /// Static instruction counts of this block by class — the paper's μ\{b,T\}
    /// (per-block, per-class static instruction counts after compilation for a target
    /// architecture).
    ///
    /// The terminator contributes one `Branch` unless it is a `Ret`.
    pub fn static_mix(&self) -> ClassCounts {
        let mut counts = ClassCounts::default();
        for i in &self.instrs {
            counts.add(i.class(), 1);
        }
        if self.terminator.is_branch() {
            counts.add(InstrClass::Branch, 1);
        }
        counts
    }
}

/// Per-class instruction counts, the unit of currency of all profiling and
/// estimation in ΣVP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ClassCounts {
    counts: [u64; 7],
}

impl ClassCounts {
    /// An all-zero count vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` instructions of class `class`.
    pub fn add(&mut self, class: InstrClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Count for one class.
    pub fn get(&self, class: InstrClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total instructions across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &ClassCounts) -> ClassCounts {
        let mut out = *self;
        for c in InstrClass::ALL {
            out.add(c, other.get(c));
        }
        out
    }

    /// Element-wise scale by an integer factor (e.g. number of threads that executed
    /// a block).
    pub fn scaled(&self, factor: u64) -> ClassCounts {
        let mut out = ClassCounts::default();
        for c in InstrClass::ALL {
            out.add(c, self.get(c) * factor);
        }
        out
    }

    /// Iterate `(class, count)` pairs in the canonical class order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrClass, u64)> + '_ {
        InstrClass::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Fraction of the total contributed by floating-point classes; `0.0` for an
    /// empty count vector.
    pub fn fp_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let fp = self.get(InstrClass::Fp32) + self.get(InstrClass::Fp64);
        fp as f64 / total as f64
    }
}

impl std::ops::Index<InstrClass> for ClassCounts {
    type Output = u64;

    fn index(&self, class: InstrClass) -> &u64 {
        &self.counts[class.index()]
    }
}

impl std::iter::FromIterator<(InstrClass, u64)> for ClassCounts {
    fn from_iter<I: IntoIterator<Item = (InstrClass, u64)>>(iter: I) -> Self {
        let mut out = ClassCounts::default();
        for (c, n) in iter {
            out.add(c, n);
        }
        out
    }
}

/// A complete SPTX kernel: an entry block plus the rest of the control-flow graph.
///
/// Construct via [`ProgramBuilder`](crate::builder::ProgramBuilder) or the text
/// [`assembler`](crate::asm::parse); both run the
/// [`validator`](crate::validate::validate) so a `KernelProgram` in hand is always
/// structurally sound.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProgram {
    name: String,
    blocks: Vec<BasicBlock>,
    num_regs: u16,
    num_preds: u8,
    num_params: usize,
}

impl KernelProgram {
    /// Assembles the parts of a program. Intended for use by the builder and
    /// assembler; prefer those entry points.
    pub(crate) fn from_parts(
        name: String,
        blocks: Vec<BasicBlock>,
        num_regs: u16,
        num_preds: u8,
        num_params: usize,
    ) -> Self {
        Self { name, blocks, num_regs, num_preds, num_params }
    }

    /// The kernel's name (used for kernel matching in coalescing).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basic blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Block lookup.
    pub fn block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.0 as usize)
    }

    /// Number of virtual registers used.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Number of predicate registers used.
    pub fn num_preds(&self) -> u8 {
        self.num_preds
    }

    /// Number of kernel parameters the program expects.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Total static instruction count (including branch terminators).
    pub fn static_size(&self) -> u64 {
        self.static_mix().total()
    }

    /// Whole-program static instruction mix: the sum of every block's
    /// [`BasicBlock::static_mix`].
    pub fn static_mix(&self) -> ClassCounts {
        self.blocks
            .iter()
            .map(|b| b.static_mix())
            .fold(ClassCounts::default(), |acc, m| acc.merged(&m))
    }

    /// Per-block static mixes keyed by block id — the μ table consumed by
    /// σ-derivation (Eq. 1 of the paper).
    pub fn block_mixes(&self) -> HashMap<BlockId, ClassCounts> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b.static_mix())).collect()
    }

    /// A structural fingerprint of the program: name plus static mix. Two launches
    /// are *coalescible* in ΣVP when their fingerprints match (the paper's "identical
    /// kernel" test performed by the Kernel Match module).
    pub fn fingerprint(&self) -> ProgramFingerprint {
        ProgramFingerprint {
            name: self.name.clone(),
            mix: self.static_mix(),
            blocks: self.blocks.len(),
        }
    }
}

/// Identity of a kernel for coalescing purposes. See
/// [`KernelProgram::fingerprint`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramFingerprint {
    /// Kernel name.
    pub name: String,
    /// Whole-program static instruction mix.
    pub mix: ClassCounts,
    /// Number of basic blocks.
    pub blocks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{BinOp, ScalarType};

    fn tiny_program() -> KernelProgram {
        let mut b = ProgramBuilder::new("tiny");
        let (x, y, z) = (b.reg(), b.reg(), b.reg());
        b.mov_imm_i(x, 1).mov_imm_i(y, 2).binop(BinOp::Add, ScalarType::I64, z, x, y).ret();
        b.build().expect("tiny program is valid")
    }

    #[test]
    fn static_mix_counts_classes() {
        let p = tiny_program();
        let mix = p.static_mix();
        assert_eq!(mix.get(InstrClass::Bit), 2); // two mov-imm
        assert_eq!(mix.get(InstrClass::Int), 1); // one add
        assert_eq!(mix.get(InstrClass::Branch), 0); // ret is free
        assert_eq!(mix.total(), 3);
    }

    #[test]
    fn class_counts_merge_and_scale() {
        let mut a = ClassCounts::new();
        a.add(InstrClass::Fp32, 3);
        a.add(InstrClass::Ld, 1);
        let mut b = ClassCounts::new();
        b.add(InstrClass::Fp32, 2);
        let m = a.merged(&b);
        assert_eq!(m.get(InstrClass::Fp32), 5);
        assert_eq!(m.get(InstrClass::Ld), 1);
        let s = m.scaled(10);
        assert_eq!(s.get(InstrClass::Fp32), 50);
        assert_eq!(s.total(), 60);
    }

    #[test]
    fn fp_fraction() {
        let mut c = ClassCounts::new();
        assert_eq!(c.fp_fraction(), 0.0);
        c.add(InstrClass::Fp64, 3);
        c.add(InstrClass::Int, 1);
        assert!((c.fp_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_distinguish_kernels() {
        let p = tiny_program();
        let mut b = ProgramBuilder::new("other");
        let r = b.reg();
        b.mov_imm_i(r, 7).ret();
        let q = b.build().unwrap();
        assert_ne!(p.fingerprint(), q.fingerprint());
        assert_eq!(p.fingerprint(), tiny_program().fingerprint());
    }

    #[test]
    fn from_iterator_collects_counts() {
        let c: ClassCounts =
            [(InstrClass::Int, 4), (InstrClass::Int, 1), (InstrClass::St, 2)].into_iter().collect();
        assert_eq!(c.get(InstrClass::Int), 5);
        assert_eq!(c[InstrClass::St], 2);
    }

    #[test]
    fn block_mixes_cover_all_blocks() {
        let p = tiny_program();
        let mixes = p.block_mixes();
        assert_eq!(mixes.len(), p.blocks().len());
        assert!(mixes.contains_key(&BlockId(0)));
    }
}
