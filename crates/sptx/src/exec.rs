//! A process-wide persistent worker pool for block-parallel execution.
//!
//! ΣVP funnels every kernel launch from every VP through the sPTX
//! interpreter, so the interpreter's grid loop is the hot path of the whole
//! simulator. SPTX has no inter-thread communication primitives, which makes
//! thread blocks independent: the pool lets launches spread blocks across
//! host cores while callers keep the plain synchronous
//! [`run`](crate::interp::Interpreter::run) interface.
//!
//! Design:
//!
//! * **Persistent** — `available_parallelism() - 1` background threads are
//!   spawned once per process ([`WorkerPool::global`]); the per-launch cost
//!   is one queue push and one condvar broadcast, not thread creation.
//! * **Caller participates** — the submitting thread claims a slot and works
//!   too, so a launch always makes progress even when every background
//!   worker is busy with other launches (multiple VP threads share the one
//!   pool, and several jobs can be in flight at once).
//! * **Scoped borrows** — tasks borrow the caller's stack (program, params,
//!   base memory). [`WorkerPool::run_scoped`] blocks until every participant
//!   has returned, which is what makes the lifetime erasure sound.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Number of participants the process-wide pool uses: the host's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A borrowed parallel task, invoked once per claimed slot with a distinct
/// slot index in `0..participants`.
pub type Task<'a> = &'a (dyn Fn(usize) + Sync + 'a);

struct ErasedTask(&'static (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (concurrent shared calls are fine), and
// `run_scoped` does not return until no worker can still hold the reference,
// so handing it to pool threads never outlives the borrow it was erased from.
unsafe impl Send for ErasedTask {}
unsafe impl Sync for ErasedTask {}

struct Job {
    task: ErasedTask,
    /// Next participant slot to hand out; claims stop at `max_slots`.
    next_slot: AtomicUsize,
    max_slots: usize,
    /// Set once the submitter has removed the job from the queue.
    closed: AtomicBool,
    panicked: AtomicBool,
    /// Number of threads currently inside the task (submitter included).
    active: Mutex<usize>,
    done: Condvar,
}

impl Job {
    fn leave(&self) {
        let mut active = self.active.lock().expect("worker pool poisoned");
        *active -= 1;
        if *active == 0 {
            self.done.notify_all();
        }
    }
}

struct PoolShared {
    queue: Mutex<Vec<Arc<Job>>>,
    work: Condvar,
}

/// A persistent pool of worker threads executing scoped, borrowed tasks.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` total participants. The submitting thread counts
    /// as one, so `workers - 1` background threads are spawned; `workers = 1`
    /// spawns nothing and [`run_scoped`](WorkerPool::run_scoped) degenerates
    /// to an inline call.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared { queue: Mutex::new(Vec::new()), work: Condvar::new() });
        for _ in 1..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sptx-worker".into())
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn sptx worker thread");
        }
        WorkerPool { shared, workers }
    }

    /// The process-wide pool shared by every runtime, created on first use
    /// with [`default_workers`] participants.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let pool = WorkerPool::new(default_workers());
            let r = sigmavp_telemetry::recorder();
            if r.enabled() {
                r.gauge_set("sptx.parallel.workers", pool.workers() as f64);
            }
            pool
        })
    }

    /// Total participants (background threads plus the submitting thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `task` with up to `participants` concurrent invocations —
    /// `task(slot)` for distinct slots in `0..participants` — blocking until
    /// every invocation has returned. The submitting thread always runs slot
    /// 0 itself, so the call completes even if every background worker is
    /// busy with other jobs. Returns the number of slots actually claimed.
    ///
    /// # Panics
    ///
    /// Panics (after all participants have returned, keeping the scoped
    /// borrows sound) if any invocation of `task` panicked.
    pub fn run_scoped(&self, participants: usize, task: Task<'_>) -> usize {
        let participants = participants.clamp(1, self.workers);
        // SAFETY: see `ErasedTask` — we block until all participants return.
        let erased = ErasedTask(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        });
        let job = Arc::new(Job {
            task: erased,
            next_slot: AtomicUsize::new(1), // the submitter pre-claims slot 0
            max_slots: participants,
            closed: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            active: Mutex::new(1),
            done: Condvar::new(),
        });

        if participants > 1 {
            let mut queue = self.shared.queue.lock().expect("worker pool poisoned");
            queue.push(Arc::clone(&job));
            drop(queue);
            self.shared.work.notify_all();
        }

        if catch_unwind(AssertUnwindSafe(|| (job.task.0)(0))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }

        job.closed.store(true, Ordering::Release);
        let claimed = if participants > 1 {
            let mut queue = self.shared.queue.lock().expect("worker pool poisoned");
            queue.retain(|j| !Arc::ptr_eq(j, &job));
            drop(queue);
            let claimed = job.next_slot.load(Ordering::Acquire).min(participants);

            let waited = Instant::now();
            let mut active = job.active.lock().expect("worker pool poisoned");
            *active -= 1;
            let mut idled = false;
            while *active > 0 {
                idled = true;
                active = job.done.wait(active).expect("worker pool poisoned");
            }
            drop(active);
            if idled {
                let r = sigmavp_telemetry::recorder();
                if r.enabled() {
                    r.observe_s("sptx.parallel.idle_s", waited.elapsed().as_secs_f64());
                }
            }
            claimed
        } else {
            let mut active = job.active.lock().expect("worker pool poisoned");
            *active -= 1;
            1
        };

        assert!(
            !job.panicked.load(Ordering::Relaxed),
            "sptx worker panicked during parallel kernel execution"
        );
        claimed
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let (job, slot) = {
            let mut queue = shared.queue.lock().expect("worker pool poisoned");
            loop {
                if let Some(claimed) = claim(&queue) {
                    break claimed;
                }
                queue = shared.work.wait(queue).expect("worker pool poisoned");
            }
        };
        if catch_unwind(AssertUnwindSafe(|| (job.task.0)(slot))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        job.leave();
    }
}

/// Claim a slot on the first job with capacity. Must be called with the
/// queue lock held — the lock serializes the check-then-increment.
fn claim(queue: &[Arc<Job>]) -> Option<(Arc<Job>, usize)> {
    for job in queue {
        if job.closed.load(Ordering::Acquire) {
            continue;
        }
        let slot = job.next_slot.load(Ordering::Relaxed);
        if slot >= job.max_slots {
            continue;
        }
        job.next_slot.store(slot + 1, Ordering::Release);
        *job.active.lock().expect("worker pool poisoned") += 1;
        return Some((Arc::clone(job), slot));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_slots_run_once_with_distinct_indices() {
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(HashSet::new());
        let claimed = pool.run_scoped(4, &|slot| {
            assert!(seen.lock().unwrap().insert(slot), "slot {slot} ran twice");
            // Keep the slot busy long enough for the others to be claimed.
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        assert!((1..=4).contains(&claimed));
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), claimed);
        assert!(seen.contains(&0), "the submitter always works slot 0");
    }

    #[test]
    fn single_participant_runs_inline() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        let claimed = pool.run_scoped(1, &|slot| {
            assert_eq!(slot, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(claimed, 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn participants_are_clamped_to_pool_size() {
        let pool = WorkerPool::new(2);
        let hits = AtomicU64::new(0);
        let claimed = pool.run_scoped(64, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(claimed <= 2);
        assert_eq!(hits.load(Ordering::Relaxed), claimed as u64);
    }

    #[test]
    fn concurrent_jobs_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let counter = AtomicU64::new(0);
                    pool.run_scoped(3, &|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    total.fetch_add(counter.load(Ordering::Relaxed), Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every job completed; each ran between 1 and 3 slots.
        let total = total.load(Ordering::Relaxed);
        assert!((4..=12).contains(&total), "unexpected slot total {total}");
    }

    #[test]
    fn worker_panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(4, &|slot| {
                if slot == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked job and serves the next one.
        let ok = AtomicU64::new(0);
        pool.run_scoped(2, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ok.load(Ordering::Relaxed) >= 1);
    }
}
