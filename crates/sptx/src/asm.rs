//! A text assembler and disassembler for SPTX.
//!
//! The textual syntax is deliberately close to PTX so kernels can be read by anyone
//! familiar with CUDA toolchains. A program is a `.kernel <name>` header followed by
//! labeled basic blocks:
//!
//! ```text
//! .kernel scale
//! entry:
//!     rs       r0, gtid
//!     ldp      r1, 0
//!     ld.f32   r2, [r1 + r0]
//!     mov.f64  r3, 2.0
//!     cvt.f32.f64 r3, r3
//!     mul.f32  r2, r2, r3
//!     st.f32   [r1 + r0], r2
//!     ret
//! ```
//!
//! Supported instructions: `add sub mul div rem min max and or xor shl shr` (binary,
//! suffixed `.f32|.f64|.i64`), `neg abs sqrt exp log sin cos not` (unary), `mad.<ty>`,
//! `mov` (register or immediate), `cvt.<to>.<from>`, `setp.<cmp>.<ty>`,
//! `rs` (read special: `tid.x ntid.x ctaid.x nctaid.x gtid`), `ldp` (parameter),
//! `ld.<ty>` / `st.<ty>` with `[base]`, `[base + idx]`, `[base + idx + off]` or
//! `[base + off]` operands, `bra <label>`, `@p<N> bra <true>, <false>` and `ret`.
//!
//! Comments start with `#` or `//` and run to end of line.

use std::collections::HashMap;

use crate::error::SptxError;
use crate::isa::{
    BinOp, BlockId, CmpOp, Imm, Instr, Pred, Reg, ScalarType, Special, Terminator, UnaryOp,
};
use crate::program::{BasicBlock, KernelProgram};
use crate::validate::validate;

/// Parse SPTX assembly text into a validated [`KernelProgram`].
///
/// # Errors
///
/// Returns [`SptxError::Parse`] (with a 1-based line number) for syntax errors, or
/// any validation error for structurally unsound programs.
///
/// # Example
///
/// ```
/// let src = "
/// .kernel nop
/// entry:
///     ret
/// ";
/// let p = sigmavp_sptx::asm::parse(src)?;
/// assert_eq!(p.name(), "nop");
/// # Ok::<(), sigmavp_sptx::SptxError>(())
/// ```
pub fn parse(source: &str) -> Result<KernelProgram, SptxError> {
    Parser::new(source).parse()
}

/// Render a program back to its textual form; `parse(&disassemble(p))` reproduces an
/// equivalent program. Block labels are uniquified (builder helpers like
/// `for_loop` reuse label names across loops).
pub fn disassemble(program: &KernelProgram) -> String {
    let labels = unique_labels(program);
    let mut out = format!(".kernel {}\n", program.name());
    for (i, block) in program.blocks().iter().enumerate() {
        out.push_str(&format!("{}:\n", labels[i]));
        for instr in &block.instrs {
            out.push_str("    ");
            out.push_str(&format_instr(instr));
            out.push('\n');
        }
        out.push_str("    ");
        out.push_str(&format_terminator(&block.terminator, &labels));
        out.push('\n');
    }
    out
}

fn default_label(index: usize) -> String {
    if index == 0 {
        "entry".to_string()
    } else {
        format!("bb{index}")
    }
}

/// One distinct label per block: the block's own label if unique so far, otherwise
/// suffixed with the block index.
fn unique_labels(program: &KernelProgram) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    program
        .blocks()
        .iter()
        .enumerate()
        .map(|(i, block)| {
            let base = block.label.clone().unwrap_or_else(|| default_label(i));
            let label = if seen.contains(&base) { format!("{base}_{i}") } else { base };
            seen.insert(label.clone());
            label
        })
        .collect()
}

fn format_instr(i: &Instr) -> String {
    match i {
        Instr::Bin { op, ty, dst, a, b } => format!("{}.{ty} {dst}, {a}, {b}", bin_name(*op)),
        Instr::Un { op, ty, dst, a } => format!("{}.{ty} {dst}, {a}", un_name(*op)),
        Instr::Mad { ty, dst, a, b, c } => format!("mad.{ty} {dst}, {a}, {b}, {c}"),
        Instr::MovImm { dst, imm } => match imm {
            Imm::F(v) => format!("mov.f64 {dst}, {v:?}"),
            Imm::I(v) => format!("mov {dst}, {v}"),
        },
        Instr::Mov { dst, src } => format!("mov {dst}, {src}"),
        Instr::Cvt { to, from, dst, src } => format!("cvt.{to}.{from} {dst}, {src}"),
        Instr::Setp { cmp, ty, pred, a, b } => {
            format!("setp.{}.{ty} {pred}, {a}, {b}", cmp_name(*cmp))
        }
        Instr::ReadSpecial { dst, special } => format!("rs {dst}, {}", special_name(*special)),
        Instr::LdParam { dst, index } => format!("ldp {dst}, {index}"),
        Instr::Ld { ty, dst, base, index, offset } => {
            format!("ld.{ty} {dst}, {}", format_mem(*base, *index, *offset))
        }
        Instr::St { ty, base, index, offset, src } => {
            format!("st.{ty} {}, {src}", format_mem(*base, *index, *offset))
        }
    }
}

fn format_mem(base: Reg, index: Option<Reg>, offset: i64) -> String {
    match (index, offset) {
        (None, 0) => format!("[{base}]"),
        (None, o) => format!("[{base} + {o}]"),
        (Some(i), 0) => format!("[{base} + {i}]"),
        (Some(i), o) => format!("[{base} + {i} + {o}]"),
    }
}

fn format_terminator(t: &Terminator, labels: &[String]) -> String {
    match t {
        Terminator::Bra(target) => format!("bra {}", labels[target.0 as usize]),
        Terminator::CondBra { pred, if_true, if_false } => {
            format!("@{pred} bra {}, {}", labels[if_true.0 as usize], labels[if_false.0 as usize])
        }
        Terminator::Ret => "ret".to_string(),
    }
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn un_name(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Neg => "neg",
        UnaryOp::Abs => "abs",
        UnaryOp::Sqrt => "sqrt",
        UnaryOp::Exp => "exp",
        UnaryOp::Log => "log",
        UnaryOp::Sin => "sin",
        UnaryOp::Cos => "cos",
        UnaryOp::Not => "not",
    }
}

fn cmp_name(cmp: CmpOp) -> &'static str {
    match cmp {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn special_name(s: Special) -> &'static str {
    match s {
        Special::TidX => "tid.x",
        Special::NTidX => "ntid.x",
        Special::CtaIdX => "ctaid.x",
        Special::NCtaIdX => "nctaid.x",
        Special::GlobalTid => "gtid",
    }
}

/// A pending (pre-label-resolution) terminator.
enum RawTerminator {
    Bra(String),
    CondBra { pred: Pred, if_true: String, if_false: String },
    Ret,
}

struct RawBlock {
    label: String,
    instrs: Vec<Instr>,
    terminator: Option<RawTerminator>,
}

struct Parser<'a> {
    source: &'a str,
    name: Option<String>,
    blocks: Vec<RawBlock>,
    max_reg: Option<u16>,
    max_pred: Option<u8>,
    max_param: Option<usize>,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            source,
            name: None,
            blocks: Vec::new(),
            max_reg: None,
            max_pred: None,
            max_param: None,
        }
    }

    fn err(line: usize, message: impl Into<String>) -> SptxError {
        SptxError::Parse { line, message: message.into() }
    }

    fn parse(mut self) -> Result<KernelProgram, SptxError> {
        for (lineno, raw_line) in self.source.lines().enumerate() {
            let line = lineno + 1;
            let text = strip_comment(raw_line).trim();
            if text.is_empty() {
                continue;
            }
            if let Some(rest) = text.strip_prefix(".kernel") {
                if self.name.is_some() {
                    return Err(Self::err(line, "duplicate .kernel directive"));
                }
                let name = rest.trim();
                if name.is_empty() {
                    return Err(Self::err(line, "missing kernel name"));
                }
                self.name = Some(name.to_string());
                continue;
            }
            if let Some(label) = text.strip_suffix(':') {
                let label = label.trim();
                if !is_ident(label) {
                    return Err(Self::err(line, format!("invalid label `{label}`")));
                }
                if self.blocks.iter().any(|b| b.label == label) {
                    return Err(Self::err(line, format!("duplicate label `{label}`")));
                }
                self.blocks.push(RawBlock {
                    label: label.to_string(),
                    instrs: Vec::new(),
                    terminator: None,
                });
                continue;
            }
            if self.name.is_none() {
                return Err(Self::err(line, "expected .kernel directive before instructions"));
            }
            if self.blocks.is_empty() {
                return Err(Self::err(line, "instruction before any block label"));
            }
            let open = self.blocks.last().map(|b| b.terminator.is_none()).expect("non-empty");
            if !open {
                return Err(Self::err(line, "instruction after block terminator (missing label?)"));
            }
            self.parse_line(line, text)?;
        }

        let name = self.name.clone().ok_or(Self::err(0, "missing .kernel directive"))?;
        if self.blocks.is_empty() {
            return Err(SptxError::EmptyProgram);
        }
        let label_ids: HashMap<String, BlockId> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.label.clone(), BlockId(i as u32)))
            .collect();

        let mut blocks = Vec::with_capacity(self.blocks.len());
        for raw in &self.blocks {
            let term = match &raw.terminator {
                None => return Err(SptxError::MissingTerminator(label_ids[&raw.label])),
                Some(RawTerminator::Ret) => Terminator::Ret,
                Some(RawTerminator::Bra(t)) => Terminator::Bra(
                    *label_ids.get(t).ok_or(Self::err(0, format!("unknown label `{t}`")))?,
                ),
                Some(RawTerminator::CondBra { pred, if_true, if_false }) => Terminator::CondBra {
                    pred: *pred,
                    if_true: *label_ids
                        .get(if_true)
                        .ok_or(Self::err(0, format!("unknown label `{if_true}`")))?,
                    if_false: *label_ids
                        .get(if_false)
                        .ok_or(Self::err(0, format!("unknown label `{if_false}`")))?,
                },
            };
            blocks.push(BasicBlock {
                instrs: raw.instrs.clone(),
                terminator: term,
                label: Some(raw.label.clone()),
            });
        }

        let program = KernelProgram::from_parts(
            name,
            blocks,
            self.max_reg.map_or(0, |m| m + 1),
            self.max_pred.map_or(0, |m| m + 1),
            self.max_param.map_or(0, |m| m + 1),
        );
        validate(&program)?;
        Ok(program)
    }

    fn parse_line(&mut self, line: usize, text: &str) -> Result<(), SptxError> {
        // Conditional branch: `@p0 bra t, f`.
        if let Some(rest) = text.strip_prefix('@') {
            let (pred_tok, rest) = rest
                .split_once(char::is_whitespace)
                .ok_or(Self::err(line, "expected `@pN bra t, f`"))?;
            let pred = self.parse_pred(line, pred_tok.trim())?;
            let rest = rest.trim();
            let targets = rest
                .strip_prefix("bra")
                .ok_or(Self::err(line, "only `bra` may be predicated"))?
                .trim();
            let (t, f) = targets
                .split_once(',')
                .ok_or(Self::err(line, "conditional branch needs two targets"))?;
            self.set_terminator(
                line,
                RawTerminator::CondBra {
                    pred,
                    if_true: t.trim().to_string(),
                    if_false: f.trim().to_string(),
                },
            )?;
            return Ok(());
        }

        let (mnemonic, operands) = match text.split_once(char::is_whitespace) {
            Some((m, o)) => (m.trim(), o.trim()),
            None => (text, ""),
        };
        let mut parts = mnemonic.split('.');
        let base = parts.next().expect("split always yields one");
        let suffixes: Vec<&str> = parts.collect();

        match base {
            "ret" => {
                self.set_terminator(line, RawTerminator::Ret)?;
                return Ok(());
            }
            "bra" => {
                if operands.is_empty() {
                    return Err(Self::err(line, "bra needs a target label"));
                }
                self.set_terminator(line, RawTerminator::Bra(operands.to_string()))?;
                return Ok(());
            }
            _ => {}
        }

        let ops: Vec<String> = split_operands(operands);
        let instr = match base {
            "add" | "sub" | "mul" | "div" | "rem" | "min" | "max" | "and" | "or" | "xor"
            | "shl" | "shr" => {
                let op = parse_bin(base).expect("matched above");
                let ty = self.one_type(line, &suffixes)?;
                let [d, a, b] = self.three_regs(line, &ops)?;
                Instr::Bin { op, ty, dst: d, a, b }
            }
            "neg" | "abs" | "sqrt" | "exp" | "log" | "sin" | "cos" | "not" => {
                let op = parse_un(base).expect("matched above");
                let ty = self.one_type(line, &suffixes)?;
                let [d, a] = self.two_regs(line, &ops)?;
                Instr::Un { op, ty, dst: d, a }
            }
            "mad" => {
                let ty = self.one_type(line, &suffixes)?;
                if ops.len() != 4 {
                    return Err(Self::err(line, "mad takes dst, a, b, c"));
                }
                let d = self.parse_reg(line, &ops[0])?;
                let a = self.parse_reg(line, &ops[1])?;
                let b = self.parse_reg(line, &ops[2])?;
                let c = self.parse_reg(line, &ops[3])?;
                Instr::Mad { ty, dst: d, a, b, c }
            }
            "mov" => {
                if ops.len() != 2 {
                    return Err(Self::err(line, "mov takes dst, src"));
                }
                let d = self.parse_reg(line, &ops[0])?;
                if ops[1].starts_with('r') && ops[1][1..].chars().all(|c| c.is_ascii_digit()) {
                    let s = self.parse_reg(line, &ops[1])?;
                    Instr::Mov { dst: d, src: s }
                } else if suffixes.first() == Some(&"f64") || suffixes.first() == Some(&"f32") {
                    let v: f64 = ops[1].parse().map_err(|_| {
                        Self::err(line, format!("bad float immediate `{}`", ops[1]))
                    })?;
                    Instr::MovImm { dst: d, imm: Imm::F(v) }
                } else {
                    let v: i64 = ops[1].parse().map_err(|_| {
                        Self::err(line, format!("bad integer immediate `{}`", ops[1]))
                    })?;
                    Instr::MovImm { dst: d, imm: Imm::I(v) }
                }
            }
            "cvt" => {
                if suffixes.len() != 2 {
                    return Err(Self::err(line, "cvt needs two type suffixes: cvt.<to>.<from>"));
                }
                let to =
                    parse_type(suffixes[0]).ok_or(Self::err(line, "bad cvt destination type"))?;
                let from = parse_type(suffixes[1]).ok_or(Self::err(line, "bad cvt source type"))?;
                let [d, s] = self.two_regs(line, &ops)?;
                Instr::Cvt { to, from, dst: d, src: s }
            }
            "setp" => {
                if suffixes.len() != 2 {
                    return Err(Self::err(line, "setp needs cmp and type: setp.<cmp>.<ty>"));
                }
                let cmp = parse_cmp(suffixes[0]).ok_or(Self::err(line, "bad comparison"))?;
                let ty = parse_type(suffixes[1]).ok_or(Self::err(line, "bad type"))?;
                if ops.len() != 3 {
                    return Err(Self::err(line, "setp takes pred, a, b"));
                }
                let pred = self.parse_pred(line, &ops[0])?;
                let a = self.parse_reg(line, &ops[1])?;
                let b = self.parse_reg(line, &ops[2])?;
                Instr::Setp { cmp, ty, pred, a, b }
            }
            "rs" => {
                if ops.len() != 2 {
                    return Err(Self::err(line, "rs takes dst, special"));
                }
                let d = self.parse_reg(line, &ops[0])?;
                let special = parse_special(&ops[1])
                    .ok_or(Self::err(line, format!("unknown special register `{}`", ops[1])))?;
                Instr::ReadSpecial { dst: d, special }
            }
            "ldp" => {
                if ops.len() != 2 {
                    return Err(Self::err(line, "ldp takes dst, index"));
                }
                let d = self.parse_reg(line, &ops[0])?;
                let index: usize = ops[1]
                    .parse()
                    .map_err(|_| Self::err(line, format!("bad parameter index `{}`", ops[1])))?;
                self.max_param = Some(self.max_param.map_or(index, |m| m.max(index)));
                Instr::LdParam { dst: d, index }
            }
            "ld" => {
                let ty = self.one_type(line, &suffixes)?;
                if ops.len() != 2 {
                    return Err(Self::err(line, "ld takes dst, [mem]"));
                }
                let d = self.parse_reg(line, &ops[0])?;
                let (base_r, index, offset) = self.parse_mem(line, &ops[1])?;
                Instr::Ld { ty, dst: d, base: base_r, index, offset }
            }
            "st" => {
                let ty = self.one_type(line, &suffixes)?;
                if ops.len() != 2 {
                    return Err(Self::err(line, "st takes [mem], src"));
                }
                let (base_r, index, offset) = self.parse_mem(line, &ops[0])?;
                let s = self.parse_reg(line, &ops[1])?;
                Instr::St { ty, base: base_r, index, offset, src: s }
            }
            other => return Err(Self::err(line, format!("unknown instruction `{other}`"))),
        };
        self.blocks.last_mut().expect("checked").instrs.push(instr);
        Ok(())
    }

    fn set_terminator(&mut self, line: usize, t: RawTerminator) -> Result<(), SptxError> {
        let block = self.blocks.last_mut().ok_or(Self::err(line, "terminator before any label"))?;
        if block.terminator.is_some() {
            return Err(Self::err(line, "block already terminated"));
        }
        block.terminator = Some(t);
        Ok(())
    }

    fn one_type(&self, line: usize, suffixes: &[&str]) -> Result<ScalarType, SptxError> {
        match suffixes {
            [s] => parse_type(s).ok_or(Self::err(line, format!("unknown type `{s}`"))),
            _ => Err(Self::err(line, "expected exactly one type suffix")),
        }
    }

    fn parse_reg(&mut self, line: usize, tok: &str) -> Result<Reg, SptxError> {
        let tok = tok.trim();
        let digits = tok
            .strip_prefix('r')
            .filter(|d| !d.is_empty() && d.chars().all(|c| c.is_ascii_digit()))
            .ok_or(Self::err(line, format!("expected register, found `{tok}`")))?;
        let n: u16 = digits
            .parse()
            .map_err(|_| Self::err(line, format!("register index too large `{tok}`")))?;
        self.max_reg = Some(self.max_reg.map_or(n, |m| m.max(n)));
        Ok(Reg(n))
    }

    fn parse_pred(&mut self, line: usize, tok: &str) -> Result<Pred, SptxError> {
        let digits = tok
            .trim()
            .strip_prefix('p')
            .filter(|d| !d.is_empty() && d.chars().all(|c| c.is_ascii_digit()))
            .ok_or(Self::err(line, format!("expected predicate, found `{tok}`")))?;
        let n: u8 = digits
            .parse()
            .map_err(|_| Self::err(line, format!("predicate index too large `{tok}`")))?;
        self.max_pred = Some(self.max_pred.map_or(n, |m| m.max(n)));
        Ok(Pred(n))
    }

    /// Parse `[base]`, `[base + idx]`, `[base + off]`, `[base + idx + off]`.
    fn parse_mem(&mut self, line: usize, tok: &str) -> Result<(Reg, Option<Reg>, i64), SptxError> {
        let inner = tok
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or(Self::err(line, format!("expected memory operand, found `{tok}`")))?;
        let parts: Vec<&str> = inner.split('+').map(str::trim).collect();
        match parts.as_slice() {
            [b] => Ok((self.parse_reg(line, b)?, None, 0)),
            [b, second] => {
                let base = self.parse_reg(line, b)?;
                if second.starts_with('r') {
                    Ok((base, Some(self.parse_reg(line, second)?), 0))
                } else {
                    let off: i64 = second
                        .parse()
                        .map_err(|_| Self::err(line, format!("bad offset `{second}`")))?;
                    Ok((base, None, off))
                }
            }
            [b, i, o] => {
                let base = self.parse_reg(line, b)?;
                let index = self.parse_reg(line, i)?;
                let off: i64 =
                    o.parse().map_err(|_| Self::err(line, format!("bad offset `{o}`")))?;
                Ok((base, Some(index), off))
            }
            _ => Err(Self::err(line, format!("malformed memory operand `{tok}`"))),
        }
    }

    fn two_regs(&mut self, line: usize, ops: &[String]) -> Result<[Reg; 2], SptxError> {
        if ops.len() != 2 {
            return Err(Self::err(line, "expected two operands"));
        }
        Ok([self.parse_reg(line, &ops[0])?, self.parse_reg(line, &ops[1])?])
    }

    fn three_regs(&mut self, line: usize, ops: &[String]) -> Result<[Reg; 3], SptxError> {
        if ops.len() != 3 {
            return Err(Self::err(line, "expected three operands"));
        }
        Ok([
            self.parse_reg(line, &ops[0])?,
            self.parse_reg(line, &ops[1])?,
            self.parse_reg(line, &ops[2])?,
        ])
    }
}

fn strip_comment(line: &str) -> &str {
    let end = line.find('#').unwrap_or(line.len()).min(line.find("//").unwrap_or(line.len()));
    &line[..end]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split operands on commas, but keep `[...]` groups intact.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_type(s: &str) -> Option<ScalarType> {
    match s {
        "f32" => Some(ScalarType::F32),
        "f64" => Some(ScalarType::F64),
        "i64" => Some(ScalarType::I64),
        _ => None,
    }
}

fn parse_bin(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn parse_un(s: &str) -> Option<UnaryOp> {
    Some(match s {
        "neg" => UnaryOp::Neg,
        "abs" => UnaryOp::Abs,
        "sqrt" => UnaryOp::Sqrt,
        "exp" => UnaryOp::Exp,
        "log" => UnaryOp::Log,
        "sin" => UnaryOp::Sin,
        "cos" => UnaryOp::Cos,
        "not" => UnaryOp::Not,
        _ => return None,
    })
}

fn parse_cmp(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn parse_special(s: &str) -> Option<Special> {
    Some(match s {
        "tid.x" => Special::TidX,
        "ntid.x" => Special::NTidX,
        "ctaid.x" => Special::CtaIdX,
        "nctaid.x" => Special::NCtaIdX,
        "gtid" => Special::GlobalTid,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, LaunchConfig, Memory, ParamValue};

    const SCALE: &str = "
.kernel scale            # multiply each f32 element by 2
entry:
    rs       r0, gtid
    ldp      r1, 0
    ld.f32   r2, [r1 + r0]
    mov.f64  r3, 2.0
    mul.f32  r2, r2, r3
    st.f32   [r1 + r0], r2
    ret
";

    #[test]
    fn parse_and_execute_scale() {
        let p = parse(SCALE).unwrap();
        assert_eq!(p.name(), "scale");
        let mut mem = Memory::new(4 * 4);
        for i in 0..4 {
            mem.write_f32(i * 4, (i + 1) as f32).unwrap();
        }
        Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 4), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        for i in 0..4 {
            assert_eq!(mem.read_f32(i * 4).unwrap(), 2.0 * (i + 1) as f32);
        }
    }

    #[test]
    fn roundtrip_through_disassembler() {
        let p = parse(SCALE).unwrap();
        let text = disassemble(&p);
        let q = parse(&text).unwrap();
        assert_eq!(p.name(), q.name());
        assert_eq!(p.static_mix(), q.static_mix());
        assert_eq!(p.blocks().len(), q.blocks().len());
    }

    #[test]
    fn parses_branches_and_loops() {
        let src = "
.kernel count
entry:
    mov r0, 0
    mov r1, 5
    mov r2, 1
    bra header
header:
    setp.lt.i64 p0, r0, r1
    @p0 bra body, exit
body:
    add.i64 r0, r0, r2
    bra header
exit:
    ldp r3, 0
    st.i64 [r3], r0
    ret
";
        let p = parse(src).unwrap();
        let mut mem = Memory::new(8);
        Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        assert_eq!(mem.read_i64(0).unwrap(), 5);
    }

    #[test]
    fn memory_operand_forms() {
        let src = "
.kernel memforms
entry:
    ldp r0, 0
    mov r1, 1
    ld.i64 r2, [r0]
    ld.i64 r3, [r0 + 8]
    ld.i64 r4, [r0 + r1]
    ld.i64 r5, [r0 + r1 + 8]
    add.i64 r2, r2, r3
    add.i64 r2, r2, r4
    add.i64 r2, r2, r5
    st.i64 [r0], r2
    ret
";
        let p = parse(src).unwrap();
        let mut mem = Memory::new(24);
        mem.write_i64(0, 1).unwrap();
        mem.write_i64(8, 10).unwrap();
        mem.write_i64(16, 100).unwrap();
        Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        // [r0]=1, [r0+8]=10, [r0+r1 (idx 1 × 8B)]=10, [r0+r1+8]=100 → 121.
        assert_eq!(mem.read_i64(0).unwrap(), 121);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let src = ".kernel bad\nentry:\n    frobnicate r0, r1\n    ret\n";
        match parse(src) {
            Err(SptxError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("frobnicate"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_labels_and_unknown_targets() {
        let dup = ".kernel k\na:\n    ret\na:\n    ret\n";
        assert!(matches!(parse(dup), Err(SptxError::Parse { .. })));
        let unknown = ".kernel k\nentry:\n    bra nowhere\n";
        assert!(parse(unknown).is_err());
    }

    #[test]
    fn rejects_instruction_after_terminator() {
        let src = ".kernel k\nentry:\n    ret\n    mov r0, 1\n";
        assert!(matches!(parse(src), Err(SptxError::Parse { line: 4, .. })));
    }

    #[test]
    fn rejects_missing_kernel_directive() {
        assert!(parse("entry:\n    ret\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "
// leading comment
.kernel c
entry:          # entry block
    ret         // done
";
        assert!(parse(src).is_ok());
    }
}
