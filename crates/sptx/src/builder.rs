//! A fluent, programmatic builder for [`KernelProgram`]s.
//!
//! The builder hands out fresh registers, accumulates instructions into the current
//! basic block, and seals blocks when a terminator is emitted. [`ProgramBuilder::build`]
//! runs the [validator](crate::validate::validate), so the returned program is always
//! structurally sound.

use crate::error::SptxError;
use crate::isa::{
    BinOp, BlockId, CmpOp, Imm, Instr, Pred, Reg, ScalarType, Special, Terminator, UnaryOp,
};
use crate::program::{BasicBlock, KernelProgram};
use crate::validate::validate;

/// Builder for [`KernelProgram`].
///
/// # Example
///
/// A kernel that doubles every element of a buffer:
///
/// ```
/// use sigmavp_sptx::builder::ProgramBuilder;
/// use sigmavp_sptx::isa::{BinOp, ScalarType, Special};
///
/// # fn main() -> Result<(), sigmavp_sptx::SptxError> {
/// let mut b = ProgramBuilder::new("double");
/// let (idx, base, v) = (b.reg(), b.reg(), b.reg());
/// b.read_special(idx, Special::GlobalTid)
///     .ld_param(base, 0)
///     .ld_indexed(ScalarType::F32, v, base, idx, 0)
///     .binop(BinOp::Add, ScalarType::F32, v, v, v)
///     .st_indexed(ScalarType::F32, base, idx, 0, v)
///     .ret();
/// let program = b.build()?;
/// assert_eq!(program.name(), "double");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    sealed: Vec<Option<BasicBlock>>,
    current: Vec<Instr>,
    current_id: BlockId,
    current_label: Option<String>,
    next_reg: u16,
    next_pred: u8,
    max_param: Option<usize>,
}

impl ProgramBuilder {
    /// Start building a kernel with the given name. Block 0 (the entry block) is
    /// open and current.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            sealed: vec![None],
            current: Vec::new(),
            current_id: BlockId(0),
            current_label: None,
            next_reg: 0,
            next_pred: 0,
            max_param: None,
        }
    }

    /// Allocate a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocate a fresh predicate register.
    pub fn pred(&mut self) -> Pred {
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Reserve a basic block id to be filled in later (needed for forward branches,
    /// e.g. loop exits). Use [`ProgramBuilder::switch_to`] to start emitting into it.
    pub fn declare_block(&mut self) -> BlockId {
        let id = BlockId(self.sealed.len() as u32);
        self.sealed.push(None);
        id
    }

    /// Begin emitting into a previously declared block.
    ///
    /// # Panics
    ///
    /// Panics if the current block has unsealed instructions (emit a terminator
    /// first) or if `id` was already filled.
    pub fn switch_to(&mut self, id: BlockId) -> &mut Self {
        assert!(
            self.current.is_empty(),
            "current block {} has instructions but no terminator",
            self.current_id
        );
        assert!(
            self.sealed.get(id.0 as usize).map(|s| s.is_none()).unwrap_or(false),
            "block {id} was not declared or is already sealed"
        );
        self.current_id = id;
        self.current_label = None;
        self
    }

    /// Attach a human-readable label to the current block (for disassembly).
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        self.current_label = Some(label.into());
        self
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.current.push(i);
        self
    }

    /// Emit a binary operation `dst = a <op> b`.
    pub fn binop(&mut self, op: BinOp, ty: ScalarType, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Bin { op, ty, dst, a, b })
    }

    /// Emit a unary operation `dst = <op> a`.
    pub fn unop(&mut self, op: UnaryOp, ty: ScalarType, dst: Reg, a: Reg) -> &mut Self {
        self.push(Instr::Un { op, ty, dst, a })
    }

    /// Emit a fused multiply-add `dst = a * b + c`.
    pub fn mad(&mut self, ty: ScalarType, dst: Reg, a: Reg, b: Reg, c: Reg) -> &mut Self {
        self.push(Instr::Mad { ty, dst, a, b, c })
    }

    /// Emit an integer immediate move.
    pub fn mov_imm_i(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.push(Instr::MovImm { dst, imm: Imm::I(value) })
    }

    /// Emit a floating-point immediate move.
    pub fn mov_imm_f(&mut self, dst: Reg, value: f64) -> &mut Self {
        self.push(Instr::MovImm { dst, imm: Imm::F(value) })
    }

    /// Emit a register-to-register move.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov { dst, src })
    }

    /// Emit a type conversion `dst = (to) src`.
    pub fn cvt(&mut self, to: ScalarType, from: ScalarType, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Cvt { to, from, dst, src })
    }

    /// Emit a predicate-setting comparison.
    pub fn setp(&mut self, cmp: CmpOp, ty: ScalarType, pred: Pred, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Setp { cmp, ty, pred, a, b })
    }

    /// Emit a special-register read.
    pub fn read_special(&mut self, dst: Reg, special: Special) -> &mut Self {
        self.push(Instr::ReadSpecial { dst, special })
    }

    /// Emit a kernel-parameter load.
    pub fn ld_param(&mut self, dst: Reg, index: usize) -> &mut Self {
        self.max_param = Some(self.max_param.map_or(index, |m| m.max(index)));
        self.push(Instr::LdParam { dst, index })
    }

    /// Emit a direct load `dst = *(ty*)(base + offset)`.
    pub fn ld(&mut self, ty: ScalarType, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Ld { ty, dst, base, index: None, offset })
    }

    /// Emit an indexed load `dst = *(ty*)(base + index * ty.width() + offset)`.
    pub fn ld_indexed(
        &mut self,
        ty: ScalarType,
        dst: Reg,
        base: Reg,
        index: Reg,
        offset: i64,
    ) -> &mut Self {
        self.push(Instr::Ld { ty, dst, base, index: Some(index), offset })
    }

    /// Emit a direct store `*(ty*)(base + offset) = src`.
    pub fn st(&mut self, ty: ScalarType, base: Reg, offset: i64, src: Reg) -> &mut Self {
        self.push(Instr::St { ty, base, index: None, offset, src })
    }

    /// Emit an indexed store `*(ty*)(base + index * ty.width() + offset) = src`.
    pub fn st_indexed(
        &mut self,
        ty: ScalarType,
        base: Reg,
        index: Reg,
        offset: i64,
        src: Reg,
    ) -> &mut Self {
        self.push(Instr::St { ty, base, index: Some(index), offset, src })
    }

    fn seal(&mut self, terminator: Terminator) {
        let block = BasicBlock {
            instrs: std::mem::take(&mut self.current),
            terminator,
            label: self.current_label.take(),
        };
        self.sealed[self.current_id.0 as usize] = Some(block);
    }

    /// Seal the current block with an unconditional branch and open a fresh block as
    /// the branch target, returning its id.
    pub fn bra_new_block(&mut self) -> BlockId {
        let next = self.declare_block();
        self.seal(Terminator::Bra(next));
        self.current_id = next;
        next
    }

    /// Seal the current block with an unconditional branch to `target`.
    pub fn bra(&mut self, target: BlockId) -> &mut Self {
        self.seal(Terminator::Bra(target));
        self
    }

    /// Seal the current block with a conditional branch.
    pub fn cond_bra(&mut self, pred: Pred, if_true: BlockId, if_false: BlockId) -> &mut Self {
        self.seal(Terminator::CondBra { pred, if_true, if_false });
        self
    }

    /// Seal the current block with a return.
    pub fn ret(&mut self) -> &mut Self {
        self.seal(Terminator::Ret);
        self
    }

    /// Finish the program, validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`SptxError`] if any declared block was never filled, a branch
    /// target is unknown, or a register is used before definition (see
    /// [`crate::validate::validate`]).
    pub fn build(&mut self) -> Result<KernelProgram, SptxError> {
        let mut blocks = Vec::with_capacity(self.sealed.len());
        for (i, b) in self.sealed.iter().enumerate() {
            match b {
                Some(b) => blocks.push(b.clone()),
                None => return Err(SptxError::MissingTerminator(BlockId(i as u32))),
            }
        }
        let program = KernelProgram::from_parts(
            self.name.clone(),
            blocks,
            self.next_reg,
            self.next_pred,
            self.max_param.map_or(0, |m| m + 1),
        );
        validate(&program)?;
        Ok(program)
    }
}

/// Convenience: build a simple counted loop.
///
/// Emits, into `b`, a loop that runs `trip_count` times executing `body` each
/// iteration with the loop counter available in a register. After the call the
/// builder is positioned in the loop's exit block.
///
/// # Example
///
/// ```
/// use sigmavp_sptx::builder::{for_loop, ProgramBuilder};
/// use sigmavp_sptx::isa::{BinOp, ScalarType};
///
/// # fn main() -> Result<(), sigmavp_sptx::SptxError> {
/// let mut b = ProgramBuilder::new("sum");
/// let acc = b.reg();
/// b.mov_imm_i(acc, 0);
/// for_loop(&mut b, 10, |b, i| {
///     b.binop(BinOp::Add, ScalarType::I64, acc, acc, i);
/// });
/// b.ret();
/// let p = b.build()?;
/// assert!(p.blocks().len() >= 3);
/// # Ok(())
/// # }
/// ```
pub fn for_loop(
    b: &mut ProgramBuilder,
    trip_count: i64,
    body: impl FnOnce(&mut ProgramBuilder, Reg),
) {
    let i = b.reg();
    let limit = b.reg();
    let one = b.reg();
    let p = b.pred();
    b.mov_imm_i(i, 0).mov_imm_i(limit, trip_count).mov_imm_i(one, 1);

    let header = b.declare_block();
    let body_block = b.declare_block();
    let exit = b.declare_block();

    b.bra(header);
    b.switch_to(header).label("loop_header");
    b.setp(CmpOp::Lt, ScalarType::I64, p, i, limit).cond_bra(p, body_block, exit);

    b.switch_to(body_block).label("loop_body");
    body(b, i);
    b.binop(BinOp::Add, ScalarType::I64, i, i, one).bra(header);

    b.switch_to(exit).label("loop_exit");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, LaunchConfig, Memory, ParamValue};
    use crate::isa::InstrClass;

    #[test]
    fn straight_line_build() {
        let mut b = ProgramBuilder::new("k");
        let r = b.reg();
        b.mov_imm_i(r, 5).ret();
        let p = b.build().unwrap();
        assert_eq!(p.blocks().len(), 1);
        assert_eq!(p.num_regs(), 1);
        assert_eq!(p.num_params(), 0);
    }

    #[test]
    fn unsealed_declared_block_is_an_error() {
        let mut b = ProgramBuilder::new("k");
        let _orphan = b.declare_block();
        let r = b.reg();
        b.mov_imm_i(r, 1).ret();
        assert!(matches!(b.build(), Err(SptxError::MissingTerminator(_))));
    }

    #[test]
    fn param_count_tracks_max_index() {
        let mut b = ProgramBuilder::new("k");
        let r = b.reg();
        b.ld_param(r, 3).ret();
        let p = b.build().unwrap();
        assert_eq!(p.num_params(), 4);
    }

    #[test]
    fn for_loop_executes_trip_count_times() {
        let mut b = ProgramBuilder::new("loop10");
        let acc = b.reg();
        let base = b.reg();
        b.mov_imm_i(acc, 0);
        for_loop(&mut b, 10, |b, i| {
            b.binop(BinOp::Add, ScalarType::I64, acc, acc, i);
        });
        b.ld_param(base, 0).st(ScalarType::I64, base, 0, acc).ret();
        let p = b.build().unwrap();

        let mut mem = Memory::new(8);
        let profile = Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        assert_eq!(mem.read_i64(0).unwrap(), 45); // 0+1+..+9
                                                  // The loop header executed 11 times (10 taken + 1 exit check).
        assert!(profile.counts.get(InstrClass::Branch) >= 11);
    }

    #[test]
    fn nested_loops_compose() {
        let mut b = ProgramBuilder::new("nest");
        let acc = b.reg();
        let base = b.reg();
        let one = b.reg();
        b.mov_imm_i(acc, 0).mov_imm_i(one, 1);
        for_loop(&mut b, 3, |b, _i| {
            // Inner loop must be built inline: for_loop leaves the builder in the
            // exit block, so nest by calling it inside the body closure.
            for_loop(b, 4, |b, _j| {
                b.binop(BinOp::Add, ScalarType::I64, acc, acc, one);
            });
        });
        b.ld_param(base, 0).st(ScalarType::I64, base, 0, acc).ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8);
        Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        assert_eq!(mem.read_i64(0).unwrap(), 12);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn switching_with_open_instructions_panics() {
        let mut b = ProgramBuilder::new("k");
        let r = b.reg();
        let other = b.declare_block();
        b.mov_imm_i(r, 1);
        b.switch_to(other);
    }
}
