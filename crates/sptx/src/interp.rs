//! A scalar interpreter for SPTX kernels over a CUDA-style grid.
//!
//! The interpreter serves two roles in ΣVP:
//!
//! * **functional execution** — both the host-GPU device model and the GPU-emulation
//!   path on the virtual platform use it to actually compute kernel results, and
//! * **profiling** — every run yields an [`ExecutionProfile`] with per-class dynamic
//!   instruction counts, per-block iteration counts λ and a memory-trace summary.
//!
//! SPTX has no inter-thread communication primitives, so sequential execution is
//! observationally equivalent to any parallel schedule. With `workers = 1` the
//! interpreter executes the grid sequentially (block by block, thread by thread);
//! with more workers, independent thread blocks run concurrently on the
//! process-wide [`exec::WorkerPool`](crate::exec::WorkerPool) and are merged
//! deterministically so results stay byte-identical to the sequential path
//! (per-block overlay memory plus journal replay in `(ctaid, tid)` order).

use crate::counters::{ExecutionProfile, MemoryTraceSummary, SegmentSet};
use crate::error::SptxError;
use crate::isa::{BinOp, BlockId, CmpOp, Imm, Instr, ScalarType, Special, Terminator, UnaryOp};
use crate::program::KernelProgram;

/// Byte granularity used for the memory-trace spatial-locality summary; matches the
/// 128-byte global-memory transaction segments of real CUDA devices.
pub const MEMORY_SEGMENT_BYTES: u64 = 128;

/// A kernel launch shape: a 1-D grid of 1-D thread blocks (the paper's experiments
/// all use 1-D launches; Fig. 10b sweeps `grid_dim` 1..64 at `block_dim = 512`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid (`gridDim.x`).
    pub grid_dim: u32,
    /// Threads per block (`blockDim.x`).
    pub block_dim: u32,
}

impl LaunchConfig {
    /// Maximum threads per block, mirroring CUDA's limit.
    pub const MAX_BLOCK_DIM: u32 = 1024;

    /// A linear launch of `grid_dim` blocks × `block_dim` threads.
    pub fn linear(grid_dim: u32, block_dim: u32) -> Self {
        Self { grid_dim, block_dim }
    }

    /// The launch shape that covers `n` elements with `block_dim`-thread blocks
    /// (`⌈n / block_dim⌉` blocks).
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::BadLaunch`] when the required grid exceeds
    /// `u32::MAX` blocks (previously the count was silently truncated).
    ///
    /// # Panics
    ///
    /// Panics if `block_dim` is zero.
    pub fn covering(n: u64, block_dim: u32) -> Result<Self, SptxError> {
        assert!(block_dim > 0, "block_dim must be positive");
        let grid = n.div_ceil(block_dim as u64).max(1);
        if grid > u32::MAX as u64 {
            return Err(SptxError::BadLaunch(format!(
                "covering {n} elements with {block_dim}-thread blocks needs {grid} blocks, \
                 exceeding the u32 grid limit"
            )));
        }
        Ok(Self { grid_dim: grid as u32, block_dim })
    }

    /// Total number of threads launched.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Check the configuration against implementation limits.
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::BadLaunch`] for zero-sized dimensions or an oversized
    /// block.
    pub fn validate(&self) -> Result<(), SptxError> {
        if self.grid_dim == 0 || self.block_dim == 0 {
            return Err(SptxError::BadLaunch("grid and block dimensions must be positive".into()));
        }
        if self.block_dim > Self::MAX_BLOCK_DIM {
            return Err(SptxError::BadLaunch(format!(
                "block dimension {} exceeds the limit of {}",
                self.block_dim,
                Self::MAX_BLOCK_DIM
            )));
        }
        Ok(())
    }
}

/// A kernel parameter: either a pointer into kernel global [`Memory`] or an
/// immediate scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// Byte offset into the launch's global memory.
    Ptr(u64),
    /// 64-bit float scalar.
    F64(f64),
    /// 32-bit float scalar.
    F32(f32),
    /// 64-bit integer scalar.
    I64(i64),
}

/// Flat, bounds-checked global memory for a kernel launch.
///
/// ΣVP's Kernel Coalescing copies several VPs' buffers into one contiguous `Memory`
/// before a merged launch and scatters results back afterwards (paper Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocate `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        Self { bytes: vec![0; size] }
    }

    /// Create memory from existing bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the memory is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw byte view.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    pub(crate) fn check(&self, addr: u64, width: u64) -> Result<usize, SptxError> {
        let end = addr.checked_add(width).ok_or(SptxError::OutOfBoundsAccess {
            addr,
            width,
            mem_size: self.bytes.len() as u64,
        })?;
        if end > self.bytes.len() as u64 {
            return Err(SptxError::OutOfBoundsAccess {
                addr,
                width,
                mem_size: self.bytes.len() as u64,
            });
        }
        Ok(addr as usize)
    }

    /// Read an `f32` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the access exceeds the memory.
    pub fn read_f32(&self, addr: u64) -> Result<f32, SptxError> {
        let a = self.check(addr, 4)?;
        Ok(f32::from_le_bytes(self.bytes[a..a + 4].try_into().expect("width checked")))
    }

    /// Read an `f64` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the access exceeds the memory.
    pub fn read_f64(&self, addr: u64) -> Result<f64, SptxError> {
        let a = self.check(addr, 8)?;
        Ok(f64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("width checked")))
    }

    /// Read an `i64` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the access exceeds the memory.
    pub fn read_i64(&self, addr: u64) -> Result<i64, SptxError> {
        let a = self.check(addr, 8)?;
        Ok(i64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("width checked")))
    }

    /// Write an `f32` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the access exceeds the memory.
    pub fn write_f32(&mut self, addr: u64, v: f32) -> Result<(), SptxError> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Write an `f64` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the access exceeds the memory.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), SptxError> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Write an `i64` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the access exceeds the memory.
    pub fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), SptxError> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copy `src` into memory starting at `addr` (a host-to-device memcpy).
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the region exceeds the memory.
    pub fn write_slice(&mut self, addr: u64, src: &[u8]) -> Result<(), SptxError> {
        let a = self.check(addr, src.len() as u64)?;
        self.bytes[a..a + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Borrow `len` bytes starting at `addr` (a device-to-host memcpy view).
    ///
    /// # Errors
    ///
    /// Returns [`SptxError::OutOfBoundsAccess`] if the region exceeds the memory.
    pub fn read_slice(&self, addr: u64, len: u64) -> Result<&[u8], SptxError> {
        let a = self.check(addr, len)?;
        Ok(&self.bytes[a..a + len as usize])
    }
}

/// Internal register value: all registers are 64 bits wide and dynamically typed
/// between float and integer interpretations, like PTX untyped registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Value {
    F(f64),
    I(i64),
}

impl Value {
    pub(crate) fn as_f64(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(v) => v as f64,
        }
    }

    pub(crate) fn as_i64(self) -> i64 {
        match self {
            Value::F(v) => v as i64,
            Value::I(v) => v,
        }
    }
}

/// The data space a thread's loads and stores resolve against.
///
/// The sequential path executes directly on [`Memory`]; the block-parallel
/// path executes each block on an overlay (base memory plus the block's own
/// journaled writes) so independent blocks never contend. Both paths share
/// the same thread-execution code via this trait.
pub(crate) trait DataSpace {
    fn read_f32(&self, addr: u64) -> Result<f32, SptxError>;
    fn read_f64(&self, addr: u64) -> Result<f64, SptxError>;
    fn read_i64(&self, addr: u64) -> Result<i64, SptxError>;
    fn write_f32(&mut self, addr: u64, v: f32) -> Result<(), SptxError>;
    fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), SptxError>;
    fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), SptxError>;
    /// Bounds-check a whole span at once; the warp tier uses this to validate
    /// a coalesced access with one check instead of one per lane.
    fn check_span(&self, addr: u64, len: u64) -> Result<(), SptxError>;
    /// Reads for spans already validated by [`DataSpace::check_span`]. The
    /// defaults fall back to the checked reads, so implementors only override
    /// them when skipping the per-access check is worth it.
    fn read_f32_unchecked(&self, addr: u64) -> f32 {
        self.read_f32(addr).expect("span pre-checked")
    }
    fn read_f64_unchecked(&self, addr: u64) -> f64 {
        self.read_f64(addr).expect("span pre-checked")
    }
    fn read_i64_unchecked(&self, addr: u64) -> i64 {
        self.read_i64(addr).expect("span pre-checked")
    }
}

impl DataSpace for Memory {
    fn read_f32(&self, addr: u64) -> Result<f32, SptxError> {
        Memory::read_f32(self, addr)
    }
    fn read_f64(&self, addr: u64) -> Result<f64, SptxError> {
        Memory::read_f64(self, addr)
    }
    fn read_i64(&self, addr: u64) -> Result<i64, SptxError> {
        Memory::read_i64(self, addr)
    }
    fn write_f32(&mut self, addr: u64, v: f32) -> Result<(), SptxError> {
        Memory::write_f32(self, addr, v)
    }
    fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), SptxError> {
        Memory::write_f64(self, addr, v)
    }
    fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), SptxError> {
        Memory::write_i64(self, addr, v)
    }
    fn check_span(&self, addr: u64, len: u64) -> Result<(), SptxError> {
        self.check(addr, len).map(|_| ())
    }
    fn read_f32_unchecked(&self, addr: u64) -> f32 {
        let o = addr as usize;
        f32::from_le_bytes(self.bytes[o..o + 4].try_into().expect("span pre-checked"))
    }
    fn read_f64_unchecked(&self, addr: u64) -> f64 {
        let o = addr as usize;
        f64::from_le_bytes(self.bytes[o..o + 8].try_into().expect("span pre-checked"))
    }
    fn read_i64_unchecked(&self, addr: u64) -> i64 {
        let o = addr as usize;
        i64::from_le_bytes(self.bytes[o..o + 8].try_into().expect("span pre-checked"))
    }
}

/// Selects how the interpreter executes a launch.
///
/// Both tiers produce byte-identical memory, [`ExecutionProfile`]s and
/// errors; the warp tier is simply faster on the common case. See
/// `DESIGN.md` §16 for the tier architecture and the determinism argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier {
    /// One thread at a time over the program AST — the reference semantics.
    Scalar,
    /// 32-lane warp lockstep over a predecoded op stream, falling back to
    /// [`Tier::Scalar`] per CTA on cross-lane hazards, faults, or budget
    /// exhaustion, and for programs the decoder rejects.
    #[default]
    Warp,
}

/// The SPTX interpreter.
///
/// Construct with [`Interpreter::new`], optionally tighten the per-launch instruction
/// budget with [`Interpreter::with_budget`] or set the block-level parallelism with
/// [`Interpreter::with_workers`], then call [`Interpreter::run`].
#[derive(Debug, Clone)]
pub struct Interpreter {
    pub(crate) budget: u64,
    /// Block-level parallelism: 0 = all available cores, 1 = sequential.
    pub(crate) workers: u32,
    /// Execution tier; [`Tier::Warp`] by default.
    pub(crate) tier: Tier,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Default per-launch dynamic instruction budget (4 × 10⁹).
    pub const DEFAULT_BUDGET: u64 = 4_000_000_000;

    /// An interpreter with the default instruction budget, using every
    /// available core for block-parallel execution.
    pub fn new() -> Self {
        Self { budget: Self::DEFAULT_BUDGET, workers: 0, tier: Tier::default() }
    }

    /// Set the per-launch instruction budget; execution aborts with
    /// [`SptxError::InstructionBudgetExceeded`] when the whole launch exceeds it.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Set block-level parallelism: `0` means all available cores (the
    /// default), `1` forces the sequential path, and `n > 1` caps the number
    /// of concurrent blocks at `n`. The parallel path merges per-worker
    /// results in `(ctaid, tid)` order, so every setting produces
    /// byte-identical memory, profiles and errors.
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.workers = workers;
        self
    }

    /// Select the execution [`Tier`]. The default is [`Tier::Warp`]; both
    /// tiers are byte-identical in results, profiles, and errors, so this is
    /// purely a performance/ablation knob.
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// The currently selected execution tier.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The effective worker count: `workers`, with 0 resolved to the host's
    /// available parallelism.
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => crate::exec::default_workers(),
            n => n as usize,
        }
    }

    /// Execute `program` over the full grid described by `cfg`, reading and writing
    /// `mem`, and return the launch's [`ExecutionProfile`].
    ///
    /// # Errors
    ///
    /// Returns a [`SptxError`] for invalid launches, parameter-index or bounds
    /// violations, integer division by zero, or budget exhaustion.
    pub fn run(
        &self,
        program: &KernelProgram,
        cfg: &LaunchConfig,
        params: &[ParamValue],
        mem: &mut Memory,
    ) -> Result<ExecutionProfile, SptxError> {
        cfg.validate()?;
        if program.num_params() > params.len() {
            return Err(SptxError::BadParamIndex {
                index: program.num_params() - 1,
                supplied: params.len(),
            });
        }

        let decoded = match self.tier {
            Tier::Warp => crate::decode::decode(program),
            Tier::Scalar => None,
        };

        let workers = self.effective_workers();
        if workers > 1 && cfg.grid_dim > 1 {
            return crate::parallel::run_parallel(
                self,
                program,
                decoded.as_deref(),
                cfg,
                params,
                mem,
                workers,
            );
        }
        if let Some(dec) = decoded {
            return crate::warp::run_sequential(self, program, &dec, cfg, params, mem);
        }

        let mut class_counts = [0u64; 7];
        let mut block_iters = vec![0u64; program.blocks().len()];
        let mut segments = SegmentSet::new();
        let mut trace = MemoryTraceSummary::default();
        let mut executed: u64 = 0;

        let mut regs = vec![Value::I(0); program.num_regs() as usize];
        let mut preds = vec![false; program.num_preds() as usize];

        for ctaid in 0..cfg.grid_dim {
            for tid in 0..cfg.block_dim {
                // Registers are per-thread; reset them rather than reallocate.
                regs.iter_mut().for_each(|r| *r = Value::I(0));
                preds.iter_mut().for_each(|p| *p = false);
                self.run_thread(
                    program,
                    cfg,
                    params,
                    mem,
                    ctaid,
                    tid,
                    &mut regs,
                    &mut preds,
                    &mut class_counts,
                    &mut block_iters,
                    &mut segments,
                    &mut trace,
                    &mut executed,
                )?;
            }
        }

        let mut profile = ExecutionProfile::new();
        for (c, n) in crate::isa::InstrClass::ALL.iter().zip(class_counts.iter()) {
            profile.counts.add(*c, *n);
        }
        for (i, n) in block_iters.iter().enumerate() {
            if *n > 0 {
                profile.block_iterations.insert(BlockId(i as u32), *n);
            }
        }
        trace.unique_segments = segments.distinct();
        profile.memory = trace;
        profile.threads = cfg.total_threads();
        let r = sigmavp_telemetry::recorder();
        if r.enabled() {
            r.count("sptx.launches", 1);
            r.count("sptx.instructions_executed", executed);
        }
        Ok(profile)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_thread<M: DataSpace>(
        &self,
        program: &KernelProgram,
        cfg: &LaunchConfig,
        params: &[ParamValue],
        mem: &mut M,
        ctaid: u32,
        tid: u32,
        regs: &mut [Value],
        preds: &mut [bool],
        class_counts: &mut [u64; 7],
        block_iters: &mut [u64],
        segments: &mut SegmentSet,
        trace: &mut MemoryTraceSummary,
        executed: &mut u64,
    ) -> Result<(), SptxError> {
        let mut block_id = BlockId(0);
        loop {
            let block = program.block(block_id).expect("validated program");
            block_iters[block_id.0 as usize] += 1;

            for instr in &block.instrs {
                *executed += 1;
                if *executed > self.budget {
                    return Err(SptxError::InstructionBudgetExceeded { budget: self.budget });
                }
                class_counts[instr.class().index()] += 1;
                self.exec_instr(
                    instr, program, cfg, params, mem, ctaid, tid, regs, preds, segments, trace,
                    block_id,
                )?;
            }

            match block.terminator {
                Terminator::Ret => return Ok(()),
                Terminator::Bra(t) => {
                    *executed += 1;
                    class_counts[crate::isa::InstrClass::Branch.index()] += 1;
                    block_id = t;
                }
                Terminator::CondBra { pred, if_true, if_false } => {
                    *executed += 1;
                    class_counts[crate::isa::InstrClass::Branch.index()] += 1;
                    block_id = if preds[pred.0 as usize] { if_true } else { if_false };
                }
            }
            if *executed > self.budget {
                return Err(SptxError::InstructionBudgetExceeded { budget: self.budget });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_instr<M: DataSpace>(
        &self,
        instr: &Instr,
        _program: &KernelProgram,
        cfg: &LaunchConfig,
        params: &[ParamValue],
        mem: &mut M,
        ctaid: u32,
        tid: u32,
        regs: &mut [Value],
        preds: &mut [bool],
        segments: &mut SegmentSet,
        trace: &mut MemoryTraceSummary,
        block_id: BlockId,
    ) -> Result<(), SptxError> {
        match instr {
            Instr::Bin { op, ty, dst, a, b } => {
                let av = regs[a.0 as usize];
                let bv = regs[b.0 as usize];
                regs[dst.0 as usize] = eval_bin(*op, *ty, av, bv, block_id)?;
            }
            Instr::Un { op, ty, dst, a } => {
                let av = regs[a.0 as usize];
                regs[dst.0 as usize] = eval_un(*op, *ty, av);
            }
            Instr::Mad { ty, dst, a, b, c } => {
                let (av, bv, cv) = (regs[a.0 as usize], regs[b.0 as usize], regs[c.0 as usize]);
                regs[dst.0 as usize] = match ty {
                    // GPU mad/fma fuses the multiply and add with a single
                    // rounding, like `f32::mul_add`.
                    ScalarType::F32 => Value::F(
                        (av.as_f64() as f32).mul_add(bv.as_f64() as f32, cv.as_f64() as f32) as f64,
                    ),
                    ScalarType::F64 => Value::F(av.as_f64() * bv.as_f64() + cv.as_f64()),
                    ScalarType::I64 => {
                        Value::I(av.as_i64().wrapping_mul(bv.as_i64()).wrapping_add(cv.as_i64()))
                    }
                };
            }
            Instr::MovImm { dst, imm } => {
                regs[dst.0 as usize] = match imm {
                    Imm::F(v) => Value::F(*v),
                    Imm::I(v) => Value::I(*v),
                };
            }
            Instr::Mov { dst, src } => regs[dst.0 as usize] = regs[src.0 as usize],
            Instr::Cvt { to, from, dst, src } => {
                let v = regs[src.0 as usize];
                regs[dst.0 as usize] = match (from, to) {
                    (_, ScalarType::I64) => Value::I(v.as_i64()),
                    (ScalarType::I64, ScalarType::F32) => Value::F(v.as_i64() as f32 as f64),
                    (ScalarType::I64, ScalarType::F64) => Value::F(v.as_i64() as f64),
                    (_, ScalarType::F32) => Value::F(v.as_f64() as f32 as f64),
                    (_, ScalarType::F64) => Value::F(v.as_f64()),
                };
            }
            Instr::Setp { cmp, ty, pred, a, b } => {
                let av = regs[a.0 as usize];
                let bv = regs[b.0 as usize];
                preds[pred.0 as usize] = match ty {
                    ScalarType::I64 => compare_ord(*cmp, av.as_i64().cmp(&bv.as_i64())),
                    ScalarType::F32 => {
                        compare_f(*cmp, av.as_f64() as f32 as f64, bv.as_f64() as f32 as f64)
                    }
                    ScalarType::F64 => compare_f(*cmp, av.as_f64(), bv.as_f64()),
                };
            }
            Instr::ReadSpecial { dst, special } => {
                let v = match special {
                    Special::TidX => tid as i64,
                    Special::NTidX => cfg.block_dim as i64,
                    Special::CtaIdX => ctaid as i64,
                    Special::NCtaIdX => cfg.grid_dim as i64,
                    Special::GlobalTid => ctaid as i64 * cfg.block_dim as i64 + tid as i64,
                };
                regs[dst.0 as usize] = Value::I(v);
            }
            Instr::LdParam { dst, index } => {
                let p = params
                    .get(*index)
                    .ok_or(SptxError::BadParamIndex { index: *index, supplied: params.len() })?;
                regs[dst.0 as usize] = match p {
                    ParamValue::Ptr(a) => Value::I(*a as i64),
                    ParamValue::F64(v) => Value::F(*v),
                    ParamValue::F32(v) => Value::F(*v as f64),
                    ParamValue::I64(v) => Value::I(*v),
                };
            }
            Instr::Ld { ty, dst, base, index, offset } => {
                let addr = effective_addr(regs, *base, *index, *offset, *ty);
                trace.accesses += 1;
                trace.load_bytes += ty.width();
                segments.insert(addr / MEMORY_SEGMENT_BYTES);
                regs[dst.0 as usize] = match ty {
                    ScalarType::F32 => Value::F(mem.read_f32(addr)? as f64),
                    ScalarType::F64 => Value::F(mem.read_f64(addr)?),
                    ScalarType::I64 => Value::I(mem.read_i64(addr)?),
                };
            }
            Instr::St { ty, base, index, offset, src } => {
                let addr = effective_addr(regs, *base, *index, *offset, *ty);
                trace.accesses += 1;
                trace.store_bytes += ty.width();
                segments.insert(addr / MEMORY_SEGMENT_BYTES);
                let v = regs[src.0 as usize];
                match ty {
                    ScalarType::F32 => mem.write_f32(addr, v.as_f64() as f32)?,
                    ScalarType::F64 => mem.write_f64(addr, v.as_f64())?,
                    ScalarType::I64 => mem.write_i64(addr, v.as_i64())?,
                }
            }
        }
        Ok(())
    }
}

fn effective_addr(
    regs: &[Value],
    base: crate::isa::Reg,
    index: Option<crate::isa::Reg>,
    offset: i64,
    ty: ScalarType,
) -> u64 {
    let base_v = regs[base.0 as usize].as_i64();
    let idx_v = index.map_or(0, |r| regs[r.0 as usize].as_i64());
    base_v.wrapping_add(idx_v.wrapping_mul(ty.width() as i64)).wrapping_add(offset) as u64
}

pub(crate) fn eval_bin(
    op: BinOp,
    ty: ScalarType,
    a: Value,
    b: Value,
    block: BlockId,
) -> Result<Value, SptxError> {
    if op.is_bitwise() || ty == ScalarType::I64 {
        let (x, y) = (a.as_i64(), b.as_i64());
        let v = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(SptxError::DivisionByZero { block });
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(SptxError::DivisionByZero { block });
                }
                x.wrapping_rem(y)
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        };
        // Bitwise ops on float-typed values operate on the integer view; arithmetic
        // with an integer type yields an integer.
        return Ok(Value::I(v));
    }
    let (x, y) = (a.as_f64(), b.as_f64());
    let v = match (op, ty) {
        (BinOp::Add, ScalarType::F32) => ((x as f32) + (y as f32)) as f64,
        (BinOp::Sub, ScalarType::F32) => ((x as f32) - (y as f32)) as f64,
        (BinOp::Mul, ScalarType::F32) => ((x as f32) * (y as f32)) as f64,
        (BinOp::Div, ScalarType::F32) => ((x as f32) / (y as f32)) as f64,
        (BinOp::Rem, ScalarType::F32) => ((x as f32) % (y as f32)) as f64,
        (BinOp::Min, ScalarType::F32) => ((x as f32).min(y as f32)) as f64,
        (BinOp::Max, ScalarType::F32) => ((x as f32).max(y as f32)) as f64,
        (BinOp::Add, _) => x + y,
        (BinOp::Sub, _) => x - y,
        (BinOp::Mul, _) => x * y,
        (BinOp::Div, _) => x / y,
        (BinOp::Rem, _) => x % y,
        (BinOp::Min, _) => x.min(y),
        (BinOp::Max, _) => x.max(y),
        (bw, _) => unreachable!("bitwise op {bw:?} handled above"),
    };
    Ok(Value::F(v))
}

pub(crate) fn eval_un(op: UnaryOp, ty: ScalarType, a: Value) -> Value {
    if op.is_bitwise() {
        return Value::I(!a.as_i64());
    }
    if ty == ScalarType::I64 && matches!(op, UnaryOp::Neg | UnaryOp::Abs) {
        let x = a.as_i64();
        return Value::I(match op {
            UnaryOp::Neg => x.wrapping_neg(),
            UnaryOp::Abs => x.wrapping_abs(),
            _ => unreachable!(),
        });
    }
    let x = if ty == ScalarType::F32 { a.as_f64() as f32 as f64 } else { a.as_f64() };
    let v = match op {
        UnaryOp::Neg => -x,
        UnaryOp::Abs => x.abs(),
        UnaryOp::Sqrt => x.sqrt(),
        UnaryOp::Exp => x.exp(),
        UnaryOp::Log => x.ln(),
        UnaryOp::Sin => x.sin(),
        UnaryOp::Cos => x.cos(),
        UnaryOp::Not => unreachable!("bitwise handled above"),
    };
    Value::F(if ty == ScalarType::F32 { v as f32 as f64 } else { v })
}

pub(crate) fn compare_ord(cmp: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match cmp {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

pub(crate) fn compare_f(cmp: CmpOp, a: f64, b: f64) -> bool {
    match cmp {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{for_loop, ProgramBuilder};
    use crate::isa::InstrClass;

    fn run_simple(
        program: &KernelProgram,
        mem: &mut Memory,
        params: &[ParamValue],
    ) -> ExecutionProfile {
        Interpreter::new().run(program, &LaunchConfig::linear(1, 1), params, mem).unwrap()
    }

    #[test]
    fn memory_round_trips() {
        let mut m = Memory::new(32);
        m.write_f32(0, 1.5).unwrap();
        m.write_f64(8, -2.25).unwrap();
        m.write_i64(16, -7).unwrap();
        assert_eq!(m.read_f32(0).unwrap(), 1.5);
        assert_eq!(m.read_f64(8).unwrap(), -2.25);
        assert_eq!(m.read_i64(16).unwrap(), -7);
    }

    #[test]
    fn memory_bounds_are_enforced() {
        let mut m = Memory::new(8);
        assert!(m.read_f64(1).is_err());
        assert!(m.write_f32(6, 0.0).is_err());
        assert!(m.read_f32(u64::MAX - 1).is_err());
        assert!(m.write_slice(4, &[0; 8]).is_err());
    }

    #[test]
    fn launch_validation() {
        assert!(LaunchConfig::linear(0, 32).validate().is_err());
        assert!(LaunchConfig::linear(4, 0).validate().is_err());
        assert!(LaunchConfig::linear(4, 2048).validate().is_err());
        assert!(LaunchConfig::linear(4, 512).validate().is_ok());
        assert_eq!(LaunchConfig::covering(1000, 512), Ok(LaunchConfig::linear(2, 512)));
        assert_eq!(LaunchConfig::covering(0, 512).unwrap().grid_dim, 1);
        // A grid that would overflow u32 must be rejected, not truncated.
        let huge = LaunchConfig::covering(u64::MAX, 1);
        assert!(matches!(huge, Err(SptxError::BadLaunch(_))));
    }

    #[test]
    fn global_tid_spans_grid() {
        // Each thread writes its global id into its slot.
        let mut b = ProgramBuilder::new("ids");
        let (gtid, base) = (b.reg(), b.reg());
        b.read_special(gtid, Special::GlobalTid)
            .ld_param(base, 0)
            .st_indexed(ScalarType::I64, base, gtid, 0, gtid)
            .ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(6 * 8);
        Interpreter::new()
            .run(&p, &LaunchConfig::linear(3, 2), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        for i in 0..6 {
            assert_eq!(mem.read_i64(i * 8).unwrap(), i as i64);
        }
    }

    #[test]
    fn f32_arithmetic_rounds_to_single_precision() {
        let mut b = ProgramBuilder::new("f32");
        let (x, y, z, base) = (b.reg(), b.reg(), b.reg(), b.reg());
        b.mov_imm_f(x, 1.0e8)
            .mov_imm_f(y, 1.0)
            .binop(BinOp::Add, ScalarType::F32, z, x, y)
            .ld_param(base, 0)
            .st(ScalarType::F64, base, 0, z)
            .ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8);
        run_simple(&p, &mut mem, &[ParamValue::Ptr(0)]);
        // 1e8 + 1 rounds to 1e8 in f32.
        assert_eq!(mem.read_f64(0).unwrap(), 1.0e8);
    }

    #[test]
    fn division_by_zero_is_an_error_for_ints_not_floats() {
        let mut b = ProgramBuilder::new("idiv");
        let (x, z) = (b.reg(), b.reg());
        b.mov_imm_i(x, 4).mov_imm_i(z, 0).binop(BinOp::Div, ScalarType::I64, x, x, z).ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(0);
        let err =
            Interpreter::new().run(&p, &LaunchConfig::linear(1, 1), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SptxError::DivisionByZero { .. }));

        let mut b = ProgramBuilder::new("fdiv");
        let (x, z, base) = (b.reg(), b.reg(), b.reg());
        b.mov_imm_f(x, 4.0)
            .mov_imm_f(z, 0.0)
            .binop(BinOp::Div, ScalarType::F64, x, x, z)
            .ld_param(base, 0)
            .st(ScalarType::F64, base, 0, x)
            .ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8);
        run_simple(&p, &mut mem, &[ParamValue::Ptr(0)]);
        assert!(mem.read_f64(0).unwrap().is_infinite());
    }

    #[test]
    fn budget_catches_infinite_loops() {
        let mut b = ProgramBuilder::new("spin");
        let header = b.bra_new_block();
        b.bra(header);
        let p = b.build().unwrap();
        let mut mem = Memory::new(0);
        let err = Interpreter::new()
            .with_budget(10_000)
            .run(&p, &LaunchConfig::linear(1, 1), &[], &mut mem)
            .unwrap_err();
        assert!(matches!(err, SptxError::InstructionBudgetExceeded { .. }));
    }

    #[test]
    fn profile_counts_classes_and_blocks() {
        let mut b = ProgramBuilder::new("prof");
        let (acc, base) = (b.reg(), b.reg());
        b.mov_imm_f(acc, 0.0);
        let one = b.reg();
        b.mov_imm_f(one, 1.0);
        for_loop(&mut b, 5, |b, _| {
            b.binop(BinOp::Add, ScalarType::F64, acc, acc, one);
        });
        b.ld_param(base, 0).st(ScalarType::F64, base, 0, acc).ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8);
        let profile = Interpreter::new()
            .run(&p, &LaunchConfig::linear(2, 3), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        // 6 threads × 5 iterations × 1 f64 add.
        assert_eq!(profile.counts.get(InstrClass::Fp64), 30);
        assert_eq!(profile.counts.get(InstrClass::St), 6);
        assert_eq!(profile.threads, 6);
        // The loop body block ran 5 times per thread.
        let body = profile.block_iterations.iter().map(|(_, &n)| n).max().unwrap();
        assert!(body >= 30);
        assert_eq!(mem.read_f64(0).unwrap(), 5.0);
    }

    #[test]
    fn memory_trace_tracks_segments() {
        // Two threads store to addresses 0 and 4096 → 2 unique 128B segments.
        let mut b = ProgramBuilder::new("seg");
        let (gtid, base, addr, scale) = (b.reg(), b.reg(), b.reg(), b.reg());
        b.read_special(gtid, Special::GlobalTid)
            .ld_param(base, 0)
            .mov_imm_i(scale, 4096)
            .binop(BinOp::Mul, ScalarType::I64, addr, gtid, scale)
            .binop(BinOp::Add, ScalarType::I64, addr, addr, base)
            .st(ScalarType::I64, addr, 0, gtid)
            .ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8192 + 8);
        let profile = Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 2), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap();
        assert_eq!(profile.memory.unique_segments, 2);
        assert_eq!(profile.memory.accesses, 2);
        assert_eq!(profile.memory.store_bytes, 16);
    }

    #[test]
    fn missing_params_are_reported() {
        let mut b = ProgramBuilder::new("needs2");
        let r = b.reg();
        b.ld_param(r, 1).ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(0);
        let err = Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 1), &[ParamValue::I64(0)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, SptxError::BadParamIndex { .. }));
    }

    #[test]
    fn transcendentals_match_std() {
        let mut b = ProgramBuilder::new("trans");
        let (x, base) = (b.reg(), b.reg());
        b.mov_imm_f(x, 0.5)
            .unop(UnaryOp::Exp, ScalarType::F64, x, x)
            .unop(UnaryOp::Log, ScalarType::F64, x, x)
            .unop(UnaryOp::Sqrt, ScalarType::F64, x, x)
            .ld_param(base, 0)
            .st(ScalarType::F64, base, 0, x)
            .ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8);
        run_simple(&p, &mut mem, &[ParamValue::Ptr(0)]);
        assert!((mem.read_f64(0).unwrap() - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cvt_between_types() {
        let mut b = ProgramBuilder::new("cvt");
        let (i, f, base) = (b.reg(), b.reg(), b.reg());
        b.mov_imm_f(f, 3.7)
            .cvt(ScalarType::I64, ScalarType::F64, i, f)
            .ld_param(base, 0)
            .st(ScalarType::I64, base, 0, i)
            .ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8);
        run_simple(&p, &mut mem, &[ParamValue::Ptr(0)]);
        assert_eq!(mem.read_i64(0).unwrap(), 3);
    }

    #[test]
    fn min_max_and_shifts() {
        let mut b = ProgramBuilder::new("mix");
        let (x, y, r, base) = (b.reg(), b.reg(), b.reg(), b.reg());
        b.mov_imm_i(x, 5)
            .mov_imm_i(y, 9)
            .binop(BinOp::Max, ScalarType::I64, r, x, y)
            .binop(BinOp::Shl, ScalarType::I64, r, r, x)
            .ld_param(base, 0)
            .st(ScalarType::I64, base, 0, r)
            .ret();
        let p = b.build().unwrap();
        let mut mem = Memory::new(8);
        run_simple(&p, &mut mem, &[ParamValue::Ptr(0)]);
        assert_eq!(mem.read_i64(0).unwrap(), 9 << 5);
    }
}
