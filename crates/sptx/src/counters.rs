//! Execution profiles: the dynamic counters produced by running a kernel.
//!
//! These are the SPTX equivalent of the hardware profiler the paper relies on
//! ("the Profiler, which is provided by the manufacturer, acquires execution
//! information such as the number of executed instructions per instruction type ...").

use std::collections::HashMap;

use crate::isa::{BlockId, InstrClass};
use crate::program::ClassCounts;

/// Summary of the memory behaviour of one kernel execution, consumed by the GPU
/// device model's cache/stall estimator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryTraceSummary {
    /// Total bytes loaded from global memory.
    pub load_bytes: u64,
    /// Total bytes stored to global memory.
    pub store_bytes: u64,
    /// Number of distinct 128-byte memory segments touched. A low
    /// `unique_segments / accesses` ratio indicates well-coalesced, cache-friendly
    /// access; a high ratio indicates scattered access.
    pub unique_segments: u64,
    /// Total number of load/store operations.
    pub accesses: u64,
}

impl MemoryTraceSummary {
    /// Mean bytes per access; `0.0` when no accesses occurred.
    pub fn mean_access_width(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        (self.load_bytes + self.store_bytes) as f64 / self.accesses as f64
    }

    /// Spatial-locality score in `[0, 1]`: 1 means every access hit an already
    /// touched 128-byte segment, 0 means every access opened a new segment.
    pub fn locality(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        1.0 - (self.unique_segments as f64 / self.accesses as f64).min(1.0)
    }
}

/// Deduplicating accumulator for touched 128-byte memory segments.
///
/// The interpreter previously tracked segments in a `HashSet<u64>`, paying a
/// hash and probe on every load and store. Kernel access streams are strongly
/// run-structured — consecutive accesses usually hit the same or an adjacent
/// segment — so an append-only vec with a last-value fast path and periodic
/// sort+dedup compaction is cheaper, and per-worker sets merge by
/// concatenation followed by one final compaction.
#[derive(Debug, Clone)]
pub struct SegmentSet {
    segs: Vec<u64>,
    /// Compact when the raw vec reaches this length; doubled after each
    /// compaction so the amortized cost per insert stays O(log n).
    watermark: usize,
}

impl Default for SegmentSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentSet {
    /// An empty set.
    pub fn new() -> Self {
        SegmentSet { segs: Vec::new(), watermark: 1024 }
    }

    /// Record a touched segment.
    #[inline]
    pub fn insert(&mut self, seg: u64) {
        if self.segs.last() == Some(&seg) {
            return;
        }
        self.segs.push(seg);
        if self.segs.len() >= self.watermark {
            self.compact();
        }
    }

    fn compact(&mut self) {
        self.segs.sort_unstable();
        self.segs.dedup();
        self.watermark = (self.segs.len() * 2).max(1024);
    }

    /// Fold another set into this one. Order-insensitive: the distinct count
    /// of the union does not depend on which worker touched a segment first.
    pub fn absorb(&mut self, other: SegmentSet) {
        self.segs.extend(other.segs);
        if self.segs.len() >= self.watermark {
            self.compact();
        }
    }

    /// Number of distinct segments recorded so far.
    pub fn distinct(&mut self) -> u64 {
        self.compact();
        self.segs.len() as u64
    }
}

/// Full dynamic profile of one kernel launch over an entire grid.
///
/// Contains everything the paper's Profile-Based Execution Analysis consumes:
/// per-class dynamic instruction counts (σ on the machine that ran it), per-block
/// iteration counts (λ_b, obtained in the paper by "dynamically inserting PTX
/// instructions"), and a memory-trace summary for the data-cache stall model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionProfile {
    /// Dynamic instruction counts by class, summed over all threads.
    pub counts: ClassCounts,
    /// Per-basic-block execution counts λ_b, summed over all threads.
    pub block_iterations: HashMap<BlockId, u64>,
    /// Memory behaviour summary.
    pub memory: MemoryTraceSummary,
    /// Number of threads that ran.
    pub threads: u64,
}

impl ExecutionProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// λ for one block (0 if never executed).
    pub fn iterations(&self, block: BlockId) -> u64 {
        self.block_iterations.get(&block).copied().unwrap_or(0)
    }

    /// Merge another profile into this one (e.g. accumulate per-thread profiles).
    pub fn merge(&mut self, other: &ExecutionProfile) {
        self.counts = self.counts.merged(&other.counts);
        for (b, n) in &other.block_iterations {
            *self.block_iterations.entry(*b).or_insert(0) += n;
        }
        self.memory.load_bytes += other.memory.load_bytes;
        self.memory.store_bytes += other.memory.store_bytes;
        self.memory.unique_segments += other.memory.unique_segments;
        self.memory.accesses += other.memory.accesses;
        self.threads += other.threads;
    }

    /// Per-thread average instruction count; `0.0` for an empty profile.
    pub fn instructions_per_thread(&self) -> f64 {
        if self.threads == 0 {
            return 0.0;
        }
        self.counts.total() as f64 / self.threads as f64
    }

    /// Fraction of dynamic instructions in a class.
    pub fn class_fraction(&self, class: InstrClass) -> f64 {
        let total = self.counts.total();
        if total == 0 {
            return 0.0;
        }
        self.counts.get(class) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_everything() {
        let mut a = ExecutionProfile::new();
        a.counts.add(InstrClass::Fp32, 10);
        a.block_iterations.insert(BlockId(0), 5);
        a.memory.load_bytes = 64;
        a.memory.accesses = 4;
        a.threads = 1;

        let mut b = ExecutionProfile::new();
        b.counts.add(InstrClass::Fp32, 6);
        b.counts.add(InstrClass::Ld, 2);
        b.block_iterations.insert(BlockId(0), 3);
        b.block_iterations.insert(BlockId(1), 1);
        b.memory.load_bytes = 32;
        b.memory.accesses = 2;
        b.threads = 1;

        a.merge(&b);
        assert_eq!(a.counts.get(InstrClass::Fp32), 16);
        assert_eq!(a.counts.get(InstrClass::Ld), 2);
        assert_eq!(a.iterations(BlockId(0)), 8);
        assert_eq!(a.iterations(BlockId(1)), 1);
        assert_eq!(a.memory.load_bytes, 96);
        assert_eq!(a.threads, 2);
        assert_eq!(a.instructions_per_thread(), 9.0);
    }

    #[test]
    fn locality_bounds() {
        let m =
            MemoryTraceSummary { load_bytes: 0, store_bytes: 0, unique_segments: 0, accesses: 0 };
        assert_eq!(m.locality(), 1.0);
        let m =
            MemoryTraceSummary { load_bytes: 4, store_bytes: 0, unique_segments: 10, accesses: 10 };
        assert_eq!(m.locality(), 0.0);
        let m =
            MemoryTraceSummary { load_bytes: 4, store_bytes: 0, unique_segments: 1, accesses: 10 };
        assert!((m.locality() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn class_fraction_of_empty_profile_is_zero() {
        let p = ExecutionProfile::new();
        assert_eq!(p.class_fraction(InstrClass::Int), 0.0);
        assert_eq!(p.instructions_per_thread(), 0.0);
    }

    #[test]
    fn segment_set_matches_a_hash_set() {
        use std::collections::HashSet;
        // A run-structured stream with repeats, plus a scattered tail that
        // forces several compactions past the (lowered) watermark.
        let mut set = SegmentSet::new();
        let mut reference = HashSet::new();
        let stream: Vec<u64> = (0..5000u64).map(|i| (i / 7) ^ ((i * 2654435761) % 97)).collect();
        for &s in &stream {
            set.insert(s);
            reference.insert(s);
        }
        assert_eq!(set.distinct(), reference.len() as u64);
        // distinct() is idempotent.
        assert_eq!(set.distinct(), reference.len() as u64);
    }

    #[test]
    fn segment_set_absorb_unions() {
        let mut a = SegmentSet::new();
        let mut b = SegmentSet::new();
        for s in [1u64, 2, 3, 3, 4] {
            a.insert(s);
        }
        for s in [3u64, 4, 5, 1] {
            b.insert(s);
        }
        a.absorb(b);
        assert_eq!(a.distinct(), 5);
        assert_eq!(SegmentSet::default().distinct(), 0);
    }

    #[test]
    fn mean_access_width() {
        let m =
            MemoryTraceSummary { load_bytes: 12, store_bytes: 4, unique_segments: 1, accesses: 4 };
        assert_eq!(m.mean_access_width(), 4.0);
    }
}
