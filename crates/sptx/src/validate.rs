//! Structural validation of SPTX programs.
//!
//! Checks performed:
//!
//! 1. the program has at least one block,
//! 2. every branch targets an existing block,
//! 3. every register and predicate read is dominated by a definition on **all**
//!    paths from the entry (a must-be-defined dataflow analysis over the CFG).

use std::collections::HashSet;

use crate::error::SptxError;
use crate::isa::{BlockId, Instr, Terminator};
use crate::program::KernelProgram;

/// Validate a program. Invoked automatically by the builder and the assembler.
///
/// # Errors
///
/// Returns the first structural problem found as a [`SptxError`].
pub fn validate(program: &KernelProgram) -> Result<(), SptxError> {
    if program.blocks().is_empty() {
        return Err(SptxError::EmptyProgram);
    }
    check_branch_targets(program)?;
    check_def_before_use(program)?;
    Ok(())
}

fn check_branch_targets(program: &KernelProgram) -> Result<(), SptxError> {
    let n = program.blocks().len() as u32;
    for (i, block) in program.blocks().iter().enumerate() {
        for succ in block.terminator.successors() {
            if succ.0 >= n {
                return Err(SptxError::UnknownBlock { target: succ, from: BlockId(i as u32) });
            }
        }
    }
    Ok(())
}

/// Forward must-be-defined dataflow. `defs_in[b]` = registers defined on every path
/// from entry to the start of `b`; a use not covered by `defs_in` plus local
/// definitions is an error.
fn check_def_before_use(program: &KernelProgram) -> Result<(), SptxError> {
    let nblocks = program.blocks().len();
    let preds = predecessors(program);

    // Per-block generated definitions (registers and predicates).
    let mut gen_regs: Vec<HashSet<u16>> = Vec::with_capacity(nblocks);
    let mut gen_preds: Vec<HashSet<u8>> = Vec::with_capacity(nblocks);
    for block in program.blocks() {
        let mut regs = HashSet::new();
        let mut prds = HashSet::new();
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                regs.insert(d.0);
            }
            if let Instr::Setp { pred, .. } = instr {
                prds.insert(pred.0);
            }
        }
        gen_regs.push(regs);
        gen_preds.push(prds);
    }

    // Iterate to fixpoint: in[b] = ∩ out[p] over predecessors, out[b] = in[b] ∪ gen[b].
    // Blocks with no predecessors other than being the entry start empty; unreachable
    // blocks conservatively start as "everything defined" and shrink.
    let all_regs: HashSet<u16> = (0..program.num_regs()).collect();
    let all_preds: HashSet<u8> = (0..program.num_preds()).collect();
    let mut in_regs: Vec<HashSet<u16>> = vec![all_regs.clone(); nblocks];
    let mut in_preds: Vec<HashSet<u8>> = vec![all_preds.clone(); nblocks];
    in_regs[0] = HashSet::new();
    in_preds[0] = HashSet::new();

    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nblocks {
            if b == 0 {
                continue;
            }
            let mut new_in_regs: Option<HashSet<u16>> = None;
            let mut new_in_preds: Option<HashSet<u8>> = None;
            for &p in &preds[b] {
                let out_r: HashSet<u16> = in_regs[p].union(&gen_regs[p]).copied().collect();
                let out_p: HashSet<u8> = in_preds[p].union(&gen_preds[p]).copied().collect();
                new_in_regs = Some(match new_in_regs {
                    None => out_r,
                    Some(acc) => acc.intersection(&out_r).copied().collect(),
                });
                new_in_preds = Some(match new_in_preds {
                    None => out_p,
                    Some(acc) => acc.intersection(&out_p).copied().collect(),
                });
            }
            if let Some(nr) = new_in_regs {
                if nr != in_regs[b] {
                    in_regs[b] = nr;
                    changed = true;
                }
            }
            if let Some(np) = new_in_preds {
                if np != in_preds[b] {
                    in_preds[b] = np;
                    changed = true;
                }
            }
        }
    }

    // Check uses block by block.
    for (bi, block) in program.blocks().iter().enumerate() {
        let mut defined = in_regs[bi].clone();
        for (ii, instr) in block.instrs.iter().enumerate() {
            for used in instr.uses() {
                if !defined.contains(&used.0) {
                    return Err(SptxError::UseBeforeDef {
                        reg: used,
                        block: BlockId(bi as u32),
                        instr: ii,
                    });
                }
            }
            if let Some(d) = instr.def() {
                defined.insert(d.0);
            }
        }
        if let Terminator::CondBra { pred, .. } = block.terminator {
            let mut pred_defined = in_preds[bi].clone();
            for instr in &block.instrs {
                if let Instr::Setp { pred: p, .. } = instr {
                    pred_defined.insert(p.0);
                }
            }
            if !pred_defined.contains(&pred.0) {
                return Err(SptxError::PredUseBeforeDef {
                    pred: pred.0,
                    block: BlockId(bi as u32),
                });
            }
        }
    }
    Ok(())
}

fn predecessors(program: &KernelProgram) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); program.blocks().len()];
    for (i, block) in program.blocks().iter().enumerate() {
        for succ in block.terminator.successors() {
            preds[succ.0 as usize].push(i);
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{BinOp, CmpOp, ScalarType};

    #[test]
    fn accepts_valid_program() {
        let mut b = ProgramBuilder::new("ok");
        let (x, y) = (b.reg(), b.reg());
        b.mov_imm_i(x, 1).mov_imm_i(y, 2).binop(BinOp::Add, ScalarType::I64, x, x, y).ret();
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_use_before_def_straight_line() {
        let mut b = ProgramBuilder::new("bad");
        let (x, y) = (b.reg(), b.reg());
        // y is never written before this add.
        b.binop(BinOp::Add, ScalarType::I64, x, y, y).ret();
        let err = b.build().unwrap_err();
        assert!(matches!(err, SptxError::UseBeforeDef { .. }));
    }

    #[test]
    fn rejects_def_on_only_one_path() {
        // entry: cond ? (define x) : (skip) ; join uses x  → must fail.
        let mut b = ProgramBuilder::new("diamond");
        let (x, a, zero) = (b.reg(), b.reg(), b.reg());
        let p = b.pred();
        b.mov_imm_i(a, 1).mov_imm_i(zero, 0).setp(CmpOp::Gt, ScalarType::I64, p, a, zero);
        let then_b = b.declare_block();
        let else_b = b.declare_block();
        let join = b.declare_block();
        b.cond_bra(p, then_b, else_b);
        b.switch_to(then_b);
        b.mov_imm_i(x, 42).bra(join);
        b.switch_to(else_b);
        b.bra(join);
        b.switch_to(join);
        b.binop(BinOp::Add, ScalarType::I64, a, x, a).ret();
        let err = b.build().unwrap_err();
        assert!(matches!(err, SptxError::UseBeforeDef { .. }));
    }

    #[test]
    fn accepts_def_on_both_paths() {
        let mut b = ProgramBuilder::new("diamond_ok");
        let (x, a, zero) = (b.reg(), b.reg(), b.reg());
        let p = b.pred();
        b.mov_imm_i(a, 1).mov_imm_i(zero, 0).setp(CmpOp::Gt, ScalarType::I64, p, a, zero);
        let then_b = b.declare_block();
        let else_b = b.declare_block();
        let join = b.declare_block();
        b.cond_bra(p, then_b, else_b);
        b.switch_to(then_b);
        b.mov_imm_i(x, 42).bra(join);
        b.switch_to(else_b);
        b.mov_imm_i(x, 7).bra(join);
        b.switch_to(join);
        b.binop(BinOp::Add, ScalarType::I64, a, x, a).ret();
        assert!(b.build().is_ok());
    }

    #[test]
    fn loop_carried_defs_are_visible() {
        // Definitions before a loop must remain visible inside it across the back
        // edge (intersection with the back-edge predecessor's out set).
        let mut b = ProgramBuilder::new("loopdef");
        let acc = b.reg();
        b.mov_imm_i(acc, 0);
        crate::builder::for_loop(&mut b, 3, |b, i| {
            b.binop(BinOp::Add, ScalarType::I64, acc, acc, i);
        });
        b.ret();
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_undefined_predicate() {
        let mut b = ProgramBuilder::new("badpred");
        let p = b.pred();
        let t = b.declare_block();
        let e = b.declare_block();
        b.cond_bra(p, t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let err = b.build().unwrap_err();
        assert!(matches!(err, SptxError::PredUseBeforeDef { .. }));
    }
}
