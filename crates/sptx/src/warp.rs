//! Stage 2 of the tiered interpreter: warp-lockstep execution.
//!
//! The warp tier runs all 32 threads of a warp in lockstep over the decoded
//! op stream from [`crate::decode`]: registers live in SoA banks
//! (`Vec<[Value; 32]>`), control flow uses a SIMT divergence stack with
//! reconvergence at each branch's immediate post-dominator, and wide memory
//! ops detect uniform/consecutive lane addresses so a coalesced access
//! bounds-checks and touches the [`SegmentSet`] per segment instead of per
//! lane. Dispatch, class accounting, and the budget check are paid once per
//! op (or once per block) instead of once per lane, which is where the
//! speedup over the scalar tier comes from.
//!
//! # Byte-identity with the scalar tier
//!
//! The scalar interpreter runs threads strictly sequentially: tid `t`
//! completes before tid `t + 1` starts. Lockstep reorders instructions
//! *between* lanes of a warp, which is observable only through memory.
//! The tier therefore keeps the following contract:
//!
//! * **Warps commit in tid order.** A CTA's warps run one after another
//!   against the CTA's memory view, so any cross-warp dependence is exactly
//!   sequential.
//! * **Intra-warp hazards abort.** Every store records its 4-byte slots in a
//!   per-warp map; a load or store touching a slot written by a *different*
//!   lane aborts the CTA. (Same-lane program order is preserved by lockstep,
//!   so own-slot traffic is exact.)
//! * **Any abort falls back to the scalar tier for the whole CTA.** The
//!   CTA's writes are rolled back, its counter deltas discarded, and the CTA
//!   is re-run thread-by-thread via [`Interpreter::run_thread`] — so faults,
//!   partial writes, and budget exhaustion land at the exact `(ctaid, tid)`
//!   and instruction the scalar tier would produce. Lane faults, hazards,
//!   and budget crossings all take this path.
//! * **Counters are additive and order-insensitive.** Class counts and λ
//!   block iterations advance by the active-lane count per op/visit, and the
//!   memory trace by the active-lane count per access, so the aggregate
//!   equals the scalar tier's per-thread sum. `SegmentSet` is an unordered
//!   union.
//!
//! Budget accounting is block-granular: each visit charges every active lane
//! the block's cost. Since per-lane counts are non-negative, the sequential
//! prefix sum over tids crosses the budget iff the total does — so one
//! total-crossing check per visit both detects exhaustion exactly and bounds
//! runaway loops (the scalar rerun then reproduces the precise abort point).

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::counters::{ExecutionProfile, MemoryTraceSummary, SegmentSet};
use crate::decode::{DOp, DTerm, DecodedProgram, EXIT, NO_INDEX};
use crate::error::SptxError;
use crate::interp::{
    DataSpace, Interpreter, LaunchConfig, Memory, ParamValue, Value, MEMORY_SEGMENT_BYTES,
};
use crate::isa::{BlockId, InstrClass, ScalarType, Special};
use crate::parallel::SlotHasher;
use crate::program::KernelProgram;

/// Lanes per warp, matching the CUDA warp size the paper assumes.
pub(crate) const WARP_WIDTH: usize = 32;

const BRANCH_CLASS: usize = 4; // InstrClass::Branch.index(), asserted in tests

/// Iterate the set lane indices of `mask`; the full-mask case takes the
/// unmasked fixed loop, which the compiler unrolls.
macro_rules! for_lanes {
    ($mask:expr, $l:ident, $body:block) => {
        if $mask == u32::MAX {
            for $l in 0..WARP_WIDTH {
                $body
            }
        } else {
            let mut bits = $mask;
            while bits != 0 {
                let $l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                $body
            }
        }
    };
}

/// One SIMT stack frame: `mask` lanes execute from block `next` until control
/// reaches block `reconv`, where they park and the frame below resumes them.
#[derive(Debug, Clone, Copy)]
struct Frame {
    next: u32,
    mask: u32,
    reconv: u32,
}

/// Per-CTA counter deltas, kept separate from the launch accumulators so an
/// aborted CTA can be discarded wholesale before the scalar rerun.
#[derive(Debug)]
pub(crate) struct CtaCounters {
    /// Dynamic instruction counts by class index.
    pub class_counts: [u64; 7],
    /// Per-block visit counts (λ), weighted by active lanes.
    pub block_iters: Vec<u64>,
    /// 128-byte segments touched.
    pub segments: SegmentSet,
    /// Load/store byte and access totals.
    pub trace: MemoryTraceSummary,
    /// Total dynamic instructions executed by the CTA.
    pub instrs: u64,
    /// Warps run.
    pub warps: u64,
    /// Warp-wide loads where every active lane read the same address.
    pub uniform_loads: u64,
    /// Conditional branches where the warp's lanes took both sides.
    pub divergent_branches: u64,
}

impl CtaCounters {
    pub(crate) fn new(nblocks: usize) -> Self {
        Self {
            class_counts: [0; 7],
            block_iters: vec![0; nblocks],
            segments: SegmentSet::new(),
            trace: MemoryTraceSummary::default(),
            instrs: 0,
            warps: 0,
            uniform_loads: 0,
            divergent_branches: 0,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.class_counts = [0; 7];
        self.block_iters.iter_mut().for_each(|b| *b = 0);
        self.segments = SegmentSet::new();
        self.trace = MemoryTraceSummary::default();
        self.instrs = 0;
        self.warps = 0;
        self.uniform_loads = 0;
        self.divergent_branches = 0;
    }
}

/// Launch-level warp statistics, merged from successful CTAs and emitted as
/// `sptx.warp.*` telemetry by the drivers.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WarpStats {
    pub warps: u64,
    pub uniform_loads: u64,
    pub divergent_branches: u64,
    /// CTAs that aborted lockstep and re-ran on the scalar tier.
    pub fallback_ctas: u64,
}

impl WarpStats {
    pub(crate) fn merge_cta(&mut self, cta: &CtaCounters) {
        self.warps += cta.warps;
        self.uniform_loads += cta.uniform_loads;
        self.divergent_branches += cta.divergent_branches;
    }

    pub(crate) fn absorb(&mut self, other: &WarpStats) {
        self.warps += other.warps;
        self.uniform_loads += other.uniform_loads;
        self.divergent_branches += other.divergent_branches;
        self.fallback_ctas += other.fallback_ctas;
    }

    pub(crate) fn emit(&self) {
        let r = sigmavp_telemetry::recorder();
        if r.enabled() {
            r.count("sptx.warp.warps", self.warps);
            r.count("sptx.warp.uniform_loads", self.uniform_loads);
            r.count("sptx.warp.divergent_branches", self.divergent_branches);
            if self.fallback_ctas > 0 {
                r.count("sptx.warp.fallback_ctas", self.fallback_ctas);
            }
        }
    }
}

/// Reusable warp-execution state: SoA register/predicate banks, the SIMT
/// stack, the per-warp store-slot map, and the lane address buffer. One of
/// these lives per sequential launch or per parallel worker.
pub(crate) struct WarpExec {
    regs: Vec<[Value; WARP_WIDTH]>,
    preds: Vec<[bool; WARP_WIDTH]>,
    stack: Vec<Frame>,
    store_map: HashMap<u64, u8, BuildHasherDefault<SlotHasher>>,
    addrs: [u64; WARP_WIDTH],
}

impl WarpExec {
    pub(crate) fn new(dec: &DecodedProgram) -> Self {
        Self {
            regs: vec![[Value::I(0); WARP_WIDTH]; dec.num_regs as usize],
            preds: vec![[false; WARP_WIDTH]; dec.num_preds as usize],
            stack: Vec::with_capacity(8),
            store_map: HashMap::default(),
            addrs: [0; WARP_WIDTH],
        }
    }
}

/// Outcome of one lockstep CTA attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtaOutcome {
    /// The CTA completed; `cta.instrs` instructions were executed and its
    /// memory writes are in place.
    Done,
    /// Lockstep hit a hazard, lane fault, or budget crossing. The caller must
    /// roll back the CTA's writes, discard its counters, and re-run it on
    /// the scalar tier.
    Abort,
}

/// Run one CTA (all its warps, in tid order) in lockstep. `executed_before`
/// is the launch's dynamic instruction count when this CTA starts, used for
/// the budget-crossing check.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cta<M: DataSpace>(
    exec: &mut WarpExec,
    dec: &DecodedProgram,
    cfg: &LaunchConfig,
    params: &[ParamValue],
    mem: &mut M,
    ctaid: u32,
    budget: u64,
    executed_before: u64,
    cta: &mut CtaCounters,
) -> CtaOutcome {
    let nwarps = (cfg.block_dim as usize).div_ceil(WARP_WIDTH);
    for w in 0..nwarps {
        let base_tid = (w * WARP_WIDTH) as u32;
        let lanes = ((cfg.block_dim - base_tid) as usize).min(WARP_WIDTH);
        let full: u32 = if lanes == WARP_WIDTH { u32::MAX } else { (1u32 << lanes) - 1 };
        cta.warps += 1;
        if run_warp(
            exec,
            dec,
            cfg,
            params,
            mem,
            ctaid,
            base_tid,
            full,
            budget,
            executed_before,
            cta,
        )
        .is_err()
        {
            return CtaOutcome::Abort;
        }
    }
    CtaOutcome::Done
}

#[allow(clippy::too_many_arguments)]
fn run_warp<M: DataSpace>(
    exec: &mut WarpExec,
    dec: &DecodedProgram,
    cfg: &LaunchConfig,
    params: &[ParamValue],
    mem: &mut M,
    ctaid: u32,
    base_tid: u32,
    full_mask: u32,
    budget: u64,
    executed_before: u64,
    cta: &mut CtaCounters,
) -> Result<(), ()> {
    for row in &mut exec.regs {
        *row = [Value::I(0); WARP_WIDTH];
    }
    for row in &mut exec.preds {
        *row = [false; WARP_WIDTH];
    }
    exec.store_map.clear();
    exec.stack.clear();
    exec.stack.push(Frame { next: 0, mask: full_mask, reconv: EXIT });

    loop {
        let Some(&Frame { next, mask, reconv }) = exec.stack.last() else {
            return Ok(());
        };
        if mask == 0 || next == reconv || next == EXIT {
            debug_assert!(next != EXIT || mask == 0 || next == reconv);
            exec.stack.pop();
            continue;
        }
        let bi = next as usize;
        let blk = dec.blocks[bi];
        let active = mask.count_ones() as u64;

        cta.block_iters[bi] += active;
        cta.instrs += blk.cost * active;
        // One total-crossing check per visit detects exact budget exhaustion
        // (see module docs) and bounds runaway loops.
        if executed_before + cta.instrs > budget {
            return Err(());
        }

        for dop in &dec.ops[blk.start as usize..(blk.start + blk.len) as usize] {
            cta.class_counts[dop.class as usize] += active;
            exec_op(
                &dop.op,
                &mut exec.regs,
                &mut exec.preds,
                &mut exec.store_map,
                &mut exec.addrs,
                cta,
                mem,
                cfg,
                params,
                ctaid,
                base_tid,
                mask,
            )?;
        }

        match blk.term {
            DTerm::Ret => {
                for f in exec.stack.iter_mut() {
                    f.mask &= !mask;
                }
            }
            DTerm::Bra(t) => {
                cta.class_counts[BRANCH_CLASS] += active;
                exec.stack.last_mut().expect("frame present").next = t;
            }
            DTerm::CondBra { pred, if_true, if_false } => {
                cta.class_counts[BRANCH_CLASS] += active;
                let bank = &exec.preds[pred as usize];
                let mut taken = 0u32;
                for_lanes!(mask, l, {
                    if bank[l] {
                        taken |= 1 << l;
                    }
                });
                let top = exec.stack.last_mut().expect("frame present");
                if taken == mask {
                    top.next = if_true;
                } else if taken == 0 {
                    top.next = if_false;
                } else {
                    cta.divergent_branches += 1;
                    let r = blk.reconv;
                    // The current frame parks at the reconvergence point with
                    // the pre-divergence mask; each side that is not already
                    // the reconvergence block gets its own frame.
                    top.next = r;
                    let not_taken = mask & !taken;
                    if if_false != r {
                        exec.stack.push(Frame { next: if_false, mask: not_taken, reconv: r });
                    }
                    if if_true != r {
                        exec.stack.push(Frame { next: if_true, mask: taken, reconv: r });
                    }
                }
            }
        }
    }
}

/// Apply `f` over the float view of two register rows. The op/type dispatch
/// happens once per warp-op at the call site; the lane loop only touches
/// values. Rows are copied to the stack so the loop indexes fixed-size arrays
/// without bounds checks (and `dst` may alias `a`/`b`).
#[inline(always)]
fn bin_f(
    regs: &mut [[Value; WARP_WIDTH]],
    mask: u32,
    dst: usize,
    a: usize,
    b: usize,
    f: impl Fn(f64, f64) -> f64,
) {
    let ra = regs[a];
    let rb = regs[b];
    let rd = &mut regs[dst];
    for_lanes!(mask, l, {
        rd[l] = Value::F(f(ra[l].as_f64(), rb[l].as_f64()));
    });
}

/// Integer-view counterpart of [`bin_f`].
#[inline(always)]
fn bin_i(
    regs: &mut [[Value; WARP_WIDTH]],
    mask: u32,
    dst: usize,
    a: usize,
    b: usize,
    f: impl Fn(i64, i64) -> i64,
) {
    let ra = regs[a];
    let rb = regs[b];
    let rd = &mut regs[dst];
    for_lanes!(mask, l, {
        rd[l] = Value::I(f(ra[l].as_i64(), rb[l].as_i64()));
    });
}

/// Unary float op over one register row; `f` already folds in any F32
/// round-tripping.
#[inline(always)]
fn un_f(regs: &mut [[Value; WARP_WIDTH]], mask: u32, dst: usize, a: usize, f: impl Fn(f64) -> f64) {
    let ra = regs[a];
    let rd = &mut regs[dst];
    for_lanes!(mask, l, {
        rd[l] = Value::F(f(ra[l].as_f64()));
    });
}

/// Predicate compare over the integer view of two rows.
#[inline(always)]
fn setp_i(
    regs: &[[Value; WARP_WIDTH]],
    pb: &mut [bool; WARP_WIDTH],
    mask: u32,
    a: usize,
    b: usize,
    f: impl Fn(i64, i64) -> bool,
) {
    let ra = regs[a];
    let rb = regs[b];
    for_lanes!(mask, l, {
        pb[l] = f(ra[l].as_i64(), rb[l].as_i64());
    });
}

/// Predicate compare over the float view of two rows; `f32_round` pins F32
/// semantics (compare the values after a round-trip through f32).
#[inline(always)]
fn setp_f(
    regs: &[[Value; WARP_WIDTH]],
    pb: &mut [bool; WARP_WIDTH],
    mask: u32,
    a: usize,
    b: usize,
    f32_round: bool,
    f: impl Fn(f64, f64) -> bool,
) {
    let ra = regs[a];
    let rb = regs[b];
    if f32_round {
        for_lanes!(mask, l, {
            pb[l] = f(ra[l].as_f64() as f32 as f64, rb[l].as_f64() as f32 as f64);
        });
    } else {
        for_lanes!(mask, l, {
            pb[l] = f(ra[l].as_f64(), rb[l].as_f64());
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_op<M: DataSpace>(
    op: &DOp,
    regs: &mut [[Value; WARP_WIDTH]],
    preds: &mut [[bool; WARP_WIDTH]],
    store_map: &mut HashMap<u64, u8, BuildHasherDefault<SlotHasher>>,
    addrs: &mut [u64; WARP_WIDTH],
    cta: &mut CtaCounters,
    mem: &mut M,
    cfg: &LaunchConfig,
    params: &[ParamValue],
    ctaid: u32,
    base_tid: u32,
    mask: u32,
) -> Result<(), ()> {
    match *op {
        DOp::Bin { op, ty, dst, a, b } => {
            let (d, a, b) = (dst as usize, a as usize, b as usize);
            use crate::isa::BinOp as B;
            if op.is_bitwise() || ty == ScalarType::I64 {
                match op {
                    B::Add => bin_i(regs, mask, d, a, b, |x, y| x.wrapping_add(y)),
                    B::Sub => bin_i(regs, mask, d, a, b, |x, y| x.wrapping_sub(y)),
                    B::Mul => bin_i(regs, mask, d, a, b, |x, y| x.wrapping_mul(y)),
                    B::Min => bin_i(regs, mask, d, a, b, i64::min),
                    B::Max => bin_i(regs, mask, d, a, b, i64::max),
                    B::And => bin_i(regs, mask, d, a, b, |x, y| x & y),
                    B::Or => bin_i(regs, mask, d, a, b, |x, y| x | y),
                    B::Xor => bin_i(regs, mask, d, a, b, |x, y| x ^ y),
                    B::Shl => bin_i(regs, mask, d, a, b, |x, y| x.wrapping_shl(y as u32 & 63)),
                    B::Shr => bin_i(regs, mask, d, a, b, |x, y| x.wrapping_shr(y as u32 & 63)),
                    B::Div | B::Rem => {
                        // Fault-capable: a zero divisor in any lane aborts the
                        // CTA; the scalar rerun reproduces the exact error.
                        for_lanes!(mask, l, {
                            let y = regs[b][l].as_i64();
                            if y == 0 {
                                return Err(());
                            }
                            let x = regs[a][l].as_i64();
                            regs[d][l] = Value::I(if matches!(op, B::Div) {
                                x.wrapping_div(y)
                            } else {
                                x.wrapping_rem(y)
                            });
                        });
                    }
                }
            } else if ty == ScalarType::F32 {
                match op {
                    B::Add => bin_f(regs, mask, d, a, b, |x, y| ((x as f32) + (y as f32)) as f64),
                    B::Sub => bin_f(regs, mask, d, a, b, |x, y| ((x as f32) - (y as f32)) as f64),
                    B::Mul => bin_f(regs, mask, d, a, b, |x, y| ((x as f32) * (y as f32)) as f64),
                    B::Div => bin_f(regs, mask, d, a, b, |x, y| ((x as f32) / (y as f32)) as f64),
                    B::Rem => bin_f(regs, mask, d, a, b, |x, y| ((x as f32) % (y as f32)) as f64),
                    B::Min => bin_f(regs, mask, d, a, b, |x, y| (x as f32).min(y as f32) as f64),
                    B::Max => bin_f(regs, mask, d, a, b, |x, y| (x as f32).max(y as f32) as f64),
                    _ => unreachable!("bitwise handled above"),
                }
            } else {
                match op {
                    B::Add => bin_f(regs, mask, d, a, b, |x, y| x + y),
                    B::Sub => bin_f(regs, mask, d, a, b, |x, y| x - y),
                    B::Mul => bin_f(regs, mask, d, a, b, |x, y| x * y),
                    B::Div => bin_f(regs, mask, d, a, b, |x, y| x / y),
                    B::Rem => bin_f(regs, mask, d, a, b, |x, y| x % y),
                    B::Min => bin_f(regs, mask, d, a, b, f64::min),
                    B::Max => bin_f(regs, mask, d, a, b, f64::max),
                    _ => unreachable!("bitwise handled above"),
                }
            }
        }
        DOp::Un { op, ty, dst, a } => {
            let (d, a) = (dst as usize, a as usize);
            use crate::isa::UnaryOp as U;
            // `f32r` folds F32's round-trip (input and result through f32)
            // into the hoisted closure, matching `eval_un` exactly.
            macro_rules! un_float {
                ($f:expr) => {{
                    if ty == ScalarType::F32 {
                        un_f(regs, mask, d, a, |x| {
                            let v: f64 = $f(x as f32 as f64);
                            v as f32 as f64
                        })
                    } else {
                        un_f(regs, mask, d, a, $f)
                    }
                }};
            }
            if op.is_bitwise() {
                let ra = regs[a];
                let rd = &mut regs[d];
                for_lanes!(mask, l, {
                    rd[l] = Value::I(!ra[l].as_i64());
                });
            } else if ty == ScalarType::I64 && matches!(op, U::Neg | U::Abs) {
                let ra = regs[a];
                let rd = &mut regs[d];
                if matches!(op, U::Neg) {
                    for_lanes!(mask, l, {
                        rd[l] = Value::I(ra[l].as_i64().wrapping_neg());
                    });
                } else {
                    for_lanes!(mask, l, {
                        rd[l] = Value::I(ra[l].as_i64().wrapping_abs());
                    });
                }
            } else {
                match op {
                    U::Neg => un_float!(|x: f64| -x),
                    U::Abs => un_float!(|x: f64| x.abs()),
                    U::Sqrt => un_float!(|x: f64| x.sqrt()),
                    U::Exp => un_float!(|x: f64| x.exp()),
                    U::Log => un_float!(|x: f64| x.ln()),
                    U::Sin => un_float!(|x: f64| x.sin()),
                    U::Cos => un_float!(|x: f64| x.cos()),
                    U::Not => unreachable!("bitwise handled above"),
                }
            }
        }
        DOp::Mad { ty, dst, a, b, c } => {
            let (d, a, b, c) = (dst as usize, a as usize, b as usize, c as usize);
            let ra = regs[a];
            let rb = regs[b];
            let rc = regs[c];
            let rd = &mut regs[d];
            match ty {
                ScalarType::F32 => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::F(
                            (ra[l].as_f64() as f32)
                                .mul_add(rb[l].as_f64() as f32, rc[l].as_f64() as f32)
                                as f64,
                        );
                    });
                }
                ScalarType::F64 => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::F(ra[l].as_f64() * rb[l].as_f64() + rc[l].as_f64());
                    });
                }
                ScalarType::I64 => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::I(
                            ra[l]
                                .as_i64()
                                .wrapping_mul(rb[l].as_i64())
                                .wrapping_add(rc[l].as_i64()),
                        );
                    });
                }
            }
        }
        DOp::MovImm { dst, val } => {
            let dst = dst as usize;
            for_lanes!(mask, l, {
                regs[dst][l] = val;
            });
        }
        DOp::Mov { dst, src } => {
            let (dst, src) = (dst as usize, src as usize);
            if dst != src {
                let rs = regs[src];
                let rd = &mut regs[dst];
                for_lanes!(mask, l, {
                    rd[l] = rs[l];
                });
            }
        }
        DOp::Cvt { to, from, dst, src } => {
            let (d, s) = (dst as usize, src as usize);
            let rs = regs[s];
            let rd = &mut regs[d];
            match (from, to) {
                (_, ScalarType::I64) => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::I(rs[l].as_i64());
                    });
                }
                (ScalarType::I64, ScalarType::F32) => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::F(rs[l].as_i64() as f32 as f64);
                    });
                }
                (ScalarType::I64, ScalarType::F64) => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::F(rs[l].as_i64() as f64);
                    });
                }
                (_, ScalarType::F32) => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::F(rs[l].as_f64() as f32 as f64);
                    });
                }
                (_, ScalarType::F64) => {
                    for_lanes!(mask, l, {
                        rd[l] = Value::F(rs[l].as_f64());
                    });
                }
            }
        }
        DOp::Setp { cmp, ty, pred, a, b } => {
            let (p, a, b) = (pred as usize, a as usize, b as usize);
            use crate::isa::CmpOp as C;
            let pb = &mut preds[p];
            match ty {
                ScalarType::I64 => match cmp {
                    C::Eq => setp_i(regs, pb, mask, a, b, |x, y| x == y),
                    C::Ne => setp_i(regs, pb, mask, a, b, |x, y| x != y),
                    C::Lt => setp_i(regs, pb, mask, a, b, |x, y| x < y),
                    C::Le => setp_i(regs, pb, mask, a, b, |x, y| x <= y),
                    C::Gt => setp_i(regs, pb, mask, a, b, |x, y| x > y),
                    C::Ge => setp_i(regs, pb, mask, a, b, |x, y| x >= y),
                },
                ScalarType::F32 | ScalarType::F64 => {
                    let r32 = ty == ScalarType::F32;
                    match cmp {
                        C::Eq => setp_f(regs, pb, mask, a, b, r32, |x, y| x == y),
                        C::Ne => setp_f(regs, pb, mask, a, b, r32, |x, y| x != y),
                        C::Lt => setp_f(regs, pb, mask, a, b, r32, |x, y| x < y),
                        C::Le => setp_f(regs, pb, mask, a, b, r32, |x, y| x <= y),
                        C::Gt => setp_f(regs, pb, mask, a, b, r32, |x, y| x > y),
                        C::Ge => setp_f(regs, pb, mask, a, b, r32, |x, y| x >= y),
                    }
                }
            }
        }
        DOp::ReadSpecial { dst, special } => {
            let dst = dst as usize;
            match special {
                Special::TidX => {
                    for_lanes!(mask, l, {
                        regs[dst][l] = Value::I(base_tid as i64 + l as i64);
                    });
                }
                Special::GlobalTid => {
                    let base = ctaid as i64 * cfg.block_dim as i64 + base_tid as i64;
                    for_lanes!(mask, l, {
                        regs[dst][l] = Value::I(base + l as i64);
                    });
                }
                Special::NTidX | Special::CtaIdX | Special::NCtaIdX => {
                    let v = Value::I(match special {
                        Special::NTidX => cfg.block_dim as i64,
                        Special::CtaIdX => ctaid as i64,
                        _ => cfg.grid_dim as i64,
                    });
                    for_lanes!(mask, l, {
                        regs[dst][l] = v;
                    });
                }
            }
        }
        DOp::LdParam { dst, index } => {
            let dst = dst as usize;
            let Some(p) = params.get(index as usize) else {
                return Err(());
            };
            let v = match *p {
                ParamValue::Ptr(a) => Value::I(a as i64),
                ParamValue::F64(v) => Value::F(v),
                ParamValue::F32(v) => Value::F(v as f64),
                ParamValue::I64(v) => Value::I(v),
            };
            for_lanes!(mask, l, {
                regs[dst][l] = v;
            });
        }
        DOp::Ld { ty, dst, base, index, offset } => {
            let dst = dst as usize;
            let w = ty.width();
            let (uniform, consec, first) = lane_addrs(regs, addrs, base, index, offset, w, mask);
            let active = mask.count_ones() as u64;
            cta.trace.accesses += active;
            cta.trace.load_bytes += w * active;
            if !store_map.is_empty() {
                check_load_hazards(store_map, addrs, w, mask)?;
            }
            if uniform {
                cta.uniform_loads += 1;
                cta.segments.insert(first / MEMORY_SEGMENT_BYTES);
                let v = load_val(mem, ty, first).map_err(drop)?;
                for_lanes!(mask, l, {
                    regs[dst][l] = v;
                });
            } else if consec {
                // One bounds check covers the whole coalesced span; segment
                // inserts hit SegmentSet's last-value fast path. The type
                // dispatch is hoisted out of the lane loop.
                mem.check_span(first, active * w).map_err(drop)?;
                match ty {
                    ScalarType::F32 => {
                        for_lanes!(mask, l, {
                            cta.segments.insert(addrs[l] / MEMORY_SEGMENT_BYTES);
                            regs[dst][l] = Value::F(mem.read_f32_unchecked(addrs[l]) as f64);
                        });
                    }
                    ScalarType::F64 => {
                        for_lanes!(mask, l, {
                            cta.segments.insert(addrs[l] / MEMORY_SEGMENT_BYTES);
                            regs[dst][l] = Value::F(mem.read_f64_unchecked(addrs[l]));
                        });
                    }
                    ScalarType::I64 => {
                        for_lanes!(mask, l, {
                            cta.segments.insert(addrs[l] / MEMORY_SEGMENT_BYTES);
                            regs[dst][l] = Value::I(mem.read_i64_unchecked(addrs[l]));
                        });
                    }
                }
            } else {
                for_lanes!(mask, l, {
                    cta.segments.insert(addrs[l] / MEMORY_SEGMENT_BYTES);
                    regs[dst][l] = load_val(mem, ty, addrs[l]).map_err(drop)?;
                });
            }
        }
        DOp::St { ty, base, index, offset, src } => {
            let src = src as usize;
            let w = ty.width();
            let (_, _, _) = lane_addrs(regs, addrs, base, index, offset, w, mask);
            let active = mask.count_ones() as u64;
            cta.trace.accesses += active;
            cta.trace.store_bytes += w * active;
            // Record slots first: a cross-lane overlap is a hazard even if
            // the write itself would fault.
            for_lanes!(mask, l, {
                let a0 = addrs[l] >> 2;
                let a1 = addrs[l].wrapping_add(w - 1) >> 2;
                let mut s = a0;
                while s <= a1 {
                    if let Some(prev) = store_map.insert(s, l as u8) {
                        if prev != l as u8 {
                            return Err(());
                        }
                    }
                    s += 1;
                }
            });
            for_lanes!(mask, l, {
                cta.segments.insert(addrs[l] / MEMORY_SEGMENT_BYTES);
                let v = regs[src][l];
                match ty {
                    ScalarType::F32 => mem.write_f32(addrs[l], v.as_f64() as f32),
                    ScalarType::F64 => mem.write_f64(addrs[l], v.as_f64()),
                    ScalarType::I64 => mem.write_i64(addrs[l], v.as_i64()),
                }
                .map_err(drop)?;
            });
        }
    }
    Ok(())
}

/// Compute every active lane's effective address into `addrs`, returning
/// `(uniform, consecutive, first_addr)` — `consecutive` meaning each active
/// lane's address follows the previous active lane's by exactly the access
/// width.
#[inline]
fn lane_addrs(
    regs: &[[Value; WARP_WIDTH]],
    addrs: &mut [u64; WARP_WIDTH],
    base: u16,
    index: u16,
    offset: i64,
    width: u64,
    mask: u32,
) -> (bool, bool, u64) {
    let base = base as usize;
    let has_index = index != NO_INDEX;
    let index = index as usize;
    let mut first = 0u64;
    let mut prev = 0u64;
    let mut started = false;
    let mut uniform = true;
    let mut consec = true;
    for_lanes!(mask, l, {
        let bv = regs[base][l].as_i64();
        let iv = if has_index { regs[index][l].as_i64() } else { 0 };
        let addr = bv.wrapping_add(iv.wrapping_mul(width as i64)).wrapping_add(offset) as u64;
        addrs[l] = addr;
        if started {
            uniform &= addr == first;
            consec &= addr == prev.wrapping_add(width);
        } else {
            started = true;
            first = addr;
        }
        prev = addr;
    });
    (uniform, consec && !uniform, first)
}

/// Abort if any active lane loads a slot another lane has stored this warp.
fn check_load_hazards(
    store_map: &HashMap<u64, u8, BuildHasherDefault<SlotHasher>>,
    addrs: &[u64; WARP_WIDTH],
    width: u64,
    mask: u32,
) -> Result<(), ()> {
    for_lanes!(mask, l, {
        let a0 = addrs[l] >> 2;
        let a1 = addrs[l].wrapping_add(width - 1) >> 2;
        let mut s = a0;
        while s <= a1 {
            if let Some(&lane) = store_map.get(&s) {
                if lane != l as u8 {
                    return Err(());
                }
            }
            s += 1;
        }
    });
    Ok(())
}

fn load_val<M: DataSpace>(mem: &M, ty: ScalarType, addr: u64) -> Result<Value, SptxError> {
    Ok(match ty {
        ScalarType::F32 => Value::F(mem.read_f32(addr)? as f64),
        ScalarType::F64 => Value::F(mem.read_f64(addr)?),
        ScalarType::I64 => Value::I(mem.read_i64(addr)?),
    })
}

/// Direct-to-[`Memory`] data space for the sequential warp path, with an undo
/// journal so an aborted CTA's writes can be rolled back before the scalar
/// rerun. Reads pay no overlay cost — they hit `Memory` straight.
pub(crate) struct DirectMem<'a> {
    mem: &'a mut Memory,
    undo: Vec<(u64, [u8; 8], u8)>,
}

impl<'a> DirectMem<'a> {
    pub(crate) fn new(mem: &'a mut Memory) -> Self {
        Self { mem, undo: Vec::new() }
    }

    /// Keep the CTA's writes; the undo log is discarded.
    pub(crate) fn commit(self) {}

    /// Restore every byte this CTA wrote, newest first.
    pub(crate) fn rollback(self) {
        let DirectMem { mem, undo } = self;
        for (addr, old, width) in undo.into_iter().rev() {
            let o = addr as usize;
            mem.as_bytes_mut()[o..o + width as usize].copy_from_slice(&old[..width as usize]);
        }
    }

    fn record(&mut self, addr: u64, width: usize) -> Result<(), SptxError> {
        let o = self.mem.check(addr, width as u64)?;
        let mut old = [0u8; 8];
        old[..width].copy_from_slice(&self.mem.as_bytes()[o..o + width]);
        self.undo.push((addr, old, width as u8));
        Ok(())
    }
}

impl DataSpace for DirectMem<'_> {
    fn read_f32(&self, addr: u64) -> Result<f32, SptxError> {
        self.mem.read_f32(addr)
    }
    fn read_f64(&self, addr: u64) -> Result<f64, SptxError> {
        self.mem.read_f64(addr)
    }
    fn read_i64(&self, addr: u64) -> Result<i64, SptxError> {
        self.mem.read_i64(addr)
    }
    fn write_f32(&mut self, addr: u64, v: f32) -> Result<(), SptxError> {
        self.record(addr, 4)?;
        self.mem.write_f32(addr, v)
    }
    fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), SptxError> {
        self.record(addr, 8)?;
        self.mem.write_f64(addr, v)
    }
    fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), SptxError> {
        self.record(addr, 8)?;
        self.mem.write_i64(addr, v)
    }
    fn check_span(&self, addr: u64, len: u64) -> Result<(), SptxError> {
        self.mem.check(addr, len).map(|_| ())
    }
    fn read_f32_unchecked(&self, addr: u64) -> f32 {
        self.mem.read_f32_unchecked(addr)
    }
    fn read_f64_unchecked(&self, addr: u64) -> f64 {
        self.mem.read_f64_unchecked(addr)
    }
    fn read_i64_unchecked(&self, addr: u64) -> i64 {
        self.mem.read_i64_unchecked(addr)
    }
}

/// Sequential (single-worker) warp-tier driver: CTAs run one at a time in
/// ctaid order directly against `mem`, so cross-CTA visibility matches the
/// scalar sequential path exactly. Aborted CTAs roll back and re-run on the
/// scalar tier.
pub(crate) fn run_sequential(
    interp: &Interpreter,
    program: &KernelProgram,
    dec: &DecodedProgram,
    cfg: &LaunchConfig,
    params: &[ParamValue],
    mem: &mut Memory,
) -> Result<ExecutionProfile, SptxError> {
    let nblocks = program.blocks().len();
    let mut class_counts = [0u64; 7];
    let mut block_iters = vec![0u64; nblocks];
    let mut segments = SegmentSet::new();
    let mut trace = MemoryTraceSummary::default();
    let mut executed: u64 = 0;
    let mut stats = WarpStats::default();

    let mut exec = WarpExec::new(dec);
    let mut cta = CtaCounters::new(nblocks);
    let mut scalar_regs = vec![Value::I(0); program.num_regs() as usize];
    let mut scalar_preds = vec![false; program.num_preds() as usize];

    for ctaid in 0..cfg.grid_dim {
        cta.reset();
        let mut dmem = DirectMem::new(mem);
        let outcome = run_cta(
            &mut exec,
            dec,
            cfg,
            params,
            &mut dmem,
            ctaid,
            interp.budget,
            executed,
            &mut cta,
        );
        match outcome {
            CtaOutcome::Done => {
                dmem.commit();
                executed += cta.instrs;
                for (g, c) in class_counts.iter_mut().zip(cta.class_counts) {
                    *g += c;
                }
                for (g, c) in block_iters.iter_mut().zip(&cta.block_iters) {
                    *g += c;
                }
                segments.absorb(std::mem::take(&mut cta.segments));
                trace.accesses += cta.trace.accesses;
                trace.load_bytes += cta.trace.load_bytes;
                trace.store_bytes += cta.trace.store_bytes;
                stats.merge_cta(&cta);
            }
            CtaOutcome::Abort => {
                dmem.rollback();
                stats.fallback_ctas += 1;
                for tid in 0..cfg.block_dim {
                    scalar_regs.iter_mut().for_each(|r| *r = Value::I(0));
                    scalar_preds.iter_mut().for_each(|p| *p = false);
                    interp.run_thread(
                        program,
                        cfg,
                        params,
                        mem,
                        ctaid,
                        tid,
                        &mut scalar_regs,
                        &mut scalar_preds,
                        &mut class_counts,
                        &mut block_iters,
                        &mut segments,
                        &mut trace,
                        &mut executed,
                    )?;
                }
            }
        }
    }

    let mut profile = ExecutionProfile::new();
    for (c, n) in InstrClass::ALL.iter().zip(class_counts.iter()) {
        profile.counts.add(*c, *n);
    }
    for (i, n) in block_iters.iter().enumerate() {
        if *n > 0 {
            profile.block_iterations.insert(BlockId(i as u32), *n);
        }
    }
    trace.unique_segments = segments.distinct();
    profile.memory = trace;
    profile.threads = cfg.total_threads();
    let r = sigmavp_telemetry::recorder();
    if r.enabled() {
        r.count("sptx.launches", 1);
        r.count("sptx.instructions_executed", executed);
    }
    stats.emit();
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_class_index_matches_isa() {
        assert_eq!(BRANCH_CLASS, InstrClass::Branch.index());
    }
}
