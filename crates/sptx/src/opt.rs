//! Optimization passes over SPTX programs.
//!
//! The ΣVP workflow compiles every kernel twice — once for the host GPU and once
//! for the target (paper Fig. 7, step 1) — and instruction counts differ between
//! the two compilations. This module provides the compiler's middle end: a small
//! set of classic, semantics-preserving passes that a per-target backend can apply
//! with different aggressiveness:
//!
//! * [`fold_constants`] — forward-propagates immediate values through arithmetic
//!   within each basic block and rewrites computable instructions to `MovImm`;
//! * [`eliminate_dead_code`] — removes instructions whose results are never used
//!   (no stores, no terminator influence, no live-out uses);
//! * [`optimize`] — the standard pipeline (fold, then DCE, to fixpoint).
//!
//! Every pass preserves observable behaviour: global-memory effects and per-block
//! control flow are untouched; only the per-class instruction mixes shrink. The
//! differential tests below execute randomized programs before and after
//! optimization and require identical memory images.

use std::collections::{HashMap, HashSet};

use crate::error::SptxError;
use crate::isa::{BinOp, Imm, Instr, Reg, ScalarType, UnaryOp};
use crate::program::{BasicBlock, KernelProgram};
use crate::validate::validate;

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Instructions rewritten to immediate moves by constant folding.
    pub folded: usize,
    /// Instructions removed as dead.
    pub removed: usize,
    /// Pipeline iterations until fixpoint.
    pub iterations: usize,
}

/// Run the standard pipeline (constant folding + dead-code elimination) to
/// fixpoint.
///
/// # Errors
///
/// Returns a [`SptxError`] if the rewritten program fails validation — which would
/// indicate a bug in a pass, not in the input (the input is already validated).
pub fn optimize(program: &KernelProgram) -> Result<(KernelProgram, OptStats), SptxError> {
    let mut current = program.clone();
    let mut stats = OptStats::default();
    loop {
        stats.iterations += 1;
        let (folded_program, folded) = fold_constants(&current);
        let (clean_program, removed) = eliminate_dead_code(&folded_program);
        stats.folded += folded;
        stats.removed += removed;
        let done = folded == 0 && removed == 0;
        current = clean_program;
        if done || stats.iterations > 32 {
            break;
        }
    }
    validate(&current)?;
    Ok((current, stats))
}

/// A known constant value during folding.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Known {
    F(f64),
    I(i64),
}

impl Known {
    fn as_imm(self) -> Imm {
        match self {
            Known::F(v) => Imm::F(v),
            Known::I(v) => Imm::I(v),
        }
    }

    fn as_f64(self) -> f64 {
        match self {
            Known::F(v) => v,
            Known::I(v) => v as f64,
        }
    }

    fn as_i64(self) -> i64 {
        match self {
            Known::F(v) => v as i64,
            Known::I(v) => v,
        }
    }
}

/// Per-block forward constant propagation: rewrite instructions whose operands are
/// all known immediates into `MovImm`. Returns the rewritten program and the number
/// of instructions folded.
///
/// Folding is intentionally conservative: it never folds loads, stores, parameter
/// or special-register reads, divisions/remainders (to preserve fault behaviour),
/// and it resets its knowledge at block boundaries (no cross-block dataflow).
pub fn fold_constants(program: &KernelProgram) -> (KernelProgram, usize) {
    let mut folded = 0;
    let blocks: Vec<BasicBlock> = program
        .blocks()
        .iter()
        .map(|block| {
            let mut known: HashMap<Reg, Known> = HashMap::new();
            let instrs = block
                .instrs
                .iter()
                .map(|instr| {
                    let rewritten = try_fold(instr, &known);
                    let out = rewritten.clone().unwrap_or_else(|| instr.clone());
                    if rewritten.is_some() {
                        folded += 1;
                    }
                    // Update knowledge from the (possibly rewritten) instruction.
                    match &out {
                        Instr::MovImm { dst, imm } => {
                            known.insert(
                                *dst,
                                match imm {
                                    Imm::F(v) => Known::F(*v),
                                    Imm::I(v) => Known::I(*v),
                                },
                            );
                        }
                        other => {
                            if let Some(d) = other.def() {
                                known.remove(&d);
                            }
                        }
                    }
                    out
                })
                .collect();
            BasicBlock { instrs, terminator: block.terminator, label: block.label.clone() }
        })
        .collect();
    (
        KernelProgram::from_parts(
            program.name().to_string(),
            blocks,
            program.num_regs(),
            program.num_preds(),
            program.num_params(),
        ),
        folded,
    )
}

fn try_fold(instr: &Instr, known: &HashMap<Reg, Known>) -> Option<Instr> {
    let k = |r: &Reg| known.get(r).copied();
    match instr {
        Instr::Mov { dst, src } => {
            let v = k(src)?;
            Some(Instr::MovImm { dst: *dst, imm: v.as_imm() })
        }
        Instr::Cvt { to, dst, src, .. } => {
            let v = k(src)?;
            let imm = match to {
                ScalarType::I64 => Imm::I(v.as_i64()),
                ScalarType::F32 => Imm::F(v.as_f64() as f32 as f64),
                ScalarType::F64 => Imm::F(v.as_f64()),
            };
            Some(Instr::MovImm { dst: *dst, imm })
        }
        Instr::Un { op, ty, dst, a } => {
            let v = k(a)?;
            let imm = fold_unary(*op, *ty, v)?;
            Some(Instr::MovImm { dst: *dst, imm })
        }
        Instr::Bin { op, ty, dst, a, b } => {
            let (x, y) = (k(a)?, k(b)?);
            let imm = fold_binary(*op, *ty, x, y)?;
            Some(Instr::MovImm { dst: *dst, imm })
        }
        Instr::Mad { ty, dst, a, b, c } => {
            let (x, y, z) = (k(a)?, k(b)?, k(c)?);
            let imm = match ty {
                ScalarType::I64 => {
                    Imm::I(x.as_i64().wrapping_mul(y.as_i64()).wrapping_add(z.as_i64()))
                }
                ScalarType::F32 => {
                    Imm::F((x.as_f64() as f32).mul_add(y.as_f64() as f32, z.as_f64() as f32) as f64)
                }
                ScalarType::F64 => Imm::F(x.as_f64() * y.as_f64() + z.as_f64()),
            };
            Some(Instr::MovImm { dst: *dst, imm })
        }
        // Loads, stores, parameters, specials, setp and anything faulting stays.
        _ => None,
    }
}

fn fold_unary(op: UnaryOp, ty: ScalarType, v: Known) -> Option<Imm> {
    if op.is_bitwise() {
        return Some(Imm::I(!v.as_i64()));
    }
    if ty == ScalarType::I64 {
        return match op {
            UnaryOp::Neg => Some(Imm::I(v.as_i64().wrapping_neg())),
            UnaryOp::Abs => Some(Imm::I(v.as_i64().wrapping_abs())),
            _ => None, // transcendentals on ints: leave to the interpreter
        };
    }
    let x = if ty == ScalarType::F32 { v.as_f64() as f32 as f64 } else { v.as_f64() };
    let out = match op {
        UnaryOp::Neg => -x,
        UnaryOp::Abs => x.abs(),
        UnaryOp::Sqrt => x.sqrt(),
        UnaryOp::Exp => x.exp(),
        UnaryOp::Log => x.ln(),
        UnaryOp::Sin => x.sin(),
        UnaryOp::Cos => x.cos(),
        UnaryOp::Not => unreachable!("bitwise handled above"),
    };
    Some(Imm::F(if ty == ScalarType::F32 { out as f32 as f64 } else { out }))
}

fn fold_binary(op: BinOp, ty: ScalarType, x: Known, y: Known) -> Option<Imm> {
    // Never fold div/rem: integer division by zero must keep faulting at runtime.
    if matches!(op, BinOp::Div | BinOp::Rem) {
        return None;
    }
    if op.is_bitwise() || ty == ScalarType::I64 {
        let (a, b) = (x.as_i64(), y.as_i64());
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
            BinOp::Div | BinOp::Rem => unreachable!("excluded above"),
        };
        return Some(Imm::I(v));
    }
    let (a, b) = if ty == ScalarType::F32 {
        (x.as_f64() as f32 as f64, y.as_f64() as f32 as f64)
    } else {
        (x.as_f64(), y.as_f64())
    };
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        _ => return None,
    };
    Some(Imm::F(if ty == ScalarType::F32 { v as f32 as f64 } else { v }))
}

/// Remove instructions whose destination register is dead at the point of
/// definition: per-block backward liveness, seeded conservatively at block exits
/// (a block with successors assumes every register read anywhere in the program
/// may still be needed; a `Ret` block ends with nothing live). This removes both
/// never-read results and shadowed definitions, and can only under-remove.
///
/// Instructions with effects other than their register result — loads (may fault),
/// stores, predicate sets, integer div/rem (may fault) — are never removed.
///
/// Returns the rewritten program and the number of instructions removed.
pub fn eliminate_dead_code(program: &KernelProgram) -> (KernelProgram, usize) {
    // Conservative live-out superset for blocks with successors: every register any
    // instruction in the program reads.
    let mut read_anywhere: HashSet<Reg> = HashSet::new();
    for block in program.blocks() {
        for instr in &block.instrs {
            for r in instr.uses() {
                read_anywhere.insert(r);
            }
        }
    }

    let mut removed = 0;
    let blocks: Vec<BasicBlock> = program
        .blocks()
        .iter()
        .map(|block| {
            let mut live: HashSet<Reg> = if block.terminator.successors().is_empty() {
                HashSet::new()
            } else {
                read_anywhere.clone()
            };
            // Backward scan: decide each instruction, then update liveness.
            let mut keep: Vec<bool> = Vec::with_capacity(block.instrs.len());
            for instr in block.instrs.iter().rev() {
                let removable = match instr {
                    Instr::MovImm { dst, .. }
                    | Instr::Mov { dst, .. }
                    | Instr::Cvt { dst, .. }
                    | Instr::ReadSpecial { dst, .. }
                    | Instr::LdParam { dst, .. }
                    | Instr::Un { dst, .. }
                    | Instr::Mad { dst, .. } => !live.contains(dst),
                    Instr::Bin { op, dst, .. } => {
                        // Div/rem may fault; keep them regardless of liveness.
                        !matches!(op, BinOp::Div | BinOp::Rem) && !live.contains(dst)
                    }
                    // Memory and predicate effects always stay.
                    Instr::Ld { .. } | Instr::St { .. } | Instr::Setp { .. } => false,
                };
                if removable {
                    removed += 1;
                    keep.push(false);
                    // A removed instruction contributes neither defs nor uses.
                    continue;
                }
                keep.push(true);
                if let Some(d) = instr.def() {
                    live.remove(&d);
                }
                for r in instr.uses() {
                    live.insert(r);
                }
            }
            keep.reverse();
            let instrs = block
                .instrs
                .iter()
                .zip(keep)
                .filter(|&(_, k)| k)
                .map(|(instr, _)| instr.clone())
                .collect();
            BasicBlock { instrs, terminator: block.terminator, label: block.label.clone() }
        })
        .collect();
    (
        KernelProgram::from_parts(
            program.name().to_string(),
            blocks,
            program.num_regs(),
            program.num_preds(),
            program.num_params(),
        ),
        removed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::interp::{Interpreter, LaunchConfig, Memory, ParamValue};

    fn run_mem(program: &KernelProgram, size: usize, params: &[ParamValue]) -> Memory {
        let mut mem = Memory::new(size);
        Interpreter::new()
            .run(program, &LaunchConfig::linear(1, 4), params, &mut mem)
            .expect("program runs");
        mem
    }

    #[test]
    fn folds_constant_chains() {
        let src = "
.kernel folds
entry:
    mov r0, 6
    mov r1, 7
    mul.i64 r2, r0, r1
    mov r3, 100
    add.i64 r4, r2, r3
    ldp r5, 0
    st.i64 [r5], r4
    ret
";
        let p = asm::parse(src).unwrap();
        let (opt, stats) = optimize(&p).unwrap();
        assert!(stats.folded >= 2, "stats {stats:?}");
        // Result unchanged.
        let before = run_mem(&p, 8, &[ParamValue::Ptr(0)]);
        let after = run_mem(&opt, 8, &[ParamValue::Ptr(0)]);
        assert_eq!(before.read_i64(0).unwrap(), 142);
        assert_eq!(after.read_i64(0).unwrap(), 142);
        // The folded program executes fewer instructions.
        let mut m = Memory::new(8);
        let prof_before = Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut m)
            .unwrap();
        let mut m = Memory::new(8);
        let prof_after = Interpreter::new()
            .run(&opt, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut m)
            .unwrap();
        assert!(prof_after.counts.total() < prof_before.counts.total());
    }

    #[test]
    fn removes_dead_instructions() {
        let src = "
.kernel deadish
entry:
    mov r0, 1
    mov r1, 2
    add.i64 r2, r0, r1   # dead: r2 never read
    rs r3, gtid          # dead: r3 never read
    ldp r4, 0
    st.i64 [r4], r0
    ret
";
        let p = asm::parse(src).unwrap();
        let (opt, stats) = optimize(&p).unwrap();
        assert!(stats.removed >= 2, "stats {stats:?}");
        let after = run_mem(&opt, 8, &[ParamValue::Ptr(0)]);
        assert_eq!(after.read_i64(0).unwrap(), 1);
    }

    #[test]
    fn never_folds_division_or_removes_stores() {
        let src = "
.kernel faulty
entry:
    mov r0, 4
    mov r1, 0
    div.i64 r2, r0, r1
    ldp r3, 0
    st.i64 [r3], r2
    ret
";
        let p = asm::parse(src).unwrap();
        let (opt, _) = optimize(&p).unwrap();
        // The division must still fault at runtime.
        let mut mem = Memory::new(8);
        let err = Interpreter::new()
            .run(&opt, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, SptxError::DivisionByZero { .. }));
    }

    #[test]
    fn loops_and_loads_are_preserved() {
        // A real kernel (data-dependent, memory-touching) must optimize to an
        // observably identical program.
        let src = "
.kernel looper
entry:
    rs r0, gtid
    ldp r1, 0
    mov r2, 0
    mov r3, 5
    mov r4, 1
    bra header
header:
    setp.lt.i64 p0, r2, r3
    @p0 bra body, exit
body:
    ld.i64 r5, [r1 + r0]
    add.i64 r5, r5, r4
    st.i64 [r1 + r0], r5
    add.i64 r2, r2, r4
    bra header
exit:
    ret
";
        let p = asm::parse(src).unwrap();
        let (opt, _) = optimize(&p).unwrap();
        let before = run_mem(&p, 4 * 8, &[ParamValue::Ptr(0)]);
        let after = run_mem(&opt, 4 * 8, &[ParamValue::Ptr(0)]);
        assert_eq!(before.as_bytes(), after.as_bytes());
        for i in 0..4 {
            assert_eq!(after.read_i64(i * 8).unwrap(), 5);
        }
    }

    #[test]
    fn optimizing_suite_style_kernel_is_behavior_preserving() {
        // The doubling kernel from the crate docs, with a gratuitous constant chain
        // prepended.
        let src = "
.kernel double_plus_junk
entry:
    mov r10, 3
    mov r11, 4
    mul.i64 r12, r10, r11   # foldable and then dead
    rs r0, gtid
    ldp r1, 0
    ld.f32 r2, [r1 + r0]
    add.f32 r2, r2, r2
    st.f32 [r1 + r0], r2
    ret
";
        let p = asm::parse(src).unwrap();
        let (opt, stats) = optimize(&p).unwrap();
        assert!(stats.folded + stats.removed >= 3);
        let mut before = Memory::new(16);
        let mut after = Memory::new(16);
        for i in 0..4u64 {
            before.write_f32(i * 4, i as f32 + 1.0).unwrap();
            after.write_f32(i * 4, i as f32 + 1.0).unwrap();
        }
        Interpreter::new()
            .run(&p, &LaunchConfig::linear(1, 4), &[ParamValue::Ptr(0)], &mut before)
            .unwrap();
        Interpreter::new()
            .run(&opt, &LaunchConfig::linear(1, 4), &[ParamValue::Ptr(0)], &mut after)
            .unwrap();
        assert_eq!(before.as_bytes(), after.as_bytes());
    }

    #[test]
    fn fixpoint_terminates_and_is_idempotent() {
        let p = asm::parse(".kernel nop\nentry:\n    ret\n").unwrap();
        let (opt, stats) = optimize(&p).unwrap();
        assert_eq!(stats.folded + stats.removed, 0);
        let (opt2, stats2) = optimize(&opt).unwrap();
        assert_eq!(opt, opt2);
        assert_eq!(stats2.folded + stats2.removed, 0);
    }
}
