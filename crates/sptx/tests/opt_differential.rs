//! Differential property testing of the optimizer: for randomized programs, the
//! optimized form must produce a bit-identical memory image — across immediate
//! values, arithmetic chains, type conversions and transcendentals, including NaN
//! and infinity propagation.

use proptest::prelude::*;

use sigmavp_sptx::builder::ProgramBuilder;
use sigmavp_sptx::interp::{Interpreter, LaunchConfig, Memory, ParamValue};
use sigmavp_sptx::isa::{BinOp, Reg, ScalarType, UnaryOp};
use sigmavp_sptx::opt::optimize;
use sigmavp_sptx::KernelProgram;

const NREGS: u16 = 8;

/// One randomly chosen straight-line operation over the register file.
#[derive(Debug, Clone)]
enum RandomOp {
    Bin { op: usize, ty: usize, dst: u16, a: u16, b: u16 },
    Un { op: usize, ty: usize, dst: u16, a: u16 },
    Mad { ty: usize, dst: u16, a: u16, b: u16, c: u16 },
    Mov { dst: u16, src: u16 },
    Cvt { to: usize, dst: u16, src: u16 },
}

fn arb_op() -> impl Strategy<Value = RandomOp> {
    let r = 0u16..NREGS;
    prop_oneof![
        (0usize..10, 0usize..3, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, ty, dst, a, b)| RandomOp::Bin { op, ty, dst, a, b }),
        (0usize..8, 0usize..3, r.clone(), r.clone()).prop_map(|(op, ty, dst, a)| RandomOp::Un {
            op,
            ty,
            dst,
            a
        }),
        (0usize..3, r.clone(), r.clone(), r.clone(), r.clone())
            .prop_map(|(ty, dst, a, b, c)| RandomOp::Mad { ty, dst, a, b, c }),
        (r.clone(), r.clone()).prop_map(|(dst, src)| RandomOp::Mov { dst, src }),
        (0usize..3, r.clone(), r).prop_map(|(to, dst, src)| RandomOp::Cvt { to, dst, src }),
    ]
}

fn ty_of(sel: usize) -> ScalarType {
    [ScalarType::F32, ScalarType::F64, ScalarType::I64][sel % 3]
}

fn bin_of(sel: usize) -> BinOp {
    // Div and Rem excluded: random integer operands routinely divide by zero, and
    // fault behaviour is covered by dedicated unit tests.
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ][sel % 10]
}

fn un_of(sel: usize) -> UnaryOp {
    [
        UnaryOp::Neg,
        UnaryOp::Abs,
        UnaryOp::Sqrt,
        UnaryOp::Exp,
        UnaryOp::Log,
        UnaryOp::Sin,
        UnaryOp::Cos,
        UnaryOp::Not,
    ][sel % 8]
}

/// Build a straight-line program: seed all registers with immediates, apply the
/// random ops, then store every register (as both i64 and f64 views) to memory.
fn build_program(seeds_i: &[i64; 4], seeds_f: &[f64; 4], ops: &[RandomOp]) -> KernelProgram {
    let mut b = ProgramBuilder::new("random_straightline");
    let regs: Vec<Reg> = (0..NREGS).map(|_| b.reg()).collect();
    for (i, r) in regs.iter().enumerate() {
        if i % 2 == 0 {
            b.mov_imm_i(*r, seeds_i[i / 2]);
        } else {
            b.mov_imm_f(*r, seeds_f[i / 2]);
        }
    }
    for op in ops {
        match op {
            RandomOp::Bin { op, ty, dst, a, b: rb } => {
                b.binop(
                    bin_of(*op),
                    ty_of(*ty),
                    regs[*dst as usize],
                    regs[*a as usize],
                    regs[*rb as usize],
                );
            }
            RandomOp::Un { op, ty, dst, a } => {
                b.unop(un_of(*op), ty_of(*ty), regs[*dst as usize], regs[*a as usize]);
            }
            RandomOp::Mad { ty, dst, a, b: rb, c } => {
                b.mad(
                    ty_of(*ty),
                    regs[*dst as usize],
                    regs[*a as usize],
                    regs[*rb as usize],
                    regs[*c as usize],
                );
            }
            RandomOp::Mov { dst, src } => {
                b.mov(regs[*dst as usize], regs[*src as usize]);
            }
            RandomOp::Cvt { to, dst, src } => {
                b.cvt(ty_of(*to), ScalarType::F64, regs[*dst as usize], regs[*src as usize]);
            }
        }
    }
    let base = b.reg();
    b.ld_param(base, 0);
    for (i, r) in regs.iter().enumerate() {
        b.st(ScalarType::I64, base, (i * 16) as i64, *r);
        b.st(ScalarType::F64, base, (i * 16 + 8) as i64, *r);
    }
    b.ret();
    b.build().expect("generated program is structurally valid")
}

/// Like [`arb_op`] but restricted to operations the folder is guaranteed to fold
/// (no integer transcendentals, which the folder conservatively leaves alone).
fn arb_foldable_op() -> impl Strategy<Value = RandomOp> {
    let r = 0u16..NREGS;
    prop_oneof![
        (0usize..10, 0usize..3, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, ty, dst, a, b)| RandomOp::Bin { op, ty, dst, a, b }),
        // Unary restricted to neg/abs, which fold for every type.
        (0usize..2, 0usize..3, r.clone(), r.clone()).prop_map(|(op, ty, dst, a)| RandomOp::Un {
            op,
            ty,
            dst,
            a
        }),
        (0usize..3, r.clone(), r.clone(), r.clone(), r.clone())
            .prop_map(|(ty, dst, a, b, c)| RandomOp::Mad { ty, dst, a, b, c }),
        (r.clone(), r.clone()).prop_map(|(dst, src)| RandomOp::Mov { dst, src }),
        (0usize..3, r.clone(), r).prop_map(|(to, dst, src)| RandomOp::Cvt { to, dst, src }),
    ]
}

/// Build a diamond-shaped program: seeds, a data-dependent branch, different
/// random op sequences in each arm, a join, then stores. Exercises the
/// optimizer's cross-block conservatism (per-block folding, liveness seeded at
/// block exits).
fn build_diamond(
    seeds_i: &[i64; 4],
    seeds_f: &[f64; 4],
    then_ops: &[RandomOp],
    else_ops: &[RandomOp],
    threshold: i64,
) -> KernelProgram {
    use sigmavp_sptx::isa::CmpOp;
    let mut b = ProgramBuilder::new("random_diamond");
    let regs: Vec<Reg> = (0..NREGS).map(|_| b.reg()).collect();
    for (i, r) in regs.iter().enumerate() {
        if i % 2 == 0 {
            b.mov_imm_i(*r, seeds_i[i / 2]);
        } else {
            b.mov_imm_f(*r, seeds_f[i / 2]);
        }
    }
    let limit = b.reg();
    let p = b.pred();
    b.mov_imm_i(limit, threshold);
    b.setp(CmpOp::Lt, ScalarType::I64, p, regs[0], limit);
    let then_b = b.declare_block();
    let else_b = b.declare_block();
    let join = b.declare_block();
    b.cond_bra(p, then_b, else_b);

    let emit = |b: &mut ProgramBuilder, ops: &[RandomOp]| {
        for op in ops {
            match op {
                RandomOp::Bin { op, ty, dst, a, b: rb } => {
                    b.binop(
                        bin_of(*op),
                        ty_of(*ty),
                        regs[*dst as usize],
                        regs[*a as usize],
                        regs[*rb as usize],
                    );
                }
                RandomOp::Un { op, ty, dst, a } => {
                    b.unop(un_of(*op), ty_of(*ty), regs[*dst as usize], regs[*a as usize]);
                }
                RandomOp::Mad { ty, dst, a, b: rb, c } => {
                    b.mad(
                        ty_of(*ty),
                        regs[*dst as usize],
                        regs[*a as usize],
                        regs[*rb as usize],
                        regs[*c as usize],
                    );
                }
                RandomOp::Mov { dst, src } => {
                    b.mov(regs[*dst as usize], regs[*src as usize]);
                }
                RandomOp::Cvt { to, dst, src } => {
                    b.cvt(ty_of(*to), ScalarType::F64, regs[*dst as usize], regs[*src as usize]);
                }
            }
        }
    };
    b.switch_to(then_b);
    emit(&mut b, then_ops);
    b.bra(join);
    b.switch_to(else_b);
    emit(&mut b, else_ops);
    b.bra(join);
    b.switch_to(join);
    let base = b.reg();
    b.ld_param(base, 0);
    for (i, r) in regs.iter().enumerate() {
        b.st(ScalarType::I64, base, (i * 16) as i64, *r);
        b.st(ScalarType::F64, base, (i * 16 + 8) as i64, *r);
    }
    b.ret();
    b.build().expect("generated diamond is structurally valid")
}

fn run(program: &KernelProgram) -> Vec<u8> {
    let mut mem = Memory::new(NREGS as usize * 16);
    Interpreter::new()
        .run(program, &LaunchConfig::linear(1, 1), &[ParamValue::Ptr(0)], &mut mem)
        .expect("straight-line program executes");
    mem.as_bytes().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn assembler_roundtrip_preserves_behaviour(
        seeds_i in proptest::array::uniform4(-1_000_000i64..1_000_000),
        seeds_f in proptest::array::uniform4(-1.0e6f64..1.0e6),
        ops in proptest::collection::vec(arb_op(), 0..30),
    ) {
        // Random programs survive disassemble → parse with identical structure and
        // bit-identical execution. Float immediates print via `{:?}`, which is
        // round-trip exact for f64.
        let program = build_program(&seeds_i, &seeds_f, &ops);
        let text = sigmavp_sptx::asm::disassemble(&program);
        let reparsed = sigmavp_sptx::asm::parse(&text).expect("disassembly reparses");
        prop_assert_eq!(program.static_mix(), reparsed.static_mix());
        prop_assert_eq!(program.blocks().len(), reparsed.blocks().len());
        prop_assert_eq!(run(&program), run(&reparsed));
    }

    #[test]
    fn optimized_programs_are_bit_identical(
        seeds_i in proptest::array::uniform4(-1_000_000i64..1_000_000),
        seeds_f in proptest::array::uniform4(-1.0e6f64..1.0e6),
        ops in proptest::collection::vec(arb_op(), 0..40),
    ) {
        let program = build_program(&seeds_i, &seeds_f, &ops);
        let (optimized, stats) = optimize(&program).expect("optimizer succeeds");
        prop_assert_eq!(run(&program), run(&optimized));
        // The pipeline terminated (fixpoint guard) and never grew the program.
        prop_assert!(stats.iterations <= 33);
        prop_assert!(optimized.static_size() <= program.static_size());
    }

    #[test]
    fn diamond_programs_optimize_soundly(
        seeds_i in proptest::array::uniform4(-1_000_000i64..1_000_000),
        seeds_f in proptest::array::uniform4(-1.0e6f64..1.0e6),
        then_ops in proptest::collection::vec(arb_op(), 0..20),
        else_ops in proptest::collection::vec(arb_op(), 0..20),
        threshold in -1_000_000i64..1_000_000,
    ) {
        let program = build_diamond(&seeds_i, &seeds_f, &then_ops, &else_ops, threshold);
        let (optimized, _) = optimize(&program).expect("optimizer succeeds");
        prop_assert_eq!(run(&program), run(&optimized));
        prop_assert!(optimized.static_size() <= program.static_size());
    }

    #[test]
    fn straight_line_programs_fold_almost_completely(
        seeds_i in proptest::array::uniform4(-1_000i64..1_000),
        seeds_f in proptest::array::uniform4(-100.0f64..100.0),
        ops in proptest::collection::vec(arb_foldable_op(), 1..30),
    ) {
        // Every operand chain starts from immediates, so after folding + DCE the
        // only remaining instructions are the parameter load, the final register
        // materializations (one per live register) and the stores.
        let program = build_program(&seeds_i, &seeds_f, &ops);
        let (optimized, _) = optimize(&program).expect("optimizer succeeds");
        let max_remaining = 1 + NREGS as u64 + 2 * NREGS as u64; // ldp + movs + stores
        prop_assert!(
            optimized.static_size() <= max_remaining,
            "static size {} > {}",
            optimized.static_size(),
            max_remaining
        );
    }
}
