//! Differential property testing of the warp-lockstep tier: for random
//! programs, launch shapes and parameters, warp execution
//! ([`Tier::Warp`], workers ∈ {1, 4}) must be observationally identical to
//! the scalar reference interpreter ([`Tier::Scalar`]) — same
//! [`ExecutionProfile`] (class counts, per-block iteration counts, memory
//! trace, unique segments), same final memory bytes, same error value —
//! across success, divergence-heavy, faulting, intra-warp-hazard and
//! budget-exhaustion outcomes.

use proptest::prelude::*;

use sigmavp_sptx::builder::{for_loop, ProgramBuilder};
use sigmavp_sptx::counters::ExecutionProfile;
use sigmavp_sptx::interp::{Interpreter, LaunchConfig, Memory, ParamValue};
use sigmavp_sptx::isa::{BinOp, CmpOp, Reg, ScalarType, Special, UnaryOp};
use sigmavp_sptx::{KernelProgram, SptxError, Tier};

const NREGS: usize = 5;
const WORKER_COUNTS: [u32; 2] = [1, 4];

/// One randomly chosen fault-free operation over the scratch register file.
#[derive(Debug, Clone)]
enum RandomOp {
    Bin { op: usize, ty: usize, dst: usize, a: usize, b: usize },
    Un { op: usize, ty: usize, dst: usize, a: usize },
    Mad { ty: usize, dst: usize, a: usize, b: usize, c: usize },
    Cvt { to: usize, dst: usize, src: usize },
}

fn arb_op() -> impl Strategy<Value = RandomOp> {
    let r = 0usize..NREGS;
    prop_oneof![
        (0usize..10, 0usize..3, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, ty, dst, a, b)| RandomOp::Bin { op, ty, dst, a, b }),
        (0usize..8, 0usize..3, r.clone(), r.clone()).prop_map(|(op, ty, dst, a)| RandomOp::Un {
            op,
            ty,
            dst,
            a
        }),
        (0usize..3, r.clone(), r.clone(), r.clone(), r.clone())
            .prop_map(|(ty, dst, a, b, c)| RandomOp::Mad { ty, dst, a, b, c }),
        (0usize..3, r.clone(), r).prop_map(|(to, dst, src)| RandomOp::Cvt { to, dst, src }),
    ]
}

fn ty_of(sel: usize) -> ScalarType {
    [ScalarType::F32, ScalarType::F64, ScalarType::I64][sel % 3]
}

fn bin_of(sel: usize) -> BinOp {
    // Div/Rem excluded here: faults are exercised by the dedicated
    // divergent-fault property below.
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ][sel % 10]
}

fn un_of(sel: usize) -> UnaryOp {
    [
        UnaryOp::Neg,
        UnaryOp::Abs,
        UnaryOp::Sqrt,
        UnaryOp::Exp,
        UnaryOp::Log,
        UnaryOp::Sin,
        UnaryOp::Cos,
        UnaryOp::Not,
    ][sel % 8]
}

fn emit(b: &mut ProgramBuilder, regs: &[Reg], ops: &[RandomOp]) {
    for op in ops {
        match op {
            RandomOp::Bin { op, ty, dst, a, b: rb } => {
                b.binop(bin_of(*op), ty_of(*ty), regs[*dst], regs[*a], regs[*rb]);
            }
            RandomOp::Un { op, ty, dst, a } => {
                b.unop(un_of(*op), ty_of(*ty), regs[*dst], regs[*a]);
            }
            RandomOp::Mad { ty, dst, a, b: rb, c } => {
                b.mad(ty_of(*ty), regs[*dst], regs[*a], regs[*rb], regs[*c]);
            }
            RandomOp::Cvt { to, dst, src } => {
                b.cvt(ty_of(*to), ScalarType::F64, regs[*dst], regs[*src]);
            }
        }
    }
}

/// A divergence-heavy random kernel: every thread reads `input[gtid]`, takes a
/// data-dependent branch (threads whose `tid & mask` is non-zero run `then_ops`
/// inside a *per-thread-variable* counted loop, the rest run `else_ops`
/// straight-line), then both sides reconverge and store all scratch registers
/// to the thread's private output slot. Warps see every shape of divergence —
/// full, partial, and none — depending on the mask and block size.
fn build_divergent_kernel(
    seed_i: i64,
    seed_f: f64,
    then_ops: &[RandomOp],
    else_ops: &[RandomOp],
    mask: i64,
) -> KernelProgram {
    let mut b = ProgramBuilder::new("warp_diff");
    let gtid = b.reg();
    let tid = b.reg();
    b.read_special(gtid, Special::GlobalTid).read_special(tid, Special::TidX);
    let regs: Vec<Reg> = (0..NREGS).map(|_| b.reg()).collect();
    let inbase = b.reg();
    b.ld_param(inbase, 0)
        .ld_indexed(ScalarType::F64, regs[0], inbase, gtid, 0)
        .mov(regs[1], gtid)
        .mov_imm_i(regs[2], seed_i)
        .mov_imm_f(regs[3], seed_f)
        .mov(regs[4], tid);

    // sel = tid & mask; diverge on sel != 0.
    let (selr, zero) = (b.reg(), b.reg());
    let p = b.pred();
    b.mov_imm_i(selr, mask)
        .binop(BinOp::And, ScalarType::I64, selr, tid, selr)
        .mov_imm_i(zero, 0)
        .setp(CmpOp::Ne, ScalarType::I64, p, selr, zero);
    let then_blk = b.declare_block();
    let else_blk = b.declare_block();
    let merge = b.declare_block();
    b.cond_bra(p, then_blk, else_blk);

    // Then side: a loop whose trip count varies per thread (sel ∈ 1..=mask),
    // so lanes fall out of the loop at different iterations.
    b.switch_to(then_blk);
    let (ctr, one) = (b.reg(), b.reg());
    let ploop = b.pred();
    b.mov(ctr, selr).mov_imm_i(one, 1);
    let header = b.declare_block();
    let body = b.declare_block();
    b.bra(header);
    b.switch_to(header);
    b.setp(CmpOp::Gt, ScalarType::I64, ploop, ctr, zero).cond_bra(ploop, body, merge);
    b.switch_to(body);
    emit(&mut b, &regs, then_ops);
    b.binop(BinOp::Sub, ScalarType::I64, ctr, ctr, one).bra(header);

    // Else side: straight-line.
    b.switch_to(else_blk);
    emit(&mut b, &regs, else_ops);
    b.bra(merge);

    b.switch_to(merge);
    let (outbase, stride, addr) = (b.reg(), b.reg(), b.reg());
    b.ld_param(outbase, 1)
        .mov_imm_i(stride, (NREGS * 8) as i64)
        .binop(BinOp::Mul, ScalarType::I64, addr, gtid, stride)
        .binop(BinOp::Add, ScalarType::I64, addr, addr, outbase);
    for (i, r) in regs.iter().enumerate() {
        b.st(ScalarType::F64, addr, (i * 8) as i64, *r);
    }
    b.ret();
    b.build().expect("generated kernel is structurally valid")
}

/// Run `program` at the given tier and worker count on a fresh memory image
/// (input region seeded deterministically), returning the outcome and the
/// final memory bytes.
fn run_tier(
    program: &KernelProgram,
    cfg: &LaunchConfig,
    tier: Tier,
    workers: u32,
    budget: Option<u64>,
) -> (Result<ExecutionProfile, SptxError>, Vec<u8>) {
    let threads = cfg.total_threads() as usize;
    let out_base = threads * 8;
    let mut mem = Memory::new(out_base + threads * NREGS * 8);
    for t in 0..threads {
        mem.write_f64(t as u64 * 8, (t as f64).mul_add(-3.25, 1000.5)).unwrap();
    }
    let mut interp = Interpreter::new().with_tier(tier).with_workers(workers);
    if let Some(budget) = budget {
        interp = interp.with_budget(budget);
    }
    let params = [ParamValue::Ptr(0), ParamValue::Ptr(out_base as u64)];
    let result = interp.run(program, cfg, &params, &mut mem);
    (result, mem.as_bytes().to_vec())
}

/// Assert warp execution at every worker count is observationally identical to
/// the scalar reference on the same launch.
fn assert_tiers_agree(
    program: &KernelProgram,
    cfg: &LaunchConfig,
    budget: Option<u64>,
    what: &str,
) {
    let (scalar, scalar_mem) = run_tier(program, cfg, Tier::Scalar, 1, budget);
    for workers in WORKER_COUNTS {
        let (warp, warp_mem) = run_tier(program, cfg, Tier::Warp, workers, budget);
        match (&scalar, &warp) {
            (Ok(s), Ok(w)) => assert_eq!(s, w, "{what}: profile diverged at workers={workers}"),
            (Err(s), Err(w)) => assert_eq!(s, w, "{what}: error diverged at workers={workers}"),
            _ => panic!(
                "{what}: outcome diverged at workers={workers}: scalar={scalar:?} warp={warp:?}"
            ),
        }
        assert_eq!(scalar_mem, warp_mem, "{what}: memory diverged at workers={workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn warp_matches_scalar_under_divergence(
        seed_i in -1_000_000i64..1_000_000,
        seed_f in -1.0e6f64..1.0e6,
        then_ops in proptest::collection::vec(arb_op(), 0..12),
        else_ops in proptest::collection::vec(arb_op(), 0..12),
        grid in 1u32..7,
        block in 1u32..70,
        mask in 0i64..8,
    ) {
        let program = build_divergent_kernel(seed_i, seed_f, &then_ops, &else_ops, mask);
        let cfg = LaunchConfig::linear(grid, block);
        let (scalar, scalar_mem) = run_tier(&program, &cfg, Tier::Scalar, 1, None);
        let scalar = scalar.expect("race-free random kernel executes");
        for workers in WORKER_COUNTS {
            let (warp, warp_mem) = run_tier(&program, &cfg, Tier::Warp, workers, None);
            let warp = warp.expect("warp execution of the same kernel succeeds");
            prop_assert_eq!(&scalar, &warp, "profile diverged at workers={}", workers);
            prop_assert_eq!(&scalar_mem, &warp_mem, "memory diverged at workers={}", workers);
        }
    }

    #[test]
    fn divergent_fault_matches_scalar(
        grid in 1u32..6,
        block in 1u32..70,
        fault_thread in 0u32..512,
    ) {
        // Exactly one (ctaid, tid) divides by zero, on the taken side of a
        // divergent branch. The warp tier must surface the identical error —
        // first fault in (ctaid, tid) order — and the identical partial
        // memory image (stores by earlier threads committed, later ones not).
        let fault_gtid = i64::from(fault_thread % (grid * block));
        let mut b = ProgramBuilder::new("warp_fault");
        let (gtid, outbase, k, one) = (b.reg(), b.reg(), b.reg(), b.reg());
        let p = b.pred();
        b.read_special(gtid, Special::GlobalTid)
            .ld_param(outbase, 0)
            .st_indexed(ScalarType::I64, outbase, gtid, 0, gtid)
            .mov_imm_i(k, fault_gtid)
            .setp(CmpOp::Eq, ScalarType::I64, p, gtid, k);
        let boom = b.declare_block();
        let done = b.declare_block();
        b.cond_bra(p, boom, done);
        b.switch_to(boom);
        b.binop(BinOp::Sub, ScalarType::I64, k, gtid, k)
            .mov_imm_i(one, 1)
            .binop(BinOp::Div, ScalarType::I64, one, one, k)
            .bra(done);
        b.switch_to(done);
        b.ret();
        let program = b.build().unwrap();
        let cfg = LaunchConfig::linear(grid, block);

        let (scalar, scalar_mem) = run_tier(&program, &cfg, Tier::Scalar, 1, None);
        let scalar_err = scalar.expect_err("the chosen thread divides by zero");
        let is_div_by_zero = matches!(scalar_err, SptxError::DivisionByZero { .. });
        prop_assert!(is_div_by_zero);
        for workers in WORKER_COUNTS {
            let (warp, warp_mem) = run_tier(&program, &cfg, Tier::Warp, workers, None);
            let warp_err = warp.expect_err("warp run faults identically");
            prop_assert_eq!(&scalar_err, &warp_err, "error diverged at workers={}", workers);
            prop_assert_eq!(&scalar_mem, &warp_mem, "partial memory diverged at workers={}",
                workers);
        }
    }

    #[test]
    fn intra_warp_hazards_fall_back_identically(
        grid in 1u32..5,
        block in 2u32..70,
    ) {
        // Every thread stores its gtid to slot `gtid & !1` (so lane pairs
        // write the same address — a write-write race inside the warp), then
        // loads the shared slot back. The warp tier cannot replay this in
        // lane order, so it must detect the hazard, roll back and rerun the
        // CTA scalar — producing exactly the sequential (ctaid, tid)-order
        // result.
        let mut b = ProgramBuilder::new("warp_hazard");
        let (gtid, outbase, slot, m, got, resbase) =
            (b.reg(), b.reg(), b.reg(), b.reg(), b.reg(), b.reg());
        b.read_special(gtid, Special::GlobalTid)
            .ld_param(outbase, 0)
            .mov_imm_i(m, !1)
            .binop(BinOp::And, ScalarType::I64, slot, gtid, m)
            .st_indexed(ScalarType::I64, outbase, slot, 0, gtid)
            .ld_indexed(ScalarType::I64, got, outbase, slot, 0)
            .ld_param(resbase, 1)
            .st_indexed(ScalarType::I64, resbase, gtid, 0, got)
            .ret();
        let program = b.build().unwrap();
        let cfg = LaunchConfig::linear(grid, block);
        assert_tiers_agree(&program, &cfg, None, "intra-warp hazard");
    }
}

/// A kernel whose per-thread instruction count varies with `tid` (divergent
/// loop trip counts), used to sweep the cumulative budget across warp and
/// block boundaries.
fn variable_cost_kernel() -> KernelProgram {
    let mut b = ProgramBuilder::new("warp_budget");
    let (gtid, tid, outbase, acc, one, zero, ctr, m) =
        (b.reg(), b.reg(), b.reg(), b.reg(), b.reg(), b.reg(), b.reg(), b.reg());
    let p = b.pred();
    b.read_special(gtid, Special::GlobalTid)
        .read_special(tid, Special::TidX)
        .ld_param(outbase, 0)
        .mov_imm_i(acc, 0)
        .mov_imm_i(one, 1)
        .mov_imm_i(zero, 0)
        .mov_imm_i(m, 3)
        .binop(BinOp::And, ScalarType::I64, ctr, tid, m);
    let header = b.declare_block();
    let body = b.declare_block();
    let exit = b.declare_block();
    b.bra(header);
    b.switch_to(header);
    b.setp(CmpOp::Gt, ScalarType::I64, p, ctr, zero).cond_bra(p, body, exit);
    b.switch_to(body);
    b.binop(BinOp::Add, ScalarType::I64, acc, acc, one)
        .binop(BinOp::Sub, ScalarType::I64, ctr, ctr, one)
        .bra(header);
    b.switch_to(exit);
    b.st_indexed(ScalarType::I64, outbase, gtid, 0, acc).ret();
    b.build().unwrap()
}

#[test]
fn budget_exhaustion_matches_scalar_at_every_boundary() {
    let program = variable_cost_kernel();
    let cfg = LaunchConfig::linear(3, 50);
    let (full, _) = run_tier(&program, &cfg, Tier::Scalar, 1, None);
    let total = full.unwrap().counts.total();

    // Sweep budgets through: plenty, exactly enough, one short, mid-grid,
    // mid-warp, and nearly nothing. Wherever the budget lands, the warp tier
    // must report the same exhaustion point (or completion) as the scalar
    // reference.
    let mut budgets = vec![total + 10, total, total - 1, total / 2, total / 3 + 1, total / 5, 9, 1];
    budgets.extend((0..16).map(|i| total * (i + 1) / 17));
    for budget in budgets {
        assert_tiers_agree(&program, &cfg, Some(budget), &format!("budget {budget}"));
    }
}

#[test]
fn uniform_and_consecutive_loads_match_scalar() {
    // One kernel with both a warp-uniform load (same address in every lane)
    // and a consecutive load (addr = base + gtid*width): the wide-op fast
    // paths must leave profile, trace and results untouched.
    let mut b = ProgramBuilder::new("warp_wide");
    let (gtid, zero, inbase, shared, own, sum, outbase) =
        (b.reg(), b.reg(), b.reg(), b.reg(), b.reg(), b.reg(), b.reg());
    b.read_special(gtid, Special::GlobalTid)
        .mov_imm_i(zero, 0)
        .ld_param(inbase, 0)
        .ld_indexed(ScalarType::F64, shared, inbase, zero, 0)
        .ld_indexed(ScalarType::F64, own, inbase, gtid, 0)
        .binop(BinOp::Add, ScalarType::F64, sum, shared, own)
        .ld_param(outbase, 1)
        .st_indexed(ScalarType::F64, outbase, gtid, 0, sum)
        .ret();
    let program = b.build().unwrap();
    for (grid, block) in [(1, 32), (2, 48), (1, 7), (3, 33)] {
        let cfg = LaunchConfig::linear(grid, block);
        assert_tiers_agree(&program, &cfg, None, "wide loads");
    }
}

#[test]
fn fixed_trip_loops_match_scalar() {
    // Convergent control flow (all lanes take the same branches): the warp
    // scheduler must still count block iterations and branch instructions
    // exactly like the scalar walk.
    let mut b = ProgramBuilder::new("warp_loop");
    let (gtid, outbase, acc, one) = (b.reg(), b.reg(), b.reg(), b.reg());
    b.read_special(gtid, Special::GlobalTid)
        .ld_param(outbase, 0)
        .mov_imm_i(acc, 0)
        .mov_imm_i(one, 1);
    for_loop(&mut b, 7, |b, _| {
        b.binop(BinOp::Add, ScalarType::I64, acc, acc, one);
    });
    b.st_indexed(ScalarType::I64, outbase, gtid, 0, acc).ret();
    let program = b.build().unwrap();
    for (grid, block) in [(1, 1), (1, 32), (2, 33), (4, 64), (2, 100)] {
        let cfg = LaunchConfig::linear(grid, block);
        assert_tiers_agree(&program, &cfg, None, "fixed-trip loop");
    }
}
