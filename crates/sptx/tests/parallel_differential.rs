//! Differential property testing of the block-parallel interpreter: for
//! random programs, launch shapes and parameters, parallel execution
//! (workers ∈ {2, 4, 7}) must be observationally identical to the sequential
//! interpreter (`workers = 1`) — same [`ExecutionProfile`], same final memory
//! bytes, same error value — across success, faulting-block and
//! budget-exhaustion outcomes.

use proptest::prelude::*;

use sigmavp_sptx::builder::{for_loop, ProgramBuilder};
use sigmavp_sptx::counters::ExecutionProfile;
use sigmavp_sptx::interp::{Interpreter, LaunchConfig, Memory, ParamValue};
use sigmavp_sptx::isa::{BinOp, Reg, ScalarType, Special, UnaryOp};
use sigmavp_sptx::{KernelProgram, SptxError};

const NREGS: usize = 6;
const PARALLEL_WORKERS: [u32; 3] = [2, 4, 7];

/// One randomly chosen fault-free operation over the scratch register file.
#[derive(Debug, Clone)]
enum RandomOp {
    Bin { op: usize, ty: usize, dst: usize, a: usize, b: usize },
    Un { op: usize, ty: usize, dst: usize, a: usize },
    Mad { ty: usize, dst: usize, a: usize, b: usize, c: usize },
    Mov { dst: usize, src: usize },
    Cvt { to: usize, dst: usize, src: usize },
}

fn arb_op() -> impl Strategy<Value = RandomOp> {
    let r = 0usize..NREGS;
    prop_oneof![
        (0usize..10, 0usize..3, r.clone(), r.clone(), r.clone())
            .prop_map(|(op, ty, dst, a, b)| RandomOp::Bin { op, ty, dst, a, b }),
        (0usize..8, 0usize..3, r.clone(), r.clone()).prop_map(|(op, ty, dst, a)| RandomOp::Un {
            op,
            ty,
            dst,
            a
        }),
        (0usize..3, r.clone(), r.clone(), r.clone(), r.clone())
            .prop_map(|(ty, dst, a, b, c)| RandomOp::Mad { ty, dst, a, b, c }),
        (r.clone(), r.clone()).prop_map(|(dst, src)| RandomOp::Mov { dst, src }),
        (0usize..3, r.clone(), r).prop_map(|(to, dst, src)| RandomOp::Cvt { to, dst, src }),
    ]
}

fn ty_of(sel: usize) -> ScalarType {
    [ScalarType::F32, ScalarType::F64, ScalarType::I64][sel % 3]
}

fn bin_of(sel: usize) -> BinOp {
    // Div/Rem excluded here: faults are exercised by the dedicated
    // `faulting_block_matches_sequential` property below.
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ][sel % 10]
}

fn un_of(sel: usize) -> UnaryOp {
    [
        UnaryOp::Neg,
        UnaryOp::Abs,
        UnaryOp::Sqrt,
        UnaryOp::Exp,
        UnaryOp::Log,
        UnaryOp::Sin,
        UnaryOp::Cos,
        UnaryOp::Not,
    ][sel % 8]
}

fn emit(b: &mut ProgramBuilder, regs: &[Reg], ops: &[RandomOp]) {
    for op in ops {
        match op {
            RandomOp::Bin { op, ty, dst, a, b: rb } => {
                b.binop(bin_of(*op), ty_of(*ty), regs[*dst], regs[*a], regs[*rb]);
            }
            RandomOp::Un { op, ty, dst, a } => {
                b.unop(un_of(*op), ty_of(*ty), regs[*dst], regs[*a]);
            }
            RandomOp::Mad { ty, dst, a, b: rb, c } => {
                b.mad(ty_of(*ty), regs[*dst], regs[*a], regs[*rb], regs[*c]);
            }
            RandomOp::Mov { dst, src } => {
                b.mov(regs[*dst], regs[*src]);
            }
            RandomOp::Cvt { to, dst, src } => {
                b.cvt(ty_of(*to), ScalarType::F64, regs[*dst], regs[*src]);
            }
        }
    }
}

/// A race-free random kernel: every thread reads `input[gtid]` (read-only
/// across the launch), mangles a scratch register file with `ops` (optionally
/// inside a counted loop), and stores all scratch registers to its own
/// private output slot. No thread reads anything another thread writes, so
/// sequential and parallel execution must agree bit-for-bit.
fn build_random_kernel(seed_i: i64, seed_f: f64, ops: &[RandomOp], trips: u32) -> KernelProgram {
    let mut b = ProgramBuilder::new("par_diff");
    let gtid = b.reg();
    b.read_special(gtid, Special::GlobalTid);
    let regs: Vec<Reg> = (0..NREGS).map(|_| b.reg()).collect();
    b.mov(regs[0], gtid);
    b.read_special(regs[1], Special::CtaIdX);
    b.read_special(regs[2], Special::TidX);
    let inbase = b.reg();
    b.ld_param(inbase, 0);
    b.ld_indexed(ScalarType::F64, regs[3], inbase, gtid, 0);
    b.mov_imm_i(regs[4], seed_i);
    b.mov_imm_f(regs[5], seed_f);

    if trips > 0 {
        for_loop(&mut b, i64::from(trips), |b, _| emit(b, &regs, ops));
    } else {
        emit(&mut b, &regs, ops);
    }

    let (outbase, stride, addr) = (b.reg(), b.reg(), b.reg());
    b.ld_param(outbase, 1)
        .mov_imm_i(stride, (NREGS * 16) as i64)
        .binop(BinOp::Mul, ScalarType::I64, addr, gtid, stride)
        .binop(BinOp::Add, ScalarType::I64, addr, addr, outbase);
    for (i, r) in regs.iter().enumerate() {
        b.st(ScalarType::I64, addr, (i * 16) as i64, *r);
        b.st(ScalarType::F64, addr, (i * 16 + 8) as i64, *r);
    }
    b.ret();
    b.build().expect("generated kernel is structurally valid")
}

/// Run `program` over `cfg` at the given worker count on a fresh memory image
/// (input region seeded with a deterministic pattern), returning the outcome
/// and the final memory bytes.
fn run_with_workers(
    program: &KernelProgram,
    cfg: &LaunchConfig,
    workers: u32,
    budget: Option<u64>,
) -> (Result<ExecutionProfile, SptxError>, Vec<u8>) {
    let threads = cfg.total_threads() as usize;
    let out_base = threads * 8;
    let mut mem = Memory::new(out_base + threads * NREGS * 16);
    for t in 0..threads {
        mem.write_f64(t as u64 * 8, (t as f64).mul_add(-3.25, 1000.5)).unwrap();
    }
    let mut interp = Interpreter::new().with_workers(workers);
    if let Some(budget) = budget {
        interp = interp.with_budget(budget);
    }
    let params = [ParamValue::Ptr(0), ParamValue::Ptr(out_base as u64)];
    let result = interp.run(program, cfg, &params, &mut mem);
    (result, mem.as_bytes().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parallel_matches_sequential(
        seed_i in -1_000_000i64..1_000_000,
        seed_f in -1.0e6f64..1.0e6,
        ops in proptest::collection::vec(arb_op(), 0..24),
        grid in 1u32..9,
        block in 1u32..25,
        trips in 0u32..6,
    ) {
        let program = build_random_kernel(seed_i, seed_f, &ops, trips);
        let cfg = LaunchConfig::linear(grid, block);
        let (seq, seq_mem) = run_with_workers(&program, &cfg, 1, None);
        let seq = seq.expect("race-free random kernel executes");
        for workers in PARALLEL_WORKERS {
            let (par, par_mem) = run_with_workers(&program, &cfg, workers, None);
            let par = par.expect("parallel execution of the same kernel succeeds");
            prop_assert_eq!(&seq, &par, "profile diverged at workers={}", workers);
            prop_assert_eq!(&seq_mem, &par_mem, "memory diverged at workers={}", workers);
        }
    }

    #[test]
    fn faulting_block_matches_sequential(
        grid in 2u32..10,
        block in 1u32..17,
        fault_block in 0u32..10,
    ) {
        let fault_block = fault_block % grid;
        // Every thread stores gtid to its slot, then block `fault_block`
        // divides by zero. Sequential semantics: blocks before the faulting
        // one complete, thread 0 of the faulting block stores and then
        // faults, everything after never runs.
        let mut b = ProgramBuilder::new("par_fault");
        let (gtid, ctaid, outbase, k, one) = (b.reg(), b.reg(), b.reg(), b.reg(), b.reg());
        b.read_special(gtid, Special::GlobalTid)
            .read_special(ctaid, Special::CtaIdX)
            .ld_param(outbase, 0)
            .st_indexed(ScalarType::I64, outbase, gtid, 0, gtid)
            .mov_imm_i(k, i64::from(fault_block))
            .binop(BinOp::Sub, ScalarType::I64, k, ctaid, k)
            .mov_imm_i(one, 1)
            .binop(BinOp::Div, ScalarType::I64, one, one, k)
            .ret();
        let program = b.build().unwrap();
        let cfg = LaunchConfig::linear(grid, block);

        let (seq, seq_mem) = run_with_workers(&program, &cfg, 1, None);
        let seq_err = seq.expect_err("the faulting block divides by zero");
        let is_div_by_zero = matches!(seq_err, SptxError::DivisionByZero { .. });
        prop_assert!(is_div_by_zero);
        for workers in PARALLEL_WORKERS {
            let (par, par_mem) = run_with_workers(&program, &cfg, workers, None);
            let par_err = par.expect_err("parallel run faults identically");
            prop_assert_eq!(&seq_err, &par_err, "error diverged at workers={}", workers);
            prop_assert_eq!(&seq_mem, &par_mem, "partial memory diverged at workers={}", workers);
        }
    }

    #[test]
    fn write_write_races_replay_in_ctaid_order(
        grid in 2u32..9,
        block in 1u32..17,
    ) {
        // All threads store their gtid to the same address: a write-write
        // race, which the ISA resolves last-writer-wins in (ctaid, tid)
        // order. Journal replay must reproduce it exactly.
        let mut b = ProgramBuilder::new("par_race");
        let (gtid, outbase) = (b.reg(), b.reg());
        b.read_special(gtid, Special::GlobalTid)
            .ld_param(outbase, 0)
            .st(ScalarType::I64, outbase, 0, gtid)
            .ret();
        let program = b.build().unwrap();
        let cfg = LaunchConfig::linear(grid, block);
        let (seq, seq_mem) = run_with_workers(&program, &cfg, 1, None);
        seq.unwrap();
        for workers in PARALLEL_WORKERS {
            let (par, par_mem) = run_with_workers(&program, &cfg, workers, None);
            par.unwrap();
            prop_assert_eq!(&seq_mem, &par_mem, "race order diverged at workers={}", workers);
        }
        // And the winner is the last thread of the grid.
        let winner = i64::from_le_bytes(seq_mem[0..8].try_into().unwrap());
        prop_assert_eq!(winner, cfg.total_threads() as i64 - 1);
    }
}

/// A looped kernel with a statically known per-thread instruction count, used
/// to sweep the cumulative budget across block boundaries.
fn budget_kernel() -> KernelProgram {
    let mut b = ProgramBuilder::new("par_budget");
    let (gtid, outbase, acc, one) = (b.reg(), b.reg(), b.reg(), b.reg());
    b.read_special(gtid, Special::GlobalTid)
        .ld_param(outbase, 0)
        .mov_imm_i(acc, 0)
        .mov_imm_i(one, 1);
    for_loop(&mut b, 7, |b, _| {
        b.binop(BinOp::Add, ScalarType::I64, acc, acc, one);
    });
    b.st_indexed(ScalarType::I64, outbase, gtid, 0, acc).ret();
    b.build().unwrap()
}

#[test]
fn budget_exhaustion_matches_sequential_at_every_boundary() {
    let program = budget_kernel();
    let cfg = LaunchConfig::linear(5, 3);
    let (full, _) = run_with_workers(&program, &cfg, 1, None);
    let total = full.unwrap().counts.total();

    // Sweep budgets through: plenty, exactly enough, one short, mid-grid,
    // mid-block, and nearly nothing.
    let budgets = [total + 10, total, total - 1, total / 2, total / 3 + 1, total / 5, 7, 1];
    for budget in budgets {
        let (seq, seq_mem) = run_with_workers(&program, &cfg, 1, Some(budget));
        for workers in PARALLEL_WORKERS {
            let (par, par_mem) = run_with_workers(&program, &cfg, workers, Some(budget));
            match (&seq, &par) {
                (Ok(s), Ok(p)) => assert_eq!(s, p, "profile diverged at budget {budget}"),
                (Err(s), Err(p)) => assert_eq!(s, p, "error diverged at budget {budget}"),
                _ => panic!(
                    "outcome diverged at budget {budget} workers {workers}: seq={seq:?} par={par:?}"
                ),
            }
            assert_eq!(seq_mem, par_mem, "memory diverged at budget {budget} workers {workers}");
        }
    }
}

#[test]
fn single_block_grids_use_the_sequential_path() {
    // grid_dim = 1 cannot be split; the parallel dispatch must fall through
    // to the sequential loop and still produce the right answer.
    let program = budget_kernel();
    let cfg = LaunchConfig::linear(1, 8);
    let (r, mem) = run_with_workers(&program, &cfg, 8, None);
    r.unwrap();
    for t in 0..8u64 {
        let out =
            i64::from_le_bytes(mem[(t * 8) as usize..(t * 8 + 8) as usize].try_into().unwrap());
        assert_eq!(out, 7);
    }
}
