//! End-to-end tests of the `sptxc` command-line tool.

use std::process::Command;

fn sptxc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sptxc"))
}

fn write_kernel(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("double.sptx");
    std::fs::write(
        &path,
        "\
.kernel double
entry:
    rs       r0, gtid
    ldp      r1, 0
    ld.f32   r2, [r1 + r0]
    add.f32  r2, r2, r2
    st.f32   [r1 + r0], r2
    ret
",
    )
    .expect("write kernel");
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sptxc_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn check_reports_program_shape() {
    let dir = temp_dir("check");
    let path = write_kernel(&dir);
    let out = sptxc().arg("check").arg(&path).output().expect("run sptxc");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("double: ok"), "{stdout}");
    assert!(stdout.contains("1 blocks"), "{stdout}");
}

#[test]
fn run_executes_and_dumps_memory() {
    let dir = temp_dir("run");
    let path = write_kernel(&dir);
    let out = sptxc()
        .args(["run"])
        .arg(&path)
        .args([
            "--grid",
            "1",
            "--block",
            "4",
            "--mem",
            "64",
            "--param",
            "ptr:0",
            "--dump-f32",
            "0..4",
        ])
        .output()
        .expect("run sptxc");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ran 4 threads"), "{stdout}");
    assert!(stdout.contains("f32[0] = 0"), "{stdout}");
}

#[test]
fn opt_emits_reparsable_assembly() {
    let dir = temp_dir("opt");
    let path = write_kernel(&dir);
    let out = sptxc().arg("opt").arg(&path).output().expect("run sptxc");
    assert!(out.status.success());
    let optimized = String::from_utf8_lossy(&out.stdout);
    // The optimizer output is valid SPTX.
    sigmavp_sptx::asm::parse(&optimized).expect("optimized output reparses");
}

#[test]
fn bad_input_fails_with_diagnostics() {
    let dir = temp_dir("bad");
    let path = dir.join("broken.sptx");
    std::fs::write(&path, ".kernel broken\nentry:\n    frobnicate r0\n    ret\n").unwrap();
    let out = sptxc().arg("check").arg(&path).output().expect("run sptxc");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("frobnicate"), "{stderr}");

    let out = sptxc().arg("check").arg(dir.join("missing.sptx")).output().expect("run sptxc");
    assert!(!out.status.success());
}

#[test]
fn faulting_kernel_reports_runtime_error() {
    let dir = temp_dir("fault");
    let path = dir.join("oob.sptx");
    std::fs::write(
        &path,
        ".kernel oob\nentry:\n    mov r0, 99999\n    mov r1, 1\n    st.i64 [r0], r1\n    ret\n",
    )
    .unwrap();
    let out = sptxc()
        .args(["run"])
        .arg(&path)
        .args(["--grid", "1", "--block", "1", "--mem", "64"])
        .output()
        .expect("run sptxc");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("runtime fault"), "{stderr}");
}
