//! Manual timing harness (ignored by default): compares scalar vs warp tier
//! wall time on the bench escape kernel. Run with
//! `cargo test -p sigmavp-sptx --release --test tier_timing -- --ignored --nocapture`.

use std::time::Instant;

use sigmavp_sptx::asm;
use sigmavp_sptx::interp::{Interpreter, LaunchConfig, Memory, ParamValue};
use sigmavp_sptx::Tier;

const KERNEL: &str = r#".kernel escape
entry:
    rs r0, gtid
    ldp r1, 0
    mov r2, 8
    mul.i64 r2, r0, r2
    add.i64 r2, r2, r1
    ld.f64 r3, [r2]
    mov.f64 r4, 0.0
    mov r5, 0
    mov r6, 1
    mov r7, 64
    bra loop
loop:
    mul.f64 r4, r4, r4
    add.f64 r4, r4, r3
    add.i64 r5, r5, r6
    setp.lt.i64 p0, r5, r7
    @p0 bra loop, done
done:
    st.i64 [r2], r5
    ret
"#;

#[test]
#[ignore]
fn tier_timing() {
    let program = asm::parse(KERNEL).unwrap();
    let (grid, block) = (32u32, 64u32);
    let bytes = u64::from(grid) * u64::from(block) * 8;
    let cfg = LaunchConfig::linear(grid, block);
    let mut walls = [0.0f64; 2];
    for (i, tier) in [Tier::Scalar, Tier::Warp].into_iter().enumerate() {
        let interp = Interpreter::new().with_tier(tier);
        let mut mem = Memory::new(bytes as usize);
        for t in 0..u64::from(grid * block) {
            mem.write_f64(t * 8, -0.1 - (t as f64) * 1e-6).unwrap();
        }
        let reps = 50;
        // warm
        for _ in 0..5 {
            interp.run(&program, &cfg, &[ParamValue::Ptr(0)], &mut mem).unwrap();
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            interp.run(&program, &cfg, &[ParamValue::Ptr(0)], &mut mem).unwrap();
        }
        let wall = t0.elapsed().as_secs_f64() / f64::from(reps);
        walls[i] = wall;
        println!("{tier:?}: {:.3} ms per launch", wall * 1e3);
    }
    println!("speedup: {:.2}x", walls[0] / walls[1]);
}
