//! A live fleet: virtual platforms running as real concurrent threads against one
//! multiplexed host GPU.
//!
//! ```text
//! cargo run --release --example live_fleet
//! ```
//!
//! Eight VP threads — a mixed fleet of option pricing, sorting and filtering —
//! share a Quadro-4000-class device through the ΣVP host runtime. With the
//! round-robin VP-control policy the arrival order is deterministic (the paper's
//! Fig. 4b stop/resume interleaving); with FIFO the threads race. A final run
//! splits the same fleet across two host GPUs via the execution session's
//! least-loaded routing, shrinking the device makespan.

use sigmavp::threaded::ThreadedSigmaVp;
use sigmavp::Policy;
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::Application;
use sigmavp_workloads::apps::{BlackScholesApp, MergeSortApp, SobelFilterApp, VectorAddApp};

fn fleet() -> Vec<Box<dyn Application + Send>> {
    vec![
        Box::new(BlackScholesApp { n: 4096, ..BlackScholesApp::new(1) }),
        Box::new(BlackScholesApp { n: 4096, ..BlackScholesApp::new(1) }),
        Box::new(MergeSortApp { n: 512 }),
        Box::new(MergeSortApp { n: 512 }),
        Box::new(SobelFilterApp { width: 64, height: 48 }),
        Box::new(SobelFilterApp { width: 64, height: 48 }),
        Box::new(VectorAddApp { n: 8192 }),
        Box::new(VectorAddApp { n: 8192 }),
    ]
}

fn run(policy: Policy, gpus: usize, label: &str) {
    let mut registry = KernelRegistry::new();
    for app in fleet() {
        for k in app.kernels() {
            registry.register(k);
        }
    }
    // Serve SPTX-optimized kernels, like a real driver stack would.
    let registry = registry.optimized();

    let mut system = ThreadedSigmaVp::new(
        vec![GpuArch::quadro_4000(); gpus],
        registry,
        TransportCost::shared_memory(),
        policy,
    );
    for app in fleet() {
        system.spawn(app);
    }
    let report = system.join();

    println!("{label}:");
    for o in &report.outcomes {
        println!(
            "  {} {:<14} {:>10.3} ms simulated, {:>3} gpu calls, {}",
            o.vp,
            o.app,
            o.simulated_time_s * 1e3,
            o.gpu_calls,
            o.error.as_deref().unwrap_or("ok"),
        );
    }
    println!(
        "  host dispatched {} device jobs across {} gpu(s); device makespan {:.3} ms\n",
        report.records.len(),
        report.device_records.len(),
        report.device_makespan_s * 1e3,
    );
    assert!(report.all_ok(), "a VP failed validation");
}

fn main() {
    run(Policy::RoundRobin, 1, "round-robin VP control (deterministic interleave)");
    run(Policy::Fifo, 1, "fifo (threads race for the device)");
    run(Policy::Fifo, 2, "fifo, fleet split across two host gpus");
}
