//! Fleet smoke example: shard 32 VPs across 2 execution sessions, steal load
//! between them, kill one session mid-run, and finish everything on the
//! survivor.
//!
//! Run with `cargo run -p sigmavp-fleet --example fleet`.

use sigmavp_fleet::{drive_with, Fleet, FleetConfig, VpScript};
use sigmavp_ipc::message::VpId;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::Application;
use sigmavp_workloads::apps::VectorAddApp;

fn main() {
    let registry: KernelRegistry = VectorAddApp { n: 256 }.kernels().into_iter().collect();
    let config = FleetConfig::new(2).with_steal_interval(32).with_capacity(64);
    let fleet = Fleet::new(config, registry).expect("fleet builds");

    let mut scripts: Vec<(VpId, VpScript)> = (0..32u32)
        .map(|vp| (VpId(vp), VpScript::vector_add(2048, 1 + vp % 4, vp as u64)))
        .collect();
    for (vp, _) in &scripts {
        fleet.admit(*vp).expect("admission succeeds");
    }
    let total: u64 = scripts.iter().map(|(_, s)| s.jobs_total()).sum();

    let submitted = drive_with(&fleet, &mut scripts, |fleet, admitted| {
        if admitted == total / 2 {
            println!("halfway ({admitted} jobs) — killing session 0");
            fleet.kill_session(0).expect("session 0 exists");
        }
    })
    .expect("every script validates");

    let outcome = fleet.shutdown();
    println!(
        "submitted {submitted} jobs over {} sessions: completed={} shed={} steals={} \
         migrations={} rescued={} trips={}",
        outcome.sessions.len(),
        outcome.stats.completed,
        outcome.stats.shed,
        outcome.stats.steals,
        outcome.stats.migrations,
        outcome.stats.rescued_jobs,
        outcome.stats.session_trips,
    );
    println!(
        "gpu jobs {} | makespan {:.6}s | p99 queue wait {:.6}s",
        outcome.gpu_jobs(),
        outcome.makespan_s(),
        outcome.p99_queue_wait_s()
    );
    assert_eq!(outcome.stats.completed, submitted, "no job was lost to the dead session");
}
