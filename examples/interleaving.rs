//! Kernel Interleaving up close: watch the re-scheduler pipeline the copy and
//! compute engines.
//!
//! ```text
//! cargo run --release --example interleaving
//! ```
//!
//! Four VPs each submit `copy-in → kernel → copy-out`. Without interleaving the
//! synchronous calls serialize (the paper's "3N instructions"); the re-scheduler's
//! reordering reaches Eq. 7's `2·Tm + N·max(Tm, Tk)`. The example prints both
//! schedules as engine-occupancy charts.

use sigmavp_gpu::engine::{simulate, Engine, GpuOp, StreamId, Timeline};
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::queue::{Job, JobId, JobKind};
use sigmavp_sched::interleave::reorder_async;

const N: u32 = 4;
const T: f64 = 1.0; // Tm = Tk = 1 simulated unit

fn jobs() -> Vec<Job> {
    let mut out = Vec::new();
    let mut id = 0;
    for vp in 0..N {
        for (seq, kind) in [
            JobKind::CopyIn { bytes: 0 },
            JobKind::Kernel { name: "k".into(), grid_dim: 1, block_dim: 256 },
            JobKind::CopyOut { bytes: 0 },
        ]
        .into_iter()
        .enumerate()
        {
            out.push(Job {
                id: JobId(id),
                vp: VpId(vp),
                seq: seq as u64,
                kind,
                sync: true,
                enqueued_at_s: 0.0,
                expected_duration_s: T,
            });
            id += 1;
        }
    }
    out
}

fn to_ops(jobs: &[Job], serialized: bool) -> Vec<GpuOp> {
    jobs.iter()
        .map(|j| GpuOp {
            id: j.id.0,
            // Fully synchronous execution behaves like one global stream.
            stream: if serialized { StreamId(0) } else { StreamId(j.vp.0) },
            engine: match j.kind {
                JobKind::CopyIn { .. } => Engine::CopyH2D,
                JobKind::CopyOut { .. } => Engine::CopyD2H,
                JobKind::Kernel { .. } => Engine::Compute,
            },
            duration_s: j.expected_duration_s,
            after: vec![],
        })
        .collect()
}

fn chart(label: &str, tl: &Timeline) {
    println!("{label} (makespan {:.0}T):", tl.makespan_s);
    for (engine, name) in
        [(Engine::CopyH2D, "h2d    "), (Engine::Compute, "compute"), (Engine::CopyD2H, "d2h    ")]
    {
        let mut row = String::new();
        let slots = tl.makespan_s.round() as usize;
        for slot in 0..slots {
            let t = slot as f64 + 0.5;
            let occupied = tl
                .spans
                .iter()
                .find(|s| s.engine == engine && s.start_s <= t && t < s.end_s)
                .map(|s| (b'A' + (s.stream.0 as u8 % 26)) as char);
            row.push(occupied.unwrap_or('.'));
        }
        println!("  {name} |{row}|");
    }
    println!();
}

fn main() {
    let arch = GpuArch::quadro_4000();

    let serial = simulate(&arch, &to_ops(&jobs(), true));
    chart("without Kernel Interleaving (synchronous serialization)", &serial);

    let reordered = reorder_async(jobs());
    let interleaved = simulate(&arch, &to_ops(&reordered, false));
    chart("with Kernel Interleaving", &interleaved);

    let expected = 2.0 * T + N as f64 * T;
    println!("Eq. 7 expectation: 2*Tm + N*max(Tm,Tk) = {expected:.0}T");
    println!(
        "speedup: {:.2}x (Eq. 8 bound 3N/(N+2) = {:.2}x)",
        serial.makespan_s / interleaved.makespan_s,
        3.0 * N as f64 / (N as f64 + 2.0)
    );
}
