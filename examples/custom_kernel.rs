//! Bring your own kernel: load an SPTX assembly file from disk, optimize it,
//! register it, and run it through the full ΣVP stack.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```
//!
//! This is the downstream-user workflow: write a kernel in `kernels/*.sptx`
//! (PTX-like assembly — see `sigmavp_sptx::asm` for the syntax, or use the
//! `sptxc` tool to check/optimize/run it standalone), then serve it to virtual
//! platforms like any built-in workload.

use std::error::Error;
use std::sync::Arc;

use parking_lot::Mutex;
use sigmavp::backend::MultiplexedGpu;
use sigmavp::host::HostRuntime;
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::{VpId, WireParam};
use sigmavp_ipc::transport::TransportCost;
use sigmavp_sptx::{asm, opt};
use sigmavp_vp::cuda::CudaContext;
use sigmavp_vp::platform::VirtualPlatform;
use sigmavp_vp::registry::KernelRegistry;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Load and optimize the kernel.
    let source = std::fs::read_to_string("kernels/scale.sptx")?;
    let program = asm::parse(&source)?;
    let (program, stats) = opt::optimize(&program)?;
    println!(
        "loaded `{}`: {} static instructions (optimizer folded {}, removed {})",
        program.name(),
        program.static_size(),
        stats.folded,
        stats.removed
    );

    // 2. Serve it from a host runtime.
    let mut registry = KernelRegistry::new();
    registry.register(program);
    let runtime = Arc::new(Mutex::new(HostRuntime::new(GpuArch::quadro_4000(), registry)));

    // 3. Drive it from a guest VP through the CUDA-like user library.
    let mut vp = VirtualPlatform::new(VpId(0));
    let mut gpu = MultiplexedGpu::new(VpId(0), runtime, TransportCost::shared_memory());
    let mut cuda = CudaContext::new(&mut vp, &mut gpu);

    let n = 1024u64;
    let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let buf = cuda.malloc(n * 4)?;
    cuda.memcpy_h2d(buf, &data)?;
    cuda.launch_sync(
        "scale",
        n.div_ceil(128) as u32,
        128,
        &[buf.param(), WireParam::I64(n as i64)],
    )?;
    let mut out = vec![0u8; (n * 4) as usize];
    cuda.memcpy_d2h(&mut out, buf)?;
    cuda.free(buf)?;

    for i in [0usize, 1, 500, 1023] {
        let v = f32::from_le_bytes(out[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        assert_eq!(v, 2.0 * i as f32);
        println!("out[{i}] = {v}");
    }
    println!(
        "custom kernel ran and validated over SigmaVP in {:.1} us simulated",
        vp.now_s() * 1e6
    );
    Ok(())
}
