//! Time and power estimation for an embedded GPU, from a host-GPU profile only.
//!
//! ```text
//! cargo run --release --example estimation
//! ```
//!
//! The paper's Section 4 workflow (Fig. 7): execute the kernel on the *host* GPU,
//! gather the profiler counters, derive the expected execution profile for the
//! *target* (a Tegra-K1-class embedded GPU), and estimate its execution time with
//! the three increasingly refined cycle models C, C′, C″ plus its power with
//! Eq. 6 — without ever running on the target.

use std::error::Error;
use std::sync::Arc;

use parking_lot::Mutex;
use sigmavp::backend::MultiplexedGpu;
use sigmavp::host::HostRuntime;
use sigmavp_estimate::compile::TargetCompilation;
use sigmavp_estimate::power::estimate_power;
use sigmavp_estimate::timing::estimate_timing;
use sigmavp_gpu::{GpuArch, GpuDevice};
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_sptx::counters::ExecutionProfile;
use sigmavp_vp::platform::VirtualPlatform;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::{AppEnv, Application};
use sigmavp_workloads::apps::BlackScholesApp;

fn main() -> Result<(), Box<dyn Error>> {
    let app = BlackScholesApp { n: 16 * 1024, ..BlackScholesApp::new(1) };
    let host = GpuArch::quadro_4000();
    let target = GpuArch::tegra_k1();
    let compilation = TargetCompilation::tegra_k1();

    // 1. + 2. Compile for both architectures and execute on the host, gathering
    //         the profile.
    let registry: KernelRegistry = app.kernels().into_iter().collect();
    let runtime = Arc::new(Mutex::new(HostRuntime::new(host.clone(), registry)));
    let mut vp = VirtualPlatform::native(VpId(0));
    let mut gpu = MultiplexedGpu::new(
        VpId(0),
        runtime.clone(),
        TransportCost { latency_s: 0.0, per_byte_s: 0.0 },
    );
    app.run_once(&mut AppEnv::new(&mut vp, &mut gpu))?;
    let hw = runtime.lock().device().profiler_log().last().expect("one launch").clone();
    println!("profiled `{}` on {}:", hw.kernel, host.name);
    println!("  host time            : {:9.1} us", hw.time_s * 1e6);
    println!("  instructions         : {:9}", hw.counts.total());
    println!("  achieved IPC         : {:9.2}", hw.achieved_ipc());
    println!("  data-stall fraction  : {:9.1}%", hw.stall_fraction() * 100.0);

    // 3. + 4. Derive the target execution profile and the time estimates.
    let program = app.kernels().into_iter().find(|k| k.name() == hw.kernel).expect("registered");
    let est = estimate_timing(&program, &hw, &host, &target, &compilation);
    println!("estimates for {}:", target.name);
    println!("  sigma (target)       : {:9} instructions", est.sigma_target.total());
    println!("  ET from C            : {:9.1} us", est.et1_s * 1e6);
    println!("  ET from C'           : {:9.1} us", est.et2_s * 1e6);
    println!("  ET from C''          : {:9.1} us", est.et3_s * 1e6);

    // 5. Power estimate (Eq. 6), against the target device's ground truth.
    let power = estimate_power(&est.sigma_target, est.et3_s, &target);
    let mut measured_profile = ExecutionProfile::new();
    measured_profile.counts = compilation.apply(&hw.counts);
    measured_profile.threads = hw.threads;
    measured_profile.memory.accesses = hw.memory_accesses;
    measured_profile.memory.unique_segments = hw.unique_segments;
    let measured = GpuDevice::new(target.clone()).price(&measured_profile, &hw.launch);
    println!("  measured target time : {:9.1} us", measured.time_s * 1e6);
    println!(
        "  C'' error            : {:9.1}%",
        (est.et3_s - measured.time_s).abs() / measured.time_s * 100.0
    );
    println!("  estimated power      : {:9.2} W", power.total_w());
    println!("  measured power       : {:9.2} W", measured.power_w);
    Ok(())
}
