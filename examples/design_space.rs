//! Design-space exploration: how does simulation cost scale with the number of
//! concurrent virtual platforms?
//!
//! ```text
//! cargo run --release --example design_space
//! ```
//!
//! This is the use case that motivates ΣVP: "simulation with multiple instances of
//! virtual platforms enables many important design decisions as part of the
//! process of exploring the design space of the target systems." We sweep the VP
//! count for a BlackScholes fleet and compare the three backend configurations;
//! watch how emulation scales linearly-at-best while the optimized multiplexer's
//! coalescing keeps the device makespan nearly flat.

use std::error::Error;

use sigmavp::scenario::{run_scenario, run_scenario_multi_gpu};
use sigmavp::Policy;
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_workloads::app::Application;
use sigmavp_workloads::apps::BlackScholesApp;

fn main() -> Result<(), Box<dyn Error>> {
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14} {:>8} {:>8}",
        "VPs", "emulation", "SigmaVP", "SigmaVP+opt", "+opt, 2 GPUs", "x", "+opt x"
    );
    for n_vps in [1usize, 2, 4, 8, 16] {
        let app = BlackScholesApp { n: 8 * 1024, ..BlackScholesApp::new(1) };
        let apps: Vec<&dyn Application> = (0..n_vps).map(|_| &app as &dyn Application).collect();

        let emul = run_scenario(&apps, Policy::EmulatedOnVp)?;
        let plain = run_scenario(&apps, Policy::Multiplexed)?;
        let opt = run_scenario(&apps, Policy::MultiplexedOptimized)?;
        // The paper "multiplexes the host GPUs": a second device halves the load.
        let dual = run_scenario_multi_gpu(
            &apps,
            Policy::MultiplexedOptimized,
            &[GpuArch::quadro_4000(), GpuArch::quadro_4000()],
            TransportCost::shared_memory(),
        )?;

        println!(
            "{:>5} {:>12.2}ms {:>12.3}ms {:>12.3}ms {:>12.3}ms {:>8.0} {:>8.0}",
            n_vps,
            emul.total_time_s * 1e3,
            plain.total_time_s * 1e3,
            opt.total_time_s * 1e3,
            dual.total_time_s * 1e3,
            plain.speedup_vs(&emul),
            opt.speedup_vs(&emul),
        );
    }
    println!();
    println!("(all runs execute and validate the full option-pricing workload)");
    Ok(())
}
