//! Quickstart: run one GPU application on a virtual platform, the slow way and
//! the ΣVP way.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The application is `BlackScholes` from the benchmark suite. It first executes over
//! Mesa-style software GPU emulation inside a binary-translating VP (the paper's
//! Fig. 1a), then over ΣVP's host-GPU multiplexing (Fig. 1b) — same binary-
//! compatible guest code, two backends.

use std::error::Error;
use std::sync::Arc;

use parking_lot::Mutex;
use sigmavp::backend::MultiplexedGpu;
use sigmavp::host::HostRuntime;
use sigmavp_gpu::GpuArch;
use sigmavp_ipc::message::VpId;
use sigmavp_ipc::transport::TransportCost;
use sigmavp_vp::emulation::EmulatedGpu;
use sigmavp_vp::platform::VirtualPlatform;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::{AppEnv, Application};
use sigmavp_workloads::apps::BlackScholesApp;

fn main() -> Result<(), Box<dyn Error>> {
    let app = BlackScholesApp::new(4);
    let registry: KernelRegistry = app.kernels().into_iter().collect();

    // Path 1: GPU emulation inside the VP (the slow baseline the paper replaces).
    let mut vp = VirtualPlatform::new(VpId(0));
    let mut emulated = EmulatedGpu::on_vp(registry.clone());
    app.run_once(&mut AppEnv::new(&mut vp, &mut emulated))?;
    let emulated_s = vp.now_s();
    println!("GPU emulation on the VP : {:10.3} ms (validated)", emulated_s * 1e3);

    // Path 2: ΣVP — forward the same CUDA calls to the multiplexed host GPU.
    let runtime = Arc::new(Mutex::new(HostRuntime::new(GpuArch::quadro_4000(), registry)));
    let mut vp = VirtualPlatform::new(VpId(0));
    let mut multiplexed = MultiplexedGpu::new(VpId(0), runtime, TransportCost::shared_memory());
    app.run_once(&mut AppEnv::new(&mut vp, &mut multiplexed))?;
    let sigma_s = vp.now_s();
    println!("SigmaVP host-GPU path   : {:10.3} ms (validated)", sigma_s * 1e3);

    println!("speedup                 : {:10.1}x", emulated_s / sigma_s);
    Ok(())
}
