//! Live-observability smoke: run a small fleet with the online profile store
//! and the flight recorder attached, kill a session mid-run, and render the
//! newest snapshot the way `sigmavp-top` does.
//!
//! Run with `cargo run -p sigmavp-obs --example top`.

use sigmavp_fleet::{drive_with, Fleet, FleetConfig, VpScript};
use sigmavp_ipc::message::VpId;
use sigmavp_obs::{FlightConfig, FlightRecorder, SharedProfileStore};
use sigmavp_telemetry::export::summary_table;
use sigmavp_vp::registry::KernelRegistry;
use sigmavp_workloads::app::Application;
use sigmavp_workloads::apps::VectorAddApp;

fn main() {
    let telemetry = sigmavp_telemetry::install();

    // The always-on pair: profiles fold completed jobs, the recorder keeps a
    // bounded ring of snapshots and dumps a post-mortem on incidents.
    let profiles = SharedProfileStore::new();
    profiles.install();
    let recorder = FlightRecorder::new(FlightConfig::default());
    recorder.attach(telemetry);
    recorder.install_incident_sink();

    let registry: KernelRegistry = VectorAddApp { n: 256 }.kernels().into_iter().collect();
    let fleet = Fleet::new(FleetConfig::new(2).with_capacity(64), registry).expect("fleet builds");
    let mut scripts: Vec<(VpId, VpScript)> =
        (0..16u32).map(|vp| (VpId(vp), VpScript::vector_add(2048, 2, vp as u64))).collect();
    for (vp, _) in &scripts {
        fleet.admit(*vp).expect("admission succeeds");
    }
    let total: u64 = scripts.iter().map(|(_, s)| s.jobs_total()).sum();
    drive_with(&fleet, &mut scripts, |fleet, admitted| {
        if admitted % 32 == 0 {
            recorder.sample();
        }
        if admitted == total / 2 {
            fleet.kill_session(0).expect("session 0 exists");
        }
    })
    .expect("every script validates");
    let view = fleet.observability(&telemetry);
    fleet.shutdown();
    recorder.sample();

    // The `top`-style render: fleet row, per-shard rows, metric table, then
    // what the incident machinery captured.
    println!("snapshots taken: {}", recorder.taken());
    println!("fleet depth {} | completed {}", view.depth, view.stats.completed);
    for shard in &view.shards {
        println!(
            "  s{} alive={} vps={} queue={} buffers={}",
            shard.index, shard.alive, shard.vps, shard.queue_depth, shard.live_buffers
        );
    }
    let newest = recorder.newest().expect("sampled at least once");
    print!("{}", summary_table(&newest.metrics));
    let snapshot = profiles.snapshot();
    println!("profile store: {} updates over {} entries", snapshot.updates, snapshot.entries());
    for bundle in recorder.bundles() {
        println!("post-mortem: {} ({} bytes)", bundle.name, bundle.json.len());
    }

    assert!(snapshot.updates > 0, "live observations reached the profile store");
    assert!(!recorder.bundles().is_empty(), "the session kill produced a post-mortem");
    sigmavp_telemetry::bus::clear_sinks();
    sigmavp_telemetry::uninstall();
}
