//! Offline stand-in for `crossbeam`: the `channel` module over `std::sync::mpsc`.

pub mod channel {
    //! MPSC channels with the crossbeam-channel API shape.

    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// The channel is empty or disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently available.
        Empty,
        /// All senders have been dropped and the channel is drained.
        Disconnected,
    }

    /// All senders were dropped and the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The receiver was dropped; the unsent message is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Send a message, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Return a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_try_recv() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
