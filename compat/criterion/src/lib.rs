//! Offline stand-in for `criterion`: the group/bencher API over a simple
//! wall-clock median reporter. Good enough to keep `cargo bench` targets
//! compiling and producing comparable numbers without the real crate's
//! statistics machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's measured closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, collecting `sample_size` timed samples after one warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warmup
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measure `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        self.report(&id.into(), &mut b);
        self
    }

    /// Measure `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        self.report(&id, &mut b);
        self
    }

    /// End the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &mut Bencher) {
        match b.median() {
            Some(median) => println!("{}/{}: median {:?}", self.name, id, median),
            None => println!("{}/{}: no samples (iter never called)", self.name, id),
        }
    }
}

/// Collect benchmark functions into a group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("b", 7), &7u32, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.finish();
        }
        assert!(ran >= 3);
    }
}
