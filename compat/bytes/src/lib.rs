//! Offline stand-in for `bytes`: cheaply cloneable immutable [`Bytes`], a
//! growable [`BytesMut`] builder, and the little-endian [`Buf`]/[`BufMut`]
//! accessor traits used by the wire codec.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer with a read cursor.
///
/// Backed by an `Arc<Vec<u8>>` so that [`From<Vec<u8>>`] (and therefore
/// [`BytesMut::freeze`]) transfers ownership of the allocation instead of
/// copying it — the wire codec relies on this being zero-copy.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::new(Vec::new()), pos: 0 }
    }

    /// A buffer over a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()), pos: 0 }
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()), pos: 0 }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: takes ownership of the allocation.
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v), pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Reset to empty, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freeze into an immutable [`Bytes`]. Zero-copy: the allocation moves.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian readers over a byte source.
///
/// The `get_*` methods panic when fewer than the needed bytes remain, matching
/// the real crate; callers are expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian writers onto a byte sink.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Write a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 1 + 4 + 8 + 8 + 8);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.get_i64_le(), -42);
        assert_eq!(frozen.get_f64_le(), 1.5);
        assert!(frozen.is_empty());
    }

    #[test]
    fn bytes_equality_ignores_cursor_origin() {
        let a = Bytes::from_static(b"xyz");
        let b = Bytes::copy_from_slice(b"xyz");
        assert_eq!(a, b);
        assert_eq!(a, b"xyz"[..]);
        assert_eq!(a.to_vec(), b"xyz");
    }

    #[test]
    fn slicing_via_deref() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.len(), 4);
    }
}
