//! Offline stand-in for `proptest`: deterministic property-based testing with
//! the `proptest!`/`prop_oneof!`/`prop_assert*!` macro surface and the
//! [`strategy::Strategy`] combinators the workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via the assertion
//!   message) but is not minimized.
//! * **Deterministic seeding** — the RNG seed derives from the test's module
//!   path and name, so failures reproduce exactly across runs.
//! * `&str` strategies support only the char-class regex subset actually used
//!   (`[class]` items with optional `{min,max}` repetition).

pub mod test_runner {
    //! Configuration, RNG, and failure plumbing for generated test loops.

    use std::fmt;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 RNG driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next pseudorandom 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len());
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($S:ident / $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// One parsed item of the supported regex subset: a character set plus a
    /// repetition count range (inclusive min, inclusive max).
    struct PatternItem {
        set: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternItem> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut items = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad char range in pattern {pattern:?}");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // ']'
                set
            } else {
                let c = chars[i];
                assert!(
                    !"(){}*+?|.\\^$".contains(c),
                    "unsupported regex feature {c:?} in pattern {pattern:?}"
                );
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition min"),
                        hi.trim().parse().expect("repetition max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
            items.push(PatternItem { set, min, max });
        }
        items
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for item in parse_pattern(self) {
                let count = item.min + rng.below(item.max - item.min + 1);
                for _ in 0..count {
                    out.push(item.set[rng.below(item.set.len())]);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A half-open size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy over `element` with the given size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 4]`.
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [self.0.generate(rng), self.0.generate(rng), self.0.generate(rng), self.0.generate(rng)]
        }
    }

    /// Four independent draws from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }
}

pub mod prelude {
    //! The conventional `use proptest::prelude::*` import set.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let result = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z_][a-z0-9_]{0,24}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 25, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first == '_' || first.is_ascii_lowercase());
            let p = Strategy::generate(&"[ -~]{0,64}", &mut rng);
            assert!(p.len() <= 64);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_name("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(v in crate::collection::vec(0u32..10, 0..5), flag in any::<bool>()) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(flag, flag);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }
}
