//! Offline stand-in for `rand`: a deterministic splitmix64-based [`rngs::StdRng`]
//! with the `SeedableRng::seed_from_u64` + `Rng::gen_range` surface.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next pseudorandom 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next pseudorandom 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample from empty range");
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! sample_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + range.start as i128;
                v as $ty
            }
        }
    )*};
}

sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + unit_f64(rng) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + (unit_f64(rng) as f32) * (range.end - range.start)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The "standard" RNG: here a splitmix64 generator — statistically fine for
    /// simulation inputs and fully deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = a.gen_range(-3i64..17);
            assert_eq!(x, b.gen_range(-3i64..17));
            assert!((-3..17).contains(&x));
            let f = a.gen_range(0.5f32..2.0);
            assert_eq!(f, b.gen_range(0.5f32..2.0));
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..8).map(|_| a.gen_range(0i64..1_000_000)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.gen_range(0i64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
