//! Offline stand-in for `parking_lot`: `Mutex` without poisoning and a
//! `Condvar` whose `wait` takes the guard by `&mut` (the parking_lot calling
//! convention), implemented over `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive. Poisoning is transparently ignored, matching
/// parking_lot semantics.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Acquire the mutex if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` lets [`Condvar::wait`] temporarily
/// take the underlying std guard while the thread is parked.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed
/// rather than a notification, mirroring parking_lot's type of the same name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout, not notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's mutex and park until notified; the lock
    /// is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(std_guard);
    }

    /// [`Condvar::wait`] with a timeout: park until notified or until
    /// `timeout` elapses, whichever comes first. The lock is re-acquired
    /// before returning either way.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (std_guard, result) =
            self.inner.wait_timeout(std_guard, timeout).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wake one parked thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all parked threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out_and_sees_notifies() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (m, cv) = &*pair;
        let mut flag = m.lock();
        let result = cv.wait_for(&mut flag, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        drop(flag);

        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            while !*flag {
                let result = cv.wait_for(&mut flag, std::time::Duration::from_secs(30));
                assert!(!result.timed_out(), "notified well before the timeout");
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            while !*flag {
                cv.wait(&mut flag);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
